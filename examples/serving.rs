//! Serving quickstart: boot the request-batching classify server over a
//! trained model, talk to it over TCP — first in line-JSON, then as a
//! pipelined binary-frame client — and drive it with the load
//! generator in both wire formats.
//!
//! Run with: `cargo run --release --example serving`

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};

use hdlock_repro::hdc_serve::demo::{demo_model, DemoSpec};
use hdlock_repro::hdc_serve::{
    loadgen, protocol, server, wire, BatchConfig, LoadgenConfig, WireMode,
};

fn main() -> std::io::Result<()> {
    // 1. Train a model (any `Encoder` works — swap in a locked one to
    //    serve an HDLock-protected model) and snapshot it into a fused
    //    inference session.
    let spec = DemoSpec::default();
    println!(
        "training demo model (N = {}, C = {}, D = {}) …",
        spec.n_features, spec.n_classes, spec.dim
    );
    let model = demo_model(&spec);
    let session = model.session();

    // 2. Serve it. The server borrows the session, so it runs inside a
    //    thread scope; `shutdown` drains it gracefully.
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let shutdown = AtomicBool::new(false);
    println!("serving on {addr}");

    std::thread::scope(|s| -> std::io::Result<()> {
        let server_thread =
            s.spawn(|| server::serve(listener, &session, &BatchConfig::default(), &shutdown));

        // 3. Speak the line protocol by hand: one JSON object per line.
        let stream = TcpStream::connect(addr)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        let levels: Vec<u16> = (0..spec.n_features)
            .map(|i| (i % spec.m_levels) as u16)
            .collect();
        writer.write_all(protocol::request_line(1, &levels, true).as_bytes())?;
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let response = protocol::parse_response(&line).expect("well-formed response");
        println!(
            "classified sample → class {} (scores for {} classes)",
            response.class.expect("successful classify"),
            response.scores.map_or(0, |s| s.len())
        );
        drop(writer);
        drop(reader);

        // 4. Speak the binary wire format, pipelined: the same server
        //    sniffs the first byte (0xB1) and switches this connection
        //    to length-prefixed frames. Eight classify requests go out
        //    back to back; completions come back in whatever order the
        //    batch workers finish, matched by the echoed request id.
        let stream = TcpStream::connect(addr)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        let rows: Vec<Vec<u16>> = (0..8u16)
            .map(|i| {
                (0..spec.n_features)
                    .map(|f| ((usize::from(i) + f) % spec.m_levels) as u16)
                    .collect()
            })
            .collect();
        let mut burst = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            burst.extend(wire::classify_frame(100 + i as u64, row, false));
        }
        writer.write_all(&burst)?;
        let mut classes = vec![None; rows.len()];
        for _ in 0..rows.len() {
            let (header, payload) = wire::read_frame(&mut reader)?;
            let response = wire::decode_response(&header, &payload).expect("well-formed frame");
            classes[(response.id - 100) as usize] = response.class;
        }
        println!(
            "binary pipelined burst → classes {:?} (matched by request id)",
            classes.iter().map(|c| c.unwrap()).collect::<Vec<_>>()
        );
        drop(writer);
        drop(reader);

        // 5. Load-test it in both wire formats: concurrent closed-loop
        //    connections, fused into batch calls by the server's queue.
        //    The pipelined binary clients keep the queue full without
        //    needing more connections.
        for (label, wire_mode, pipeline) in [
            ("json serial      ", WireMode::Json, 1),
            ("binary pipelined ", WireMode::Binary, 16),
        ] {
            let report = loadgen::run(
                addr,
                spec.n_features,
                spec.m_levels,
                &LoadgenConfig {
                    connections: 16,
                    requests_per_connection: 250,
                    seed: 1,
                    wire: wire_mode,
                    pipeline,
                    search_k: None,
                },
            )?;
            println!(
                "load test ({label}): {:.0} requests/s ({} ok, {} errors), \
                 latency µs p50 {} p99 {}",
                report.requests_per_sec,
                report.total_requests,
                report.errors,
                report.latency.p50_micros,
                report.latency.p99_micros
            );
        }

        shutdown.store(true, Ordering::SeqCst);
        let stats = server_thread.join().expect("server thread")?;
        println!(
            "server drained: {} requests over {} connections",
            stats.requests, stats.connections
        );
        Ok(())
    })
}
