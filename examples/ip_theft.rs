//! End-to-end IP theft against an unprotected HDC model (the paper's
//! Sec. 3 attack): dump the unindexed hypervector memory, reason the
//! mapping with chosen-input oracle queries, rebuild the encoder, and
//! walk away with a bit-identical model.
//!
//! ```text
//! cargo run --release --example ip_theft
//! ```

use hdc_attack::{
    duplicate_model, mapping_accuracy, reason_encoding, CountingOracle, FeatureExtractOptions,
    StandardDump,
};
use hdc_datasets::Benchmark;
use hdc_model::{HdcConfig, HdcModel, ModelKind};
use hypervec::HvRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Victim: a FACE-shaped binary HDC model.
    let (train_ds, test_ds) = Benchmark::Face.generate(0.2, 7)?;
    let config = HdcConfig {
        dim: 10_000,
        m_levels: 16,
        kind: ModelKind::Binary,
        epochs: 2,
        learning_rate: 1,
        seed: 7,
    };
    let victim = HdcModel::fit_standard(&config, &train_ds)?;
    let original = victim.evaluate(&test_ds)?.accuracy;
    println!("victim model: FACE-shaped binary HDC, accuracy {original:.4}");

    // Attacker's view: shuffled hypervector memory + encoding oracle.
    let mut rng = HvRng::from_seed(1337);
    let (dump, truth) = StandardDump::from_encoder(victim.encoder(), &mut rng);
    println!(
        "attacker dumps {} unindexed feature HVs and {} unindexed value HVs",
        dump.n_features(),
        dump.m_levels()
    );
    let oracle = CountingOracle::new(victim.encoder());

    // The reasoning attack.
    let recovered = reason_encoding(
        &oracle,
        &dump,
        ModelKind::Binary,
        FeatureExtractOptions::default(),
    )?;
    println!(
        "attack done: {} (mapping accuracy {:.4})",
        recovered.stats,
        mapping_accuracy(&recovered, &truth)
    );

    // The stolen duplicate.
    let stolen = duplicate_model(&victim, &dump, &recovered)?;
    let stolen_acc = stolen.evaluate(&test_ds)?.accuracy;
    println!("stolen model accuracy: {stolen_acc:.4} (original {original:.4})");

    let sample = &test_ds.samples()[0];
    println!(
        "spot check — victim predicts {}, stolen predicts {}",
        victim.predict(&sample.features),
        stolen.predict(&sample.features)
    );
    println!("\ntakeaway: protecting only the index mapping is NOT enough — this is the");
    println!("vulnerability HDLock closes (see the locked_defense example).");
    Ok(())
}
