//! Quickstart: train a standard HDC classifier, lock its encoder with
//! HDLock, and confirm the locked model keeps the accuracy while the
//! reasoning cost explodes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hdc_datasets::{Benchmark, Discretizer};
use hdc_model::{evaluate, train, HdcConfig, HdcModel, ModelKind};
use hdlock::{hdlock_reasoning_guesses, standard_reasoning_guesses, LockConfig, LockedEncoder};
use hypervec::HvRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A benchmark task: PAMAP-shaped (75 features, 5 classes).
    let (train_ds, test_ds) = Benchmark::Pamap.generate(0.2, 42)?;
    println!(
        "dataset: {} ({} train / {} test, {} features, {} classes)",
        train_ds.name(),
        train_ds.len(),
        test_ds.len(),
        train_ds.n_features(),
        train_ds.n_classes()
    );

    // 2. Train the unprotected baseline.
    let config = HdcConfig {
        dim: 10_000,
        m_levels: 16,
        kind: ModelKind::Binary,
        epochs: 2,
        learning_rate: 1,
        seed: 42,
    };
    let baseline = HdcModel::fit_standard(&config, &train_ds)?;
    let base_acc = baseline.evaluate(&test_ds)?.accuracy;
    println!("standard HDC accuracy:  {base_acc:.4}");

    // 3. Train the same pipeline on an HDLock-protected encoder (L = 2).
    let lock_cfg = LockConfig {
        n_features: train_ds.n_features(),
        m_levels: config.m_levels,
        dim: config.dim,
        pool_size: train_ds.n_features(),
        n_layers: 2,
    };
    let mut rng = HvRng::from_seed(config.seed);
    let locked_encoder = LockedEncoder::generate(&mut rng, &lock_cfg)?;
    let disc = Discretizer::fit(&train_ds, config.m_levels)?;
    let train_q = disc.discretize(&train_ds)?;
    let test_q = disc.discretize(&test_ds)?;
    let memory = train(&locked_encoder, &config, &train_q);
    let locked_acc = evaluate(&locked_encoder, &memory, &test_q).accuracy;
    println!("HDLock (L=2) accuracy:  {locked_acc:.4}");
    println!(
        "accuracy delta:         {:+.4}  (paper: no observable loss)",
        locked_acc - base_acc
    );

    // 4. What the lock buys: reasoning complexity.
    let n = train_ds.n_features();
    println!(
        "\nreasoning cost for an attacker:\n  standard: {} guesses\n  HDLock:   {} guesses",
        standard_reasoning_guesses(n),
        hdlock_reasoning_guesses(n, lock_cfg.dim, lock_cfg.pool_size, lock_cfg.n_layers),
    );
    println!(
        "key-vault audit: {} privileged reads during setup+training",
        locked_encoder.vault().reads()
    );
    Ok(())
}
