//! Hot-reload quickstart: snapshot a locked model to disk, serve it
//! from a model registry, then — without dropping a request — reload a
//! replacement snapshot and rotate the key live, watching the
//! generation id and checksum change from the client side.
//!
//! Run with: `cargo run --release --example hot_reload`

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};

use hdlock_repro::hdc_serve::demo::{self, DemoSpec};
use hdlock_repro::hdc_serve::{
    loadgen, protocol, server, AdmissionConfig, LoadgenConfig, RegistryServeConfig,
};
use hdlock_repro::hdc_store::{KeySegment, ModelRegistry, ModelSnapshot, RekeySource};

fn roundtrip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request: &str,
) -> protocol::ClassifyResponse {
    writer
        .write_all(request.as_bytes())
        .expect("request written");
    let mut line = String::new();
    reader.read_line(&mut line).expect("response read");
    protocol::parse_response(&line).expect("well-formed response")
}

fn main() -> std::io::Result<()> {
    // 1. Train a locked model and persist it: the binary snapshot holds
    //    only public material; the key ships as a separate sealed
    //    segment (a snapshot without its segment cannot serve).
    let spec = DemoSpec {
        dim: 4096,
        ..DemoSpec::default()
    };
    println!(
        "training locked demo model (N = {}, C = {}, D = {}, L = 2) …",
        spec.n_features, spec.n_classes, spec.dim
    );
    let (model, train) = demo::demo_locked_model(&spec, 2);
    let dir = std::env::temp_dir().join("hdlock_hot_reload_example");
    std::fs::create_dir_all(&dir)?;
    let snap_path = dir.join("model-v1.hdsn");
    let key_path = dir.join("model-v1.hdky");
    let snapshot = ModelSnapshot::from_locked_model(&model);
    let checksum = snapshot.save(&snap_path).expect("snapshot saved");
    KeySegment::from_locked_encoder(model.encoder())
        .expect("vault sealed")
        .save(&key_path)
        .expect("key segment saved");
    println!(
        "snapshot {} ({} bytes, checksum {checksum:016x}) + sealed key {}",
        snap_path.display(),
        std::fs::metadata(&snap_path)?.len(),
        key_path.display()
    );

    // 2. Boot the registry from the files — exactly what a fresh
    //    replica would do — and serve it with a query budget per
    //    connection.
    let registry = ModelRegistry::from_snapshot(
        ModelSnapshot::load(&snap_path).expect("snapshot loads").0,
        Some(&KeySegment::load(&key_path).expect("key loads")),
    )
    .expect("snapshot + key are consistent")
    .with_rekey_source(RekeySource {
        config: demo::demo_config(&spec),
        train,
    });
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let shutdown = AtomicBool::new(false);
    let config = RegistryServeConfig {
        admission: AdmissionConfig {
            query_budget: 100_000,
            ..AdmissionConfig::default()
        },
        ..RegistryServeConfig::default()
    };
    println!("serving on {addr}");

    std::thread::scope(|s| -> std::io::Result<()> {
        let server_thread =
            s.spawn(|| server::serve_registry(listener, &registry, &config, &shutdown));

        let stream = TcpStream::connect(addr)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;

        // 3. The info response names the serving generation, so clients
        //    can detect swaps.
        let info = roundtrip(&mut reader, &mut writer, &protocol::info_request_line(1))
            .info
            .expect("info");
        println!(
            "generation {} (checksum {}) on backend {}",
            info.generation, info.checksum, info.backend
        );

        // 4. Put closed-loop load on the server and rotate the key
        //    right through it: the swap is atomic, in-flight batches
        //    finish on the old generation, nothing is dropped — and the
        //    old vault is destroyed the moment the swap lands.
        let load = s.spawn(|| {
            loadgen::run(
                addr,
                spec.n_features,
                spec.m_levels,
                &LoadgenConfig {
                    connections: 8,
                    requests_per_connection: 300,
                    seed: 1,
                    ..Default::default()
                },
            )
            .expect("load generation")
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let swapped = roundtrip(
            &mut reader,
            &mut writer,
            &protocol::rekey_request_line(2, 20_220_711),
        )
        .swapped
        .expect("rekey swaps");
        println!(
            "rekeyed live → generation {} (checksum {})",
            swapped.generation, swapped.checksum
        );
        let report = load.join().expect("load thread");
        println!(
            "load across the swap: {:.0} requests/s, {} ok, {} errors, p99 {} µs",
            report.requests_per_sec,
            report.total_requests,
            report.errors,
            report.latency.p99_micros
        );
        assert_eq!(report.errors, 0, "a live rekey must not fail requests");

        // 5. Hot-reload the original snapshot file back in (rollback by
        //    reload), then read the stats counters.
        let swapped = roundtrip(
            &mut reader,
            &mut writer,
            &protocol::reload_request_line(
                3,
                snap_path.to_str().expect("utf-8 path"),
                Some(key_path.to_str().expect("utf-8 path")),
            ),
        )
        .swapped
        .expect("reload swaps");
        println!(
            "reloaded v1 from disk → generation {} (checksum {})",
            swapped.generation, swapped.checksum
        );
        let stats = roundtrip(&mut reader, &mut writer, &protocol::stats_request_line(4))
            .stats
            .expect("stats");
        println!(
            "stats: generation {}, locked {}, reloads {}, rekeys {}, {} requests ({} throttled)",
            stats.generation,
            stats.locked,
            stats.reloads,
            stats.rekeys,
            stats.requests,
            stats.throttled
        );

        drop(writer);
        drop(reader);
        shutdown.store(true, Ordering::SeqCst);
        let stats = server_thread.join().expect("server thread")?;
        println!(
            "server drained: {} requests over {} connections",
            stats.requests, stats.connections
        );
        Ok(())
    })?;
    let _ = std::fs::remove_file(&snap_path);
    let _ = std::fs::remove_file(&key_path);
    Ok(())
}
