//! Key lifecycle for a deployed HDLock model: escrow, vault audit,
//! revocation and re-keying, plus owner-side model persistence.
//!
//! ```text
//! cargo run --release --example key_management
//! ```

use hdc_datasets::Benchmark;
use hdc_model::{Encoder, HdcConfig, HdcModel};
use hdlock::{EncodingKey, KeyVault, LockConfig, LockedEncoder};
use hypervec::HvRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = LockConfig {
        n_features: 64,
        m_levels: 8,
        dim: 4096,
        pool_size: 64,
        n_layers: 2,
    };
    let mut rng = HvRng::from_seed(7);

    // --- Key escrow -----------------------------------------------------
    // The owner generates the key, escrows a copy (e.g. in an HSM-backed
    // store), and seals the working copy into the device vault.
    let pool = hdlock::BasePool::generate(&mut rng, cfg.dim, cfg.pool_size);
    let values = hypervec::LevelHvs::generate(&mut rng, cfg.dim, cfg.m_levels)?;
    let key = EncodingKey::random(
        &mut rng,
        cfg.n_features,
        cfg.n_layers,
        cfg.pool_size,
        cfg.dim,
    )?;
    let escrow = serde_json::to_string(&key)?;
    println!(
        "escrowed key: {} bytes of JSON (N×L = {} layer entries)",
        escrow.len(),
        cfg.n_features * cfg.n_layers
    );

    let encoder = LockedEncoder::from_parts(pool.clone(), values.clone(), key)?;
    let row = vec![0u16; cfg.n_features];
    let reference = encoder.encode_binary(&row);
    println!("device vault after setup: {:?}", encoder.vault());

    // --- Revocation -----------------------------------------------------
    // Suppose the device is decommissioned: destroy the vault copy.
    encoder.vault().destroy();
    println!("after destroy: {:?}", encoder.vault());

    // --- Restore from escrow ---------------------------------------------
    let restored_key: EncodingKey = serde_json::from_str(&escrow)?;
    let restored = LockedEncoder::from_parts(pool, values, restored_key)?;
    assert_eq!(restored.encode_binary(&row), reference);
    println!("escrow restore verified: encodings are bit-identical");

    // --- Re-keying --------------------------------------------------------
    // If the key leaked, issue a fresh one over the same public memory.
    let rekeyed = restored.rekeyed(&mut rng)?;
    assert_ne!(rekeyed.encode_binary(&row), reference);
    println!("re-keyed encoder produces different encodings (old knowledge is useless)");

    // --- Owner-side model persistence --------------------------------------
    // Standard-encoder models serialize fully (this file IS the IP —
    // storing it unprotected is exactly the vulnerability of Sec. 3).
    let (train_ds, test_ds) = Benchmark::Pamap.generate(0.1, 7)?;
    let model_cfg = HdcConfig::paper_default().with_dim(2048).with_seed(7);
    let model = HdcModel::fit_standard(&model_cfg, &train_ds)?;
    let json = model.to_json()?;
    let reloaded = HdcModel::from_json(&json)?;
    let acc_a = model.evaluate(&test_ds)?.accuracy;
    let acc_b = reloaded.evaluate(&test_ds)?.accuracy;
    println!(
        "model snapshot: {} bytes; accuracy {acc_a:.4} == {acc_b:.4} after reload",
        json.len()
    );

    // A standalone vault demo: scoped, audited access.
    let vault = KeyVault::seal(EncodingKey::random(&mut rng, 4, 2, 8, 128)?);
    let layers = vault.with_key(|k| k.n_layers())?;
    println!(
        "standalone vault read: L = {layers}, audit = {} reads",
        vault.reads()
    );
    Ok(())
}
