//! The HDLock defense in action: the same attacker capabilities that
//! steal an unprotected model (see `ip_theft`) get nowhere against a
//! locked encoder unless every key parameter is guessed at once.
//!
//! ```text
//! cargo run --release --example locked_defense
//! ```

use hdc_attack::{sweep_parameter, CountingOracle, LockProbe, SweptParam};
use hdc_model::ModelKind;
use hdlock::{hdlock_reasoning_guesses, BasePool, EncodingKey, LockConfig, LockedEncoder};
use hypervec::{HvRng, LevelHvs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = LockConfig {
        n_features: 128,
        m_levels: 16,
        dim: 10_000,
        pool_size: 128,
        n_layers: 2,
    };
    let mut rng = HvRng::from_seed(2022);
    let pool = BasePool::generate(&mut rng, cfg.dim, cfg.pool_size);
    let values = LevelHvs::generate(&mut rng, cfg.dim, cfg.m_levels)?;
    let key = EncodingKey::random(
        &mut rng,
        cfg.n_features,
        cfg.n_layers,
        cfg.pool_size,
        cfg.dim,
    )?;
    let encoder = LockedEncoder::from_parts(pool.clone(), values.clone(), key.clone())?;
    println!(
        "locked encoder: N = {}, P = {}, D = {}, L = {}",
        cfg.n_features, cfg.pool_size, cfg.dim, cfg.n_layers
    );
    println!("vault: {:?}\n", encoder.vault());

    // The attacker captures a probe for feature 0 (2 chosen queries).
    let oracle = CountingOracle::new(&encoder);
    let probe = LockProbe::capture(&oracle, &values, 0, ModelKind::Binary)?;
    println!(
        "attack probe captured: |I| = {} differing indices",
        probe.support()
    );

    // Even knowing 3 of the 4 key parameters, each panel's sweep only
    // confirms a value when everything else is already right.
    for (label, param) in [
        ("rotation of layer 1", SweptParam::Rotation { layer: 0 }),
        ("base index of layer 1", SweptParam::BaseIndex { layer: 0 }),
        ("rotation of layer 2", SweptParam::Rotation { layer: 1 }),
        ("base index of layer 2", SweptParam::BaseIndex { layer: 1 }),
    ] {
        let sweep = sweep_parameter(&probe, &pool, key.feature(0), param, cfg.dim, 50)?;
        println!(
            "  sweep {label:22}: correct scores {:.3}, best wrong {:.3}",
            sweep.correct_score(),
            sweep.best_wrong_score()
        );
    }

    // A fully blind guess (all four parameters wrong) looks random.
    let mut wrong_key = key.feature(0).layers().to_vec();
    wrong_key[0].rotation = (wrong_key[0].rotation + 1) % cfg.dim;
    wrong_key[1].base_index = (wrong_key[1].base_index + 1) % cfg.pool_size;
    let blind = probe.score(&pool, &hdlock::FeatureKey::new(wrong_key))?;
    println!("\nwrong-by-two-parameters guess scores {blind:.3} (≈ 0.5 = random)");

    let total = hdlock_reasoning_guesses(cfg.n_features, cfg.dim, cfg.pool_size, cfg.n_layers);
    println!(
        "blind attacker must try {} keys to reason the full mapping — infeasible.",
        total
    );
    println!(
        "oracle queries spent by the attacker so far: {}",
        oracle.queries()
    );
    Ok(())
}
