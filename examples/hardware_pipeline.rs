//! Cycle-level view of the FPGA encoding datapath: what HDLock costs in
//! hardware (the paper's Fig. 9 measurement, here on the simulator).
//!
//! ```text
//! cargo run --release --example hardware_pipeline
//! ```

use hdc_hwsim::{cycles_to_micros, relative_encoding_times, simulate_encode, HwConfig};

fn main() {
    let cfg = HwConfig::zynq_default();
    println!(
        "datapath: D = {}, accumulate {} b/cycle, bind {} b/cycle, {} memory ports, latency {}",
        cfg.dim, cfg.acc_width, cfg.bind_width, cfg.mem_ports, cfg.mem_latency
    );

    println!("\nencoding one MNIST-shaped sample (N = 784):");
    for layers in 0..=5 {
        let rep = simulate_encode(&cfg, 784, layers);
        println!(
            "  L = {layers}: {:>6} cycles  ({:>7.1} µs @ 300 MHz, acc utilization {:.2})",
            rep.total_cycles,
            cycles_to_micros(rep.total_cycles, 300.0),
            rep.acc_utilization()
        );
    }

    println!("\nrelative encoding time (Fig. 9 series, normalized to L = 1):");
    let series = relative_encoding_times(&cfg, "mnist", 784, &[1, 2, 3, 4, 5]);
    for (l, r) in &series.points {
        let bar = "#".repeat((r * 20.0) as usize);
        println!("  L = {l}: {r:.3}  {bar}");
    }

    println!("\nablation — what an overlapped derive/accumulate pipeline would buy:");
    let overlapped = cfg.with_overlap(true);
    for layers in [2usize, 3, 5] {
        let serial = simulate_encode(&cfg, 784, layers).total_cycles;
        let fast = simulate_encode(&overlapped, 784, layers).total_cycles;
        println!(
            "  L = {layers}: serial {serial} cycles -> overlapped {fast} cycles ({:.1}% saved)",
            100.0 * (serial - fast) as f64 / serial as f64
        );
    }
    println!("\n(the paper's measured design point is the serial one: +21% per layer from L = 2)");
}
