//! Beyond record-based encoding: n-gram sequence classification with
//! the same hypervector substrate — and why its item memory has the
//! same IP-leak surface the paper describes.
//!
//! Two synthetic "languages" (Markov chains over a 12-symbol alphabet)
//! are classified by bundling n-gram hypervectors per class.
//!
//! ```text
//! cargo run --release --example sequence_ngram
//! ```

use hdc_model::NgramEncoder;
use hypervec::{BundleAccumulator, HvRng};

/// Generates a sequence from a class-specific first-order Markov chain.
fn generate_sequence(rng: &mut HvRng, class: usize, len: usize, alphabet: usize) -> Vec<usize> {
    let mut seq = Vec::with_capacity(len);
    let mut state = rng.index(alphabet);
    for _ in 0..len {
        seq.push(state);
        // class 0 walks forward, class 1 hops by 5 — different n-gram
        // statistics, same marginal symbol distribution
        let step = if class == 0 { 1 } else { 5 };
        state = if rng.unit_f64() < 0.8 {
            (state + step) % alphabet
        } else {
            rng.index(alphabet)
        };
    }
    seq
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alphabet = 12;
    let dim = 4096;
    let mut rng = HvRng::from_seed(2022);
    let encoder = NgramEncoder::generate(&mut rng, alphabet, 3, dim)?;

    // Train: bundle 40 sequences per class.
    let mut classes = [BundleAccumulator::new(dim), BundleAccumulator::new(dim)];
    for (class, acc) in classes.iter_mut().enumerate() {
        for _ in 0..40 {
            let seq = generate_sequence(&mut rng, class, 64, alphabet);
            acc.add(&encoder.encode_sequence(&seq)?);
        }
    }
    let class_hvs = [
        classes[0].majority_ties_positive(),
        classes[1].majority_ties_positive(),
    ];

    // Test: 100 fresh sequences.
    let mut correct = 0;
    let total = 100;
    for t in 0..total {
        let class = t % 2;
        let seq = generate_sequence(&mut rng, class, 64, alphabet);
        let q = encoder.encode_sequence(&seq)?;
        let predicted = usize::from(class_hvs[1].hamming(&q) < class_hvs[0].hamming(&q));
        if predicted == class {
            correct += 1;
        }
    }
    println!("n-gram sequence classifier: {correct}/{total} correct");
    println!(
        "\nnote: the symbol item memory ({} hypervectors) sits in plain memory exactly\n\
         like record-based feature HVs — an HDLock-style derived item memory applies\n\
         here unchanged (extension discussed in DESIGN.md).",
        encoder.alphabet()
    );
    Ok(())
}
