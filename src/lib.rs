//! # hdlock-repro — umbrella crate
//!
//! Reproduction of *"HDLock: Exploiting Privileged Encoding to Protect
//! Hyperdimensional Computing Models against IP Stealing"* (DAC 2022).
//!
//! This crate re-exports the workspace's public surface and hosts the
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`). See the individual crates for the implementation:
//!
//! * [`hypervec`] — bit-packed hypervector math (MAP operations)
//! * [`hdc_datasets`] — synthetic benchmark datasets + quantization
//! * [`hdc_model`] — record-based HDC classifier (encode/train/infer)
//! * [`hdlock`] — the locked encoder, key vault and complexity analysis
//! * [`hdc_attack`] — the reasoning attack and HDLock validation
//! * [`hdc_hwsim`] — cycle-level FPGA encoding-datapath simulator
//! * [`hdc_serve`] — request-batching TCP inference server + load
//!   generator over the fused session pipeline
//! * [`hdc_store`] — versioned binary model snapshots, sealed key
//!   segments, and the hot-swap model registry behind the server

#![warn(missing_docs)]

pub use hdc_attack;
pub use hdc_datasets;
pub use hdc_hwsim;
pub use hdc_model;
pub use hdc_serve;
pub use hdc_store;
pub use hdlock;
pub use hypervec;
