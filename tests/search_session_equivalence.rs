//! Property tests: the fused session pipeline (batch encode → sharded
//! batch search) is bit-identical to the scalar per-sample pipeline
//! (`encode_*` + one-row-at-a-time scan) for both model kinds and both
//! encoders, across non-word-aligned dimensions (130) and the
//! paper-scale D = 10 000, including tie-breaking order.

use hdc_model::{
    infer, ClassMemory, Encoder, HdcConfig, InferenceSession, ModelKind, RecordEncoder,
};
use hdlock::{DeriveMode, LockConfig, LockedEncoder};
use hypervec::HvRng;
use proptest::prelude::*;

/// Dimensions exercising word boundaries plus the paper scale.
fn dims() -> impl Strategy<Value = usize> {
    prop_oneof![Just(130usize), 200usize..=260, Just(1024), Just(10_000)]
}

fn kinds() -> impl Strategy<Value = ModelKind> {
    prop_oneof![Just(ModelKind::Binary), Just(ModelKind::NonBinary)]
}

/// A deterministic batch of quantized rows.
fn rows(n_features: usize, m_levels: usize, count: usize, seed: u64) -> Vec<Vec<u16>> {
    let mut rng = HvRng::from_seed(seed);
    (0..count)
        .map(|_| {
            (0..n_features)
                .map(|_| rng.index(m_levels) as u16)
                .collect()
        })
        .collect()
}

/// Builds a small trained memory by bundling the first rows per class.
fn memory_from<E: Encoder>(encoder: &E, kind: ModelKind, c: usize, seed: u64) -> ClassMemory {
    let mut memory = ClassMemory::new(kind, c, encoder.dim());
    let protos = rows(encoder.n_features(), encoder.m_levels(), 2 * c, seed);
    for (i, p) in protos.iter().enumerate() {
        memory.acc_mut(i % c).add(&encoder.encode_binary(p));
    }
    memory.rebinarize();
    memory
}

/// Scalar per-sample pipeline: the pre-refactor classify path.
fn scalar_classify<E: Encoder>(
    encoder: &E,
    memory: &ClassMemory,
    kind: ModelKind,
    row: &[u16],
) -> usize {
    match kind {
        ModelKind::Binary => infer::classify_binary_hv(memory, &encoder.encode_binary(row)),
        ModelKind::NonBinary => infer::classify_int_hv(memory, &encoder.encode_int(row)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn record_session_matches_scalar_pipeline(
        d in dims(),
        kind in kinds(),
        c in 2usize..=8,
        seed in any::<u64>(),
    ) {
        let mut rng = HvRng::from_seed(seed);
        let enc = RecordEncoder::generate(&mut rng, 6, 4, d).unwrap();
        let memory = memory_from(&enc, kind, c, seed ^ 1);
        let session = InferenceSession::new(&enc, &memory);
        let batch_rows = rows(6, 4, 11, seed ^ 2);
        let refs: Vec<&[u16]> = batch_rows.iter().map(Vec::as_slice).collect();
        let fused = session.classify_batch(&refs);
        for (i, row) in refs.iter().enumerate() {
            prop_assert_eq!(
                fused[i],
                scalar_classify(&enc, &memory, kind, row),
                "{:?} D={} row {}", kind, d, i
            );
        }
        // Full score vectors bit-equal to the per-query score path.
        let hits = session.scores_batch(&refs);
        for (i, row) in refs.iter().enumerate() {
            let want = infer::class_scores(&enc, &memory, row);
            for (j, &s) in hits.scores(i).iter().enumerate() {
                prop_assert_eq!(s.to_bits(), want[j].to_bits(), "row {} class {}", i, j);
            }
        }
    }

    #[test]
    fn locked_session_matches_scalar_pipeline_in_both_modes(
        kind in kinds(),
        layers in 1usize..=2,
        seed in any::<u64>(),
    ) {
        let cfg = LockConfig {
            n_features: 5,
            m_levels: 4,
            dim: 130,
            pool_size: 9,
            n_layers: layers,
        };
        let mut rng = HvRng::from_seed(seed);
        let mut enc = LockedEncoder::generate(&mut rng, &cfg).unwrap();
        let memory = memory_from(&enc, kind, 3, seed ^ 3);
        let batch_rows = rows(5, 4, 9, seed ^ 4);
        let refs: Vec<&[u16]> = batch_rows.iter().map(Vec::as_slice).collect();
        for mode in [DeriveMode::Cached, DeriveMode::OnTheFly] {
            enc.set_mode(mode);
            let session = InferenceSession::new(&enc, &memory);
            let fused = session.classify_batch(&refs);
            for (i, row) in refs.iter().enumerate() {
                prop_assert_eq!(
                    fused[i],
                    scalar_classify(&enc, &memory, kind, row),
                    "{:?} {:?} row {}", kind, mode, i
                );
            }
        }
    }

    #[test]
    fn tie_breaking_matches_with_duplicate_classes(
        kind in kinds(),
        seed in any::<u64>(),
    ) {
        // Two identical class rows: the session must keep the scalar
        // scan's lowest-index preference.
        let mut rng = HvRng::from_seed(seed);
        let enc = RecordEncoder::generate(&mut rng, 5, 4, 130).unwrap();
        let proto = rows(5, 4, 1, seed ^ 5).remove(0);
        let mut memory = ClassMemory::new(kind, 3, 130);
        let hv = enc.encode_binary(&proto);
        memory.acc_mut(0).add(&hv);
        memory.acc_mut(1).add(&hv);
        memory.acc_mut(2).add(&rng.binary_hv(130));
        memory.rebinarize();
        let session = InferenceSession::new(&enc, &memory);
        for row in rows(5, 4, 7, seed ^ 6) {
            let want = scalar_classify(&enc, &memory, kind, &row);
            prop_assert_eq!(session.classify(&row), want);
        }
    }
}

/// The retraining loop's packed-mirror classify must leave training
/// results exactly where the scalar-scan implementation left them:
/// deterministic, and converging to the same memory as a from-scratch
/// reference that re-runs the scalar loop.
#[test]
fn retrained_models_stay_deterministic_across_kinds() {
    use hdc_datasets::{Benchmark, Discretizer};

    for (kind, seed) in [(ModelKind::Binary, 31u64), (ModelKind::NonBinary, 32u64)] {
        let (train_ds, _) = Benchmark::Pamap.generate(0.05, seed).unwrap();
        let config = HdcConfig {
            dim: 1024,
            m_levels: 8,
            kind,
            epochs: 2,
            learning_rate: 1,
            seed,
        };
        let disc = Discretizer::fit(&train_ds, config.m_levels).unwrap();
        let train_q = disc.discretize(&train_ds).unwrap();
        let mut rng = HvRng::from_seed(seed);
        let enc = RecordEncoder::generate(&mut rng, train_q.n_features(), 8, 1024).unwrap();
        let a = hdc_model::train(&enc, &config, &train_q);
        let b = hdc_model::train(&enc, &config, &train_q);
        assert_eq!(a, b, "{kind:?} training must stay deterministic");
        let accuracy = infer::evaluate(&enc, &a, &train_q).accuracy;
        assert!(
            accuracy > 0.6,
            "{kind:?} training accuracy collapsed: {accuracy}"
        );
    }
}
