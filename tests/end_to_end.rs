//! Cross-crate integration tests: the full victim→attacker pipeline and
//! the defense's accuracy-preservation claim, spanning every workspace
//! crate.

use hdc_attack::{
    duplicate_model, mapping_accuracy, reason_encoding, CountingOracle, FeatureExtractOptions,
    StandardDump,
};
use hdc_datasets::{Benchmark, Discretizer};
use hdc_model::{evaluate, train, Encoder, HdcConfig, HdcModel, ModelKind};
use hdlock::{DeriveMode, LockConfig, LockedEncoder};
use hypervec::HvRng;

fn small_config(kind: ModelKind, seed: u64) -> HdcConfig {
    HdcConfig {
        dim: 4096,
        m_levels: 16,
        kind,
        epochs: 2,
        learning_rate: 1,
        seed,
    }
}

#[test]
fn attack_steals_binary_model_end_to_end() {
    let (train_ds, test_ds) = Benchmark::Pamap.generate(0.1, 21).unwrap();
    let config = small_config(ModelKind::Binary, 21);
    let victim = HdcModel::fit_standard(&config, &train_ds).unwrap();
    let original = victim.evaluate(&test_ds).unwrap().accuracy;
    assert!(
        original > 0.5,
        "victim must be a useful model, got {original}"
    );

    let mut rng = HvRng::from_seed(99);
    let (dump, truth) = StandardDump::from_encoder(victim.encoder(), &mut rng);
    let oracle = CountingOracle::new(victim.encoder());
    let recovered = reason_encoding(
        &oracle,
        &dump,
        ModelKind::Binary,
        FeatureExtractOptions::default(),
    )
    .unwrap();
    assert_eq!(mapping_accuracy(&recovered, &truth), 1.0);

    let stolen = duplicate_model(&victim, &dump, &recovered).unwrap();
    let stolen_acc = stolen.evaluate(&test_ds).unwrap().accuracy;
    assert!((stolen_acc - original).abs() < 1e-12);
}

#[test]
fn attack_steals_nonbinary_model_end_to_end() {
    let (train_ds, test_ds) = Benchmark::Face.generate(0.1, 22).unwrap();
    let config = small_config(ModelKind::NonBinary, 22);
    let victim = HdcModel::fit_standard(&config, &train_ds).unwrap();
    let original = victim.evaluate(&test_ds).unwrap().accuracy;

    let mut rng = HvRng::from_seed(98);
    let (dump, truth) = StandardDump::from_encoder(victim.encoder(), &mut rng);
    let oracle = CountingOracle::new(victim.encoder());
    let recovered = reason_encoding(
        &oracle,
        &dump,
        ModelKind::NonBinary,
        FeatureExtractOptions::default(),
    )
    .unwrap();
    assert_eq!(mapping_accuracy(&recovered, &truth), 1.0);

    let stolen = duplicate_model(&victim, &dump, &recovered).unwrap();
    assert!((stolen.evaluate(&test_ds).unwrap().accuracy - original).abs() < 1e-12);
}

#[test]
fn locked_model_preserves_accuracy_fig8_claim() {
    // Fig. 8: accuracy is flat in L. Train the same task with L = 0
    // (unprotected baseline) and L ∈ {1, 2, 3}; deltas must be small.
    let (train_ds, test_ds) = Benchmark::Pamap.generate(0.15, 23).unwrap();
    let config = small_config(ModelKind::Binary, 23);
    let disc = Discretizer::fit(&train_ds, config.m_levels).unwrap();
    let train_q = disc.discretize(&train_ds).unwrap();
    let test_q = disc.discretize(&test_ds).unwrap();

    let mut accs = Vec::new();
    for layers in 0..=3usize {
        let mut rng = HvRng::from_seed(5000 + layers as u64);
        let lock_cfg = LockConfig {
            n_features: train_q.n_features(),
            m_levels: config.m_levels,
            dim: config.dim,
            pool_size: train_q.n_features(),
            n_layers: layers,
        };
        let encoder = LockedEncoder::generate(&mut rng, &lock_cfg).unwrap();
        let memory = train(&encoder, &config, &train_q);
        accs.push(evaluate(&encoder, &memory, &test_q).accuracy);
    }
    let baseline = accs[0];
    assert!(baseline > 0.5, "baseline too weak: {baseline}");
    for (l, &acc) in accs.iter().enumerate() {
        assert!(
            (acc - baseline).abs() < 0.1,
            "L = {l} accuracy {acc} deviates from baseline {baseline}"
        );
    }
}

#[test]
fn locked_encoder_modes_agree_in_full_pipeline() {
    let (train_ds, _) = Benchmark::Pamap.generate(0.05, 24).unwrap();
    let config = small_config(ModelKind::Binary, 24);
    let disc = Discretizer::fit(&train_ds, config.m_levels).unwrap();
    let train_q = disc.discretize(&train_ds).unwrap();
    let lock_cfg = LockConfig {
        n_features: train_q.n_features(),
        m_levels: config.m_levels,
        dim: config.dim,
        pool_size: 2 * train_q.n_features(),
        n_layers: 2,
    };
    let mut rng = HvRng::from_seed(25);
    let mut encoder = LockedEncoder::generate(&mut rng, &lock_cfg).unwrap();
    let cached = train(&encoder, &config, &train_q);
    encoder.set_mode(DeriveMode::OnTheFly);
    let on_the_fly = train(&encoder, &config, &train_q);
    assert_eq!(
        cached, on_the_fly,
        "derivation mode must not change results"
    );
    assert!(encoder.vault().reads() > 0);
}

#[test]
fn standard_and_locked_share_the_encoder_seam() {
    // The Encoder trait is the seam: one generic function serves both.
    fn dim_of<E: Encoder>(e: &E) -> usize {
        e.dim()
    }
    let mut rng = HvRng::from_seed(26);
    let standard = hdc_model::RecordEncoder::generate(&mut rng, 8, 4, 512).unwrap();
    let locked = LockedEncoder::generate(
        &mut rng,
        &LockConfig {
            n_features: 8,
            m_levels: 4,
            dim: 512,
            pool_size: 16,
            n_layers: 2,
        },
    )
    .unwrap();
    assert_eq!(dim_of(&standard), 512);
    assert_eq!(dim_of(&locked), 512);
}
