//! Integration tests of the HDLock defense claims: parameter sweeps,
//! toy-scale exhaustive search, vault audit discipline and the paper's
//! headline complexity numbers.

use hdc_attack::{exhaustive_key_search, sweep_parameter, CountingOracle, LockProbe, SweptParam};
use hdc_model::{Encoder, ModelKind};
use hdlock::{
    derive_feature, hdlock_reasoning_guesses, standard_reasoning_guesses, BasePool, DeriveMode,
    EncodingKey, FeatureKey, LockConfig, LockedEncoder,
};
use hypervec::{HvRng, LevelHvs};

fn build_locked(seed: u64, cfg: &LockConfig) -> (LockedEncoder, EncodingKey, BasePool, LevelHvs) {
    let mut rng = HvRng::from_seed(seed);
    let pool = BasePool::generate(&mut rng, cfg.dim, cfg.pool_size);
    let values = LevelHvs::generate(&mut rng, cfg.dim, cfg.m_levels).unwrap();
    let key = EncodingKey::random(
        &mut rng,
        cfg.n_features,
        cfg.n_layers,
        cfg.pool_size,
        cfg.dim,
    )
    .unwrap();
    let enc = LockedEncoder::from_parts(pool.clone(), values.clone(), key.clone()).unwrap();
    (enc, key, pool, values)
}

#[test]
fn all_four_parameter_sweeps_separate_for_both_model_kinds() {
    let cfg = LockConfig {
        n_features: 63,
        m_levels: 8,
        dim: 4096,
        pool_size: 63,
        n_layers: 2,
    };
    for (seed, kind) in [(1u64, ModelKind::Binary), (2, ModelKind::NonBinary)] {
        let (enc, key, pool, values) = build_locked(seed, &cfg);
        let oracle = CountingOracle::new(&enc);
        let probe = LockProbe::capture(&oracle, &values, 0, kind).unwrap();
        for param in [
            SweptParam::Rotation { layer: 0 },
            SweptParam::BaseIndex { layer: 0 },
            SweptParam::Rotation { layer: 1 },
            SweptParam::BaseIndex { layer: 1 },
        ] {
            let sweep = sweep_parameter(&probe, &pool, key.feature(0), param, cfg.dim, 32).unwrap();
            assert_eq!(sweep.correct_score(), 0.0, "{kind} {param:?}");
            assert!(sweep.separates(0.15), "{kind} {param:?}");
        }
    }
}

#[test]
fn toy_exhaustive_search_recovers_key_and_counts_guesses() {
    let cfg = LockConfig {
        n_features: 7,
        m_levels: 4,
        dim: 96,
        pool_size: 5,
        n_layers: 1,
    };
    let (enc, key, pool, values) = build_locked(3, &cfg);
    let oracle = CountingOracle::new(&enc);
    let probe = LockProbe::capture(&oracle, &values, 2, ModelKind::NonBinary).unwrap();
    let (found, score, guesses) = exhaustive_key_search(&probe, &pool, cfg.dim, 1).unwrap();
    assert_eq!(guesses, 96 * 5, "exhaustive search covers exactly D·P keys");
    assert_eq!(score, 0.0);
    assert_eq!(
        derive_feature(&pool, &found, 2).unwrap(),
        derive_feature(&pool, key.feature(2), 2).unwrap()
    );
}

#[test]
fn exhaustive_cost_scales_as_complexity_model_predicts() {
    // The executed toy search and the analytic GuessCount must agree.
    let analytic = hdlock::hdlock_per_feature_guesses(96, 5, 1);
    assert_eq!(analytic.exact(), Some(480));
    let two_layer = hdlock::hdlock_per_feature_guesses(96, 5, 2);
    assert_eq!(two_layer.exact(), Some(480 * 480));
}

#[test]
fn paper_headline_numbers() {
    assert_eq!(standard_reasoning_guesses(784).to_string(), "6.15e5");
    assert_eq!(
        hdlock_reasoning_guesses(784, 10_000, 784, 1).to_string(),
        "6.15e9"
    );
    assert_eq!(
        hdlock_reasoning_guesses(784, 10_000, 784, 2).to_string(),
        "4.82e16"
    );
}

#[test]
fn vault_audit_tracks_privileged_access() {
    let cfg = LockConfig {
        n_features: 9,
        m_levels: 4,
        dim: 512,
        pool_size: 16,
        n_layers: 2,
    };
    let (mut enc, _, _, _) = build_locked(4, &cfg);
    assert_eq!(enc.vault().reads(), 1, "construction derives with one read");
    let row = vec![0u16; 9];
    let _ = enc.encode_binary(&row);
    assert_eq!(enc.vault().reads(), 1, "cached mode never re-reads");
    enc.set_mode(DeriveMode::OnTheFly);
    for _ in 0..5 {
        let _ = enc.encode_binary(&row);
    }
    assert_eq!(enc.vault().reads(), 6, "on-the-fly reads once per sample");
}

#[test]
fn probe_capture_is_cheap_in_oracle_queries() {
    let cfg = LockConfig {
        n_features: 33,
        m_levels: 4,
        dim: 1024,
        pool_size: 33,
        n_layers: 2,
    };
    let (enc, _, _, values) = build_locked(5, &cfg);
    let oracle = CountingOracle::new(&enc);
    let _ = LockProbe::capture(&oracle, &values, 0, ModelKind::Binary).unwrap();
    let _ = LockProbe::capture(&oracle, &values, 1, ModelKind::Binary).unwrap();
    assert_eq!(oracle.queries(), 4, "two queries per attacked feature");
}

#[test]
fn key_reuse_across_features_is_harmless_but_detectable_by_owner() {
    // Two features may share a key (random collision); their derived
    // hypervectors are then identical, which the owner can detect via
    // the equivalence stats. HDLock keygen does not forbid it, matching
    // the paper; this documents the behaviour.
    let mut rng = HvRng::from_seed(6);
    let pool = BasePool::generate(&mut rng, 256, 4);
    let values = LevelHvs::generate(&mut rng, 256, 4).unwrap();
    let fk = FeatureKey::new(vec![hdlock::LayerKey {
        base_index: 1,
        rotation: 7,
    }]);
    let key = EncodingKey::from_feature_keys(vec![fk.clone(), fk], 4, 256).unwrap();
    let enc = LockedEncoder::from_parts(pool, values, key).unwrap();
    assert_eq!(enc.feature_hv(0), enc.feature_hv(1));
    assert!(!hdlock::is_quasi_orthogonal(
        &[enc.feature_hv(0), enc.feature_hv(1)],
        0.1
    ));
}
