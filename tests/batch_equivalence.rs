//! Property tests: the batch (word-parallel) encoding path is
//! bit-identical to the naive per-sample scalar path for both the
//! standard and the locked encoder, in both derivation modes, across
//! random shapes including non-word-aligned dimensions (130) and the
//! paper-scale D = 10 000. Full hypervectors are compared, never just
//! similarities — the paper's figures depend on exact encodings.

use hdc_model::{Encoder, RecordEncoder};
use hdlock::{DeriveMode, LockConfig, LockedEncoder};
use hypervec::HvRng;
use proptest::prelude::*;

/// Dimensions exercising word boundaries plus the paper scale.
fn dims() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(64),
        Just(130),
        200usize..=260,
        Just(1024),
        Just(10_000)
    ]
}

/// A deterministic batch of quantized rows.
fn rows(n_features: usize, m_levels: usize, count: usize, seed: u64) -> Vec<Vec<u16>> {
    let mut rng = HvRng::from_seed(seed);
    (0..count)
        .map(|_| {
            (0..n_features)
                .map(|_| rng.index(m_levels) as u16)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn record_encoder_batch_is_bit_exact_with_scalar(
        d in dims(),
        n in 3usize..=12,
        m in 2usize..=8,
        seed in any::<u64>(),
    ) {
        let mut rng = HvRng::from_seed(seed);
        let enc = RecordEncoder::generate(&mut rng, n, m, d).unwrap();
        let batch_rows = rows(n, m, 9, seed ^ 1);
        let refs: Vec<&[u16]> = batch_rows.iter().map(Vec::as_slice).collect();

        let batch_bin = enc.encode_batch_binary(&refs);
        let batch_int = enc.encode_batch_int(&refs);
        for (i, row) in refs.iter().enumerate() {
            // Engine (single + batch) against the scalar reference.
            let scalar_int = enc.encode_int_scalar(row);
            prop_assert_eq!(&batch_int[i], &scalar_int, "int row {}", i);
            prop_assert_eq!(&batch_int[i], &enc.encode_int(row), "int row {}", i);
            prop_assert_eq!(&batch_bin[i], &scalar_int.sign_ties_positive(), "bin row {}", i);
            prop_assert_eq!(&batch_bin[i], &enc.encode_binary(row), "bin row {}", i);
        }
    }

    #[test]
    fn locked_encoder_batch_is_bit_exact_in_both_modes(
        d in dims(),
        n in 3usize..=10,
        m in 2usize..=6,
        layers in 1usize..=3,
        seed in any::<u64>(),
    ) {
        let cfg = LockConfig { n_features: n, m_levels: m, dim: d, pool_size: n + 3, n_layers: layers };
        let mut rng = HvRng::from_seed(seed);
        let mut enc = LockedEncoder::generate(&mut rng, &cfg).unwrap();
        let batch_rows = rows(n, m, 7, seed ^ 2);
        let refs: Vec<&[u16]> = batch_rows.iter().map(Vec::as_slice).collect();

        for mode in [DeriveMode::Cached, DeriveMode::OnTheFly] {
            enc.set_mode(mode);
            let batch_bin = enc.encode_batch_binary(&refs);
            let batch_int = enc.encode_batch_int(&refs);
            for (i, row) in refs.iter().enumerate() {
                let scalar_int = enc.encode_int_scalar(row);
                prop_assert_eq!(&batch_int[i], &scalar_int, "{:?} int row {}", mode, i);
                prop_assert_eq!(
                    &batch_bin[i],
                    &scalar_int.sign_ties_positive(),
                    "{:?} bin row {}", mode, i
                );
            }
        }
    }

    #[test]
    fn modes_and_paths_agree_with_each_other(
        n in 3usize..=8,
        m in 2usize..=5,
        seed in any::<u64>(),
    ) {
        // Cross-check: cached batch == on-the-fly batch == per-sample,
        // at a non-word-aligned dimension.
        let cfg = LockConfig { n_features: n, m_levels: m, dim: 130, pool_size: 2 * n, n_layers: 2 };
        let mut rng = HvRng::from_seed(seed);
        let mut enc = LockedEncoder::generate(&mut rng, &cfg).unwrap();
        let batch_rows = rows(n, m, 5, seed ^ 3);
        let refs: Vec<&[u16]> = batch_rows.iter().map(Vec::as_slice).collect();

        let cached = enc.encode_batch_binary(&refs);
        enc.set_mode(DeriveMode::OnTheFly);
        let on_the_fly = enc.encode_batch_binary(&refs);
        prop_assert_eq!(&cached, &on_the_fly);
        for (i, row) in refs.iter().enumerate() {
            prop_assert_eq!(&cached[i], &enc.encode_binary(row), "row {}", i);
        }
    }
}
