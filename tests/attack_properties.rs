//! Property-based integration tests: the attack's recovery guarantees
//! and the defense's scoring behaviour across randomized shapes.

use hdc_attack::{
    mapping_accuracy, reason_encoding, rebuild_encoder, CountingOracle, FeatureExtractOptions,
    LockProbe, StandardDump,
};
use hdc_model::{Encoder, ModelKind, RecordEncoder};
use hdlock::{BasePool, EncodingKey, FeatureKey, LockConfig, LockedEncoder};
use hypervec::{HvRng, LevelHvs};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The reasoning attack recovers the exact mapping for any
    /// (reasonable) encoder shape and either model kind.
    #[test]
    fn attack_recovers_any_standard_encoder(
        seed in 0u64..1000,
        n in 5usize..40,
        m in 2usize..10,
        kind_binary in any::<bool>(),
    ) {
        let d = 2048;
        let kind = if kind_binary { ModelKind::Binary } else { ModelKind::NonBinary };
        let mut rng = HvRng::from_seed(seed);
        let enc = RecordEncoder::generate(&mut rng, n, m, d).unwrap();
        let (dump, truth) = StandardDump::from_encoder(&enc, &mut rng);
        let oracle = CountingOracle::new(&enc);
        let recovered = reason_encoding(&oracle, &dump, kind, FeatureExtractOptions::default())
            .unwrap();
        prop_assert_eq!(mapping_accuracy(&recovered, &truth), 1.0);

        // rebuilt encoder is bit-identical on a random probe row
        let rebuilt = rebuild_encoder(&dump, &recovered).unwrap();
        let row: Vec<u16> = (0..n).map(|i| ((seed as usize + i) % m) as u16).collect();
        prop_assert_eq!(rebuilt.encode_binary(&row), enc.encode_binary(&row));
    }

    /// The attack stays within its O(N²) guess budget.
    #[test]
    fn attack_guess_budget(seed in 0u64..1000, n in 5usize..30) {
        let mut rng = HvRng::from_seed(seed);
        let enc = RecordEncoder::generate(&mut rng, n, 4, 1024).unwrap();
        let (dump, _) = StandardDump::from_encoder(&enc, &mut rng);
        let oracle = CountingOracle::new(&enc);
        let recovered = reason_encoding(
            &oracle,
            &dump,
            ModelKind::Binary,
            FeatureExtractOptions::default(),
        )
        .unwrap();
        // value phase ≤ m² + m + 2, feature phase ≤ n(n+1)/2
        let bound = (4 * 4 + 4 + 2 + n * (n + 1) / 2) as u64;
        prop_assert!(recovered.stats.guesses <= bound);
        prop_assert_eq!(recovered.stats.oracle_queries, n as u64 + 1);
    }

    /// Against HDLock, the correct key always scores 0 and a key that is
    /// wrong in one parameter never does.
    #[test]
    fn lock_probe_scores_are_sound(
        seed in 0u64..1000,
        n in 5usize..25,
        layers in 1usize..4,
        kind_binary in any::<bool>(),
    ) {
        let kind = if kind_binary { ModelKind::Binary } else { ModelKind::NonBinary };
        let cfg = LockConfig { n_features: n, m_levels: 4, dim: 4096, pool_size: 2 * n, n_layers: layers };
        let mut rng = HvRng::from_seed(seed);
        let pool = BasePool::generate(&mut rng, cfg.dim, cfg.pool_size);
        let values = LevelHvs::generate(&mut rng, cfg.dim, cfg.m_levels).unwrap();
        let key = EncodingKey::random(&mut rng, n, layers, cfg.pool_size, cfg.dim).unwrap();
        let enc = LockedEncoder::from_parts(pool.clone(), values.clone(), key.clone()).unwrap();
        let oracle = CountingOracle::new(&enc);
        let probe = LockProbe::capture(&oracle, &values, 0, kind).unwrap();
        prop_assert!(probe.support() > 0);

        let correct = probe.score(&pool, key.feature(0)).unwrap();
        prop_assert_eq!(correct, 0.0);

        let mut wrong_layers = key.feature(0).layers().to_vec();
        wrong_layers[0].rotation = (wrong_layers[0].rotation + 1 + (seed as usize % 97)) % cfg.dim;
        let wrong = probe.score(&pool, &FeatureKey::new(wrong_layers)).unwrap();
        prop_assert!(wrong > 0.1, "wrong key scored {wrong}");
    }

    /// Derived feature hypervectors never lose dimensionality or
    /// balance, whatever the key.
    #[test]
    fn derived_features_stay_balanced(seed in 0u64..1000, layers in 1usize..5) {
        let cfg = LockConfig { n_features: 6, m_levels: 4, dim: 10_000, pool_size: 12, n_layers: layers };
        let mut rng = HvRng::from_seed(seed);
        let enc = LockedEncoder::generate(&mut rng, &cfg).unwrap();
        for i in 0..6 {
            let hv = enc.feature_hv(i);
            let neg = hv.count_negative();
            // 5σ window of Binomial(10000, 0.5)
            prop_assert!((4750..=5250).contains(&neg), "feature {i}: {neg}");
        }
    }
}
