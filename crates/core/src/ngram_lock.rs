//! HDLock applied to n-gram sequence encoders — an extension beyond
//! the paper's record-based scope.
//!
//! An n-gram encoder's symbol item memory has exactly the attack
//! surface Sec. 3 describes: the symbol hypervectors sit in plain
//! memory and the encoder can be queried with chosen sequences. The
//! privileged-encoding construction transfers unchanged: each symbol
//! hypervector becomes a product of `L` permuted bases from a public
//! pool, keyed per symbol.

use hdc_model::NgramEncoder;
use hypervec::{BinaryHv, HvRng, ItemMemory};

use crate::error::LockError;
use crate::key::EncodingKey;
use crate::locked_encoder::derive_feature;
use crate::pool::BasePool;
use crate::vault::KeyVault;

/// An n-gram encoder whose symbol hypervectors are derived from a
/// vault-held key over a public base pool.
///
/// # Examples
///
/// ```
/// use hdlock::LockedNgramEncoder;
/// use hypervec::HvRng;
///
/// let mut rng = HvRng::from_seed(1);
/// let enc = LockedNgramEncoder::generate(&mut rng, 26, 3, 2048, 32, 2)?;
/// let h = enc.encode_sequence(&[0, 1, 2, 3])?;
/// assert_eq!(h.dim(), 2048);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct LockedNgramEncoder {
    pool: BasePool,
    vault: KeyVault,
    inner: NgramEncoder,
    n_layers: usize,
}

impl LockedNgramEncoder {
    /// Generates a locked n-gram encoder: public pool of `pool_size`
    /// bases, secret key of `n_layers` layers per symbol, window size
    /// `n`.
    ///
    /// # Errors
    ///
    /// Propagates [`LockError`] for invalid shapes.
    pub fn generate(
        rng: &mut HvRng,
        alphabet: usize,
        n: usize,
        dim: usize,
        pool_size: usize,
        n_layers: usize,
    ) -> Result<Self, LockError> {
        let pool = BasePool::generate(rng, dim, pool_size);
        let key = EncodingKey::random(rng, alphabet, n_layers, pool_size, dim)?;
        Self::from_parts(pool, key, n)
    }

    /// Assembles a locked n-gram encoder from a pool and key.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::DimensionMismatch`] or key-range errors.
    pub fn from_parts(pool: BasePool, key: EncodingKey, n: usize) -> Result<Self, LockError> {
        if key.dim() != pool.dim() {
            return Err(LockError::DimensionMismatch {
                expected: pool.dim(),
                found: key.dim(),
            });
        }
        if key.pool_size() != pool.len() {
            return Err(LockError::PoolTooSmall {
                pool_size: pool.len(),
                n_features: key.n_features(),
            });
        }
        if n == 0 {
            return Err(LockError::InvalidParameter {
                what: "window size must be positive",
            });
        }
        let derived: Result<Vec<BinaryHv>, LockError> = (0..key.n_features())
            .map(|s| derive_feature(&pool, key.feature(s), s))
            .collect();
        let symbols = ItemMemory::from_rows(derived?).map_err(|_| LockError::InvalidParameter {
            what: "derived symbols inconsistent",
        })?;
        let inner =
            NgramEncoder::from_symbols(symbols, n).map_err(|_| LockError::InvalidParameter {
                what: "invalid n-gram shape",
            })?;
        let n_layers = key.n_layers();
        let vault = KeyVault::seal(key);
        vault.with_key(|_| ())?;
        Ok(LockedNgramEncoder {
            pool,
            vault,
            inner,
            n_layers,
        })
    }

    /// The public base pool.
    #[must_use]
    pub fn pool(&self) -> &BasePool {
        &self.pool
    }

    /// The key vault (audit only).
    #[must_use]
    pub fn vault(&self) -> &KeyVault {
        &self.vault
    }

    /// Key layers `L`.
    #[must_use]
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Alphabet size.
    #[must_use]
    pub fn alphabet(&self) -> usize {
        self.inner.alphabet()
    }

    /// Hypervector dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.inner.dim()
    }

    /// The derived symbol hypervector for `symbol` (what the hardware
    /// would compute on the fly; exposed for analysis and tests).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown symbols.
    pub fn symbol_hv(&self, symbol: usize) -> Result<&BinaryHv, LockError> {
        self.inner
            .symbols()
            .get(symbol)
            .map_err(|_| LockError::InvalidParameter {
                what: "unknown symbol",
            })
    }

    /// Encodes a full sequence (bundled sliding n-grams, binarized).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors (short sequence, unknown symbol).
    pub fn encode_sequence(&self, sequence: &[usize]) -> Result<BinaryHv, LockError> {
        self.inner
            .encode_sequence(sequence)
            .map_err(|_| LockError::InvalidParameter {
                what: "sequence too short or bad symbol",
            })
    }

    /// Batch k-mer encoding through the locked symbols — delegates to
    /// [`NgramEncoder::encode_batch`], so it is bit-identical to
    /// [`LockedNgramEncoder::encode_sequence`] sequence by sequence.
    ///
    /// # Errors
    ///
    /// Propagates the first encoding error in sequence order.
    pub fn encode_batch(&self, sequences: &[&[usize]]) -> Result<Vec<BinaryHv>, LockError> {
        self.inner
            .encode_batch(sequences)
            .map_err(|_| LockError::InvalidParameter {
                what: "sequence too short or bad symbol",
            })
    }

    /// Ingests a k-mer corpus into a row memory for top-k similarity
    /// search (see [`NgramEncoder::ingest`]) — the HDLock serving
    /// shape: the *public* row memory holds locked encodings, queries
    /// arrive pre-encoded or through the vault-held key.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors; empty corpora are rejected.
    pub fn ingest(
        &self,
        sequences: &[&[usize]],
    ) -> Result<hypervec::ShardedClassMemory, LockError> {
        self.inner
            .ingest(sequences)
            .map_err(|_| LockError::InvalidParameter {
                what: "empty corpus, sequence too short, or bad symbol",
            })
    }

    /// Reasoning complexity for the symbol mapping: `A · (D·P)^L` where
    /// `A` is the alphabet size — the n-gram analogue of the paper's
    /// `N · (D·P)^L`.
    #[must_use]
    pub fn reasoning_guesses(&self) -> crate::complexity::GuessCount {
        crate::complexity::hdlock_reasoning_guesses(
            self.alphabet(),
            self.dim(),
            self.pool.len(),
            self.n_layers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{FeatureKey, LayerKey};

    #[test]
    fn locked_and_unlocked_agree_given_same_symbols() {
        let mut rng = HvRng::from_seed(1);
        let locked = LockedNgramEncoder::generate(&mut rng, 8, 3, 1024, 16, 2).unwrap();
        // Rebuild a plain encoder from the derived symbols: outputs must
        // be bit-identical (the lock changes provenance, not semantics).
        let rows: Vec<BinaryHv> = (0..8)
            .map(|s| locked.symbol_hv(s).unwrap().clone())
            .collect();
        let plain = NgramEncoder::from_symbols(ItemMemory::from_rows(rows).unwrap(), 3).unwrap();
        let seq: Vec<usize> = (0..20).map(|i| i % 8).collect();
        assert_eq!(
            locked.encode_sequence(&seq).unwrap(),
            plain.encode_sequence(&seq).unwrap()
        );
    }

    #[test]
    fn derived_symbols_are_quasi_orthogonal() {
        let mut rng = HvRng::from_seed(2);
        let locked = LockedNgramEncoder::generate(&mut rng, 10, 2, 10_000, 20, 2).unwrap();
        let rows: Vec<BinaryHv> = (0..10)
            .map(|s| locked.symbol_hv(s).unwrap().clone())
            .collect();
        assert!(crate::equivalence::is_quasi_orthogonal(&rows, 0.04));
    }

    #[test]
    fn complexity_uses_alphabet_size() {
        let mut rng = HvRng::from_seed(3);
        let locked = LockedNgramEncoder::generate(&mut rng, 26, 3, 10_000, 100, 2).unwrap();
        let g = locked.reasoning_guesses();
        assert_eq!(g.exact(), Some(26u128 * (10_000u128 * 100).pow(2)));
    }

    #[test]
    fn from_parts_validates() {
        let mut rng = HvRng::from_seed(4);
        let pool = BasePool::generate(&mut rng, 256, 4);
        let key = EncodingKey::from_feature_keys(
            vec![FeatureKey::new(vec![LayerKey {
                base_index: 0,
                rotation: 1,
            }])],
            4,
            256,
        )
        .unwrap();
        assert!(LockedNgramEncoder::from_parts(pool.clone(), key.clone(), 0).is_err());
        assert!(LockedNgramEncoder::from_parts(pool, key, 2).is_ok());
    }

    #[test]
    fn rejects_short_sequences() {
        let mut rng = HvRng::from_seed(5);
        let locked = LockedNgramEncoder::generate(&mut rng, 8, 4, 512, 8, 1).unwrap();
        assert!(locked.encode_sequence(&[0, 1]).is_err());
    }
}
