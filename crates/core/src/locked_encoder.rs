//! The HDLock locked encoding module (paper Sec. 4, Fig. 4).
//!
//! Instead of storing `N` feature hypervectors, the encoder stores a
//! public pool of `P` bases and derives each feature hypervector from a
//! secret key: `FeaHV_i = Π_{l=1}^{L} ρ^{k_{i,l}}(B_{i,l})` (Eq. 9). The
//! encoding itself is unchanged (Eq. 10), so accuracy is unaffected —
//! but an attacker who dumps the pool learns nothing about which
//! (rotated) bases build which feature.
//!
//! Like the standard encoder, the locked encoder runs on the
//! word-parallel engine (`hypervec::BitSliceAccumulator`) and overrides
//! the batch entry points for both derivation modes; on-the-fly
//! derivation reuses caller-owned scratch buffers via
//! [`derive_feature_into`] so the per-sample cost is pure compute, not
//! allocation.
//!
//! A deployed locked model serves queries through
//! [`hdc_model::InferenceSession`]: the session fuses the locked batch
//! encode with the sharded class-memory search, so protected inference
//! runs on exactly the same query pipeline as the unprotected model —
//! accuracy-neutral by construction (paper Fig. 8) and bit-identical to
//! the scalar reference path in both derivation modes (pinned by
//! `session_inference_matches_scalar_in_both_modes`).

use hdc_model::Encoder;
use hypervec::{par, BinaryHv, BitSliceAccumulator, BoundPairCache, HvRng, IntHv, LevelHvs};

use crate::error::LockError;
use crate::key::{EncodingKey, FeatureKey};
use crate::pool::BasePool;
use crate::vault::KeyVault;

/// Derives one feature hypervector from a (candidate) key against a
/// public pool — Eq. 9. Also the building block the *attacker* uses to
/// materialize guesses, which is why it is a free function rather than a
/// vault-privileged method. `feature` identifies whose key this is, so
/// range errors name the real feature instead of a placeholder.
///
/// # Errors
///
/// Returns [`LockError::KeyOutOfRange`] if the key references a missing
/// base, or [`LockError::InvalidParameter`] for an empty key.
pub fn derive_feature(
    pool: &BasePool,
    key: &FeatureKey,
    feature: usize,
) -> Result<BinaryHv, LockError> {
    let mut out = BinaryHv::ones(pool.dim());
    let mut scratch = BinaryHv::ones(pool.dim());
    derive_feature_into(pool, key, feature, &mut out, &mut scratch)?;
    Ok(out)
}

/// Zero-alloc variant of [`derive_feature`]: writes the derived feature
/// hypervector into `out`, using `scratch` for the rotated base. Both
/// buffers must have the pool's dimension and may be reused across
/// calls — the hot path of on-the-fly (per-sample) derivation.
///
/// # Errors
///
/// Same as [`derive_feature`].
///
/// # Panics
///
/// Panics if `out` or `scratch` does not match the pool's dimension.
pub fn derive_feature_into(
    pool: &BasePool,
    key: &FeatureKey,
    feature: usize,
    out: &mut BinaryHv,
    scratch: &mut BinaryHv,
) -> Result<(), LockError> {
    let layers = key.layers();
    if layers.is_empty() {
        return Err(LockError::InvalidParameter {
            what: "feature key needs at least one layer",
        });
    }
    out.reset_to_ones();
    for lk in layers {
        let base = pool
            .base(lk.base_index)
            .map_err(|_| LockError::KeyOutOfRange {
                feature,
                base_index: lk.base_index,
                rotation: lk.rotation,
            })?;
        base.rotated_into(lk.rotation, scratch);
        out.bind_assign(scratch);
    }
    Ok(())
}

/// How the encoder obtains feature hypervectors at encode time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeriveMode {
    /// Derive all `N` feature hypervectors once and cache them (one
    /// vault read total). The fast software path.
    #[default]
    Cached,
    /// Re-derive from the key on every encoded sample (one vault read
    /// per sample), mirroring a hardware pipeline that never leaves key
    ///-derived state in observable memory.
    OnTheFly,
    /// Constant-time serving mode: fixed work per encoded sample
    /// regardless of query content or cache state. Every encode strides
    /// the **whole** `N × M` bound-pair table with branchless selection
    /// ([`BoundPairCache::accumulate_row_oblivious`]) and performs one
    /// cache-oblivious vault read ([`KeyVault::with_key_oblivious`])
    /// per sample, so neither encode latency nor the secure-memory
    /// access pattern depends on which `(feature, level)` pairs the
    /// query touches. Bit-identical to [`DeriveMode::Cached`] by
    /// construction; costs roughly `M×` the cached encode.
    Hardened,
}

/// The locked encoder: drop-in [`Encoder`] replacement whose feature
/// hypervectors are derived from a vault-held key.
///
/// # Examples
///
/// ```
/// use hdc_model::Encoder;
/// use hdlock::{LockConfig, LockedEncoder};
/// use hypervec::HvRng;
///
/// let mut rng = HvRng::from_seed(7);
/// let config = LockConfig { n_features: 16, m_levels: 4, dim: 2048, pool_size: 32, n_layers: 2 };
/// let enc = LockedEncoder::generate(&mut rng, &config)?;
/// let h = enc.encode_binary(&vec![0u16; 16]);
/// assert_eq!(h.dim(), 2048);
/// # Ok::<(), hdlock::LockError>(())
/// ```
#[derive(Debug)]
pub struct LockedEncoder {
    pool: BasePool,
    values: LevelHvs,
    vault: KeyVault,
    derived: Vec<BinaryHv>,
    /// Shared lazily-built `(feature, level)` bound-pair cache over the
    /// cached derived features (cached-mode batch encoding).
    bound_cache: BoundPairCache,
    mode: DeriveMode,
    n_layers: usize,
}

/// Structural parameters of a locked encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockConfig {
    /// Number of input features `N`.
    pub n_features: usize,
    /// Number of value levels `M`.
    pub m_levels: usize,
    /// Hypervector dimensionality `D`.
    pub dim: usize,
    /// Public base-pool size `P`.
    pub pool_size: usize,
    /// Key layers `L` (0 = unprotected baseline: feature `i` is base `i`).
    pub n_layers: usize,
}

impl LockConfig {
    /// The paper's validation setup for a given `N`: `P = N`,
    /// `D = 10 000`, `M = 16`, `L = 2`.
    #[must_use]
    pub fn paper_validation(n_features: usize) -> Self {
        LockConfig {
            n_features,
            m_levels: 16,
            dim: 10_000,
            pool_size: n_features,
            n_layers: 2,
        }
    }
}

impl LockedEncoder {
    /// Generates a fresh locked encoder: random pool, random correlated
    /// value hypervectors, random key sealed into a vault.
    ///
    /// # Errors
    ///
    /// Propagates [`LockError`] for invalid parameters (see
    /// [`EncodingKey::random`]) and level-generation failures.
    pub fn generate(rng: &mut HvRng, config: &LockConfig) -> Result<Self, LockError> {
        let pool = BasePool::generate(rng, config.dim, config.pool_size);
        let values = LevelHvs::generate(rng, config.dim, config.m_levels).map_err(|_| {
            LockError::InvalidParameter {
                what: "invalid level-hypervector shape",
            }
        })?;
        let key = EncodingKey::random(
            rng,
            config.n_features,
            config.n_layers,
            config.pool_size,
            config.dim,
        )?;
        Self::from_parts(pool, values, key)
    }

    /// Assembles a locked encoder from explicit parts (pool, values and
    /// key), sealing the key.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::DimensionMismatch`] when parts disagree on
    /// `D`, or key-range errors.
    pub fn from_parts(
        pool: BasePool,
        values: LevelHvs,
        key: EncodingKey,
    ) -> Result<Self, LockError> {
        if pool.dim() != values.dim() {
            return Err(LockError::DimensionMismatch {
                expected: pool.dim(),
                found: values.dim(),
            });
        }
        if key.dim() != pool.dim() {
            return Err(LockError::DimensionMismatch {
                expected: pool.dim(),
                found: key.dim(),
            });
        }
        if key.pool_size() != pool.len() {
            return Err(LockError::PoolTooSmall {
                pool_size: pool.len(),
                n_features: key.n_features(),
            });
        }
        let n_layers = key.n_layers();
        // Derive the cached feature hypervectors with a single
        // privileged read, reusing one scratch pair across features.
        let mut scratch = BinaryHv::ones(pool.dim());
        let mut derived = Vec::with_capacity(key.n_features());
        for i in 0..key.n_features() {
            let mut fea = BinaryHv::ones(pool.dim());
            derive_feature_into(&pool, key.feature(i), i, &mut fea, &mut scratch)?;
            derived.push(fea);
        }
        let vault = KeyVault::seal(key);
        // Account for the derivation read in the audit trail.
        vault.with_key(|_| ()).map_err(|_| LockError::VaultSealed)?;
        Ok(LockedEncoder {
            pool,
            values,
            vault,
            derived,
            bound_cache: BoundPairCache::new(),
            mode: DeriveMode::Cached,
            n_layers,
        })
    }

    /// Issues a re-keyed clone of this encoder: same public pool and
    /// value hypervectors, fresh random key of the same depth.
    ///
    /// Re-keying is the recovery path if a device key is ever suspected
    /// leaked: the public memory image stays valid, but every feature
    /// hypervector changes, so the old class hypervectors (and any
    /// stolen knowledge of the old mapping) become useless — the model
    /// must be retrained under the new key.
    ///
    /// # Errors
    ///
    /// Propagates key-generation errors (cannot occur for parameters
    /// that built `self`).
    pub fn rekeyed(&self, rng: &mut HvRng) -> Result<Self, LockError> {
        let key = EncodingKey::random(
            rng,
            self.n_features(),
            self.n_layers,
            self.pool.len(),
            self.pool.dim(),
        )?;
        let mut rekeyed = Self::from_parts(self.pool.clone(), self.values.clone(), key)?;
        // A re-key is a recovery action, not a policy change: a hardened
        // deployment must stay hardened across generations.
        rekeyed.mode = self.mode;
        Ok(rekeyed)
    }

    /// Switches between cached, on-the-fly and hardened derivation.
    pub fn set_mode(&mut self, mode: DeriveMode) {
        self.mode = mode;
    }

    /// Current derivation mode.
    #[must_use]
    pub fn mode(&self) -> DeriveMode {
        self.mode
    }

    /// Key layers `L`.
    #[must_use]
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// The public base pool (what an attacker can dump).
    #[must_use]
    pub fn pool(&self) -> &BasePool {
        &self.pool
    }

    /// The public value hypervectors (unprotected by design; see the
    /// paper's "Why Not Represent the Value Hypervectors?").
    #[must_use]
    pub fn values(&self) -> &LevelHvs {
        &self.values
    }

    /// The key vault (for audit inspection; key material stays inside).
    #[must_use]
    pub fn vault(&self) -> &KeyVault {
        &self.vault
    }

    /// Reference scalar implementation of Eq. 10 (per-dimension `i32`
    /// adds, allocating derivation). Kept as the engine's bit-exactness
    /// target and the benchmark baseline; respects the derivation mode's
    /// vault-read accounting.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Encoder::encode_int`].
    #[must_use]
    pub fn encode_int_scalar(&self, levels: &[u16]) -> IntHv {
        self.check_row(levels);
        let mut acc = IntHv::zeros(self.dim());
        match self.mode {
            DeriveMode::Cached => {
                for (i, &lv) in levels.iter().enumerate() {
                    acc.add_bound_pair(self.values.level(usize::from(lv)), &self.derived[i]);
                }
            }
            DeriveMode::OnTheFly => {
                self.vault
                    .with_key(|key| {
                        for (i, &lv) in levels.iter().enumerate() {
                            let fea = derive_feature(&self.pool, key.feature(i), i)
                                .expect("sealed key was validated at construction");
                            acc.add_bound_pair(self.values.level(usize::from(lv)), &fea);
                        }
                    })
                    .expect("vault alive while encoder exists");
            }
            DeriveMode::Hardened => {
                // Same arithmetic as the cached arm, but under one
                // oblivious vault read so the scalar reference keeps the
                // hardened mode's audit accounting.
                self.vault
                    .with_key_oblivious(|_| {
                        for (i, &lv) in levels.iter().enumerate() {
                            acc.add_bound_pair(
                                self.values.level(usize::from(lv)),
                                &self.derived[i],
                            );
                        }
                    })
                    .expect("vault alive while encoder exists");
            }
        }
        acc
    }

    fn derived_feature(&self, i: usize) -> BinaryHv {
        match self.mode {
            DeriveMode::Cached => self.derived[i].clone(),
            DeriveMode::OnTheFly => self
                .vault
                .with_key(|key| derive_feature(&self.pool, key.feature(i), i))
                .expect("vault alive while encoder exists")
                .expect("sealed key was validated at construction"),
            // Sweep every cached feature and pick `i` with a branchless
            // mask, so introspection reads look the same for any index.
            DeriveMode::Hardened => {
                let n_words = self.dim().div_ceil(64);
                let mut words = vec![0u64; n_words];
                for (j, fea) in self.derived.iter().enumerate() {
                    let eq = (j as u64) ^ (i as u64);
                    let mask = ((eq | eq.wrapping_neg()) >> 63).wrapping_sub(1);
                    for (w, &fw) in words.iter_mut().zip(fea.bits().words()) {
                        *w |= fw & mask;
                    }
                }
                BinaryHv::from_bits(hypervec::bitvec::BitWords::from_words(words, self.dim()))
            }
        }
    }

    /// Accumulates one row from the cached derived features via the
    /// shared bound-pair cache.
    fn accumulate_row_cached(&self, acc: &mut BitSliceAccumulator, levels: &[u16]) {
        self.bound_cache
            .accumulate_row(acc, &self.derived, &self.values, levels);
    }

    /// Accumulates one row deriving every feature from the key under a
    /// single privileged read, reusing the caller's scratch buffers.
    fn accumulate_row_on_the_fly(
        &self,
        acc: &mut BitSliceAccumulator,
        levels: &[u16],
        fea: &mut BinaryHv,
        scratch: &mut BinaryHv,
    ) {
        self.vault
            .with_key(|key| {
                for (i, &lv) in levels.iter().enumerate() {
                    derive_feature_into(&self.pool, key.feature(i), i, fea, scratch)
                        .expect("sealed key was validated at construction");
                    acc.add_bound_pair(self.values.level(usize::from(lv)), fea);
                }
            })
            .expect("vault alive while encoder exists");
    }

    /// Accumulates one row in fixed time: strides the full bound-pair
    /// table with branchless selection under a single cache-oblivious
    /// vault read. `select` is per-worker scratch (`⌈D/64⌉` words).
    fn accumulate_row_hardened(
        &self,
        acc: &mut BitSliceAccumulator,
        levels: &[u16],
        select: &mut Vec<u64>,
    ) {
        self.vault
            .with_key_oblivious(|_| {
                self.bound_cache.accumulate_row_oblivious(
                    acc,
                    &self.derived,
                    &self.values,
                    levels,
                    select,
                );
            })
            .expect("vault alive while encoder exists");
    }

    /// Shared batch driver: chunked fan-out with per-worker scratch
    /// state, finishing each sample with `finish` (majority vote or
    /// integer widening).
    fn encode_batch_with<T: Send>(
        &self,
        rows: &[&[u16]],
        finish: impl Fn(&BitSliceAccumulator) -> T + Sync,
    ) -> Vec<T> {
        for row in rows {
            self.check_row(row);
        }
        match self.mode {
            DeriveMode::Cached => {
                self.bound_cache
                    .warm_for_batch(&self.derived, &self.values, rows.len());
                par::par_chunk_map(rows.len(), 4, |range| {
                    let mut acc = BitSliceAccumulator::new(self.dim());
                    let mut out = Vec::with_capacity(range.len());
                    for r in range {
                        acc.clear();
                        self.accumulate_row_cached(&mut acc, rows[r]);
                        out.push(finish(&acc));
                    }
                    out
                })
            }
            DeriveMode::OnTheFly => par::par_chunk_map(rows.len(), 4, |range| {
                let mut acc = BitSliceAccumulator::new(self.dim());
                let mut fea = BinaryHv::ones(self.dim());
                let mut scratch = BinaryHv::ones(self.dim());
                let mut out = Vec::with_capacity(range.len());
                for r in range {
                    acc.clear();
                    self.accumulate_row_on_the_fly(&mut acc, rows[r], &mut fea, &mut scratch);
                    out.push(finish(&acc));
                }
                out
            }),
            DeriveMode::Hardened => {
                // Warm unconditionally — no batch-length branch, so the
                // first query after a swap costs the same as the last.
                self.bound_cache.warm(&self.derived, &self.values);
                par::par_chunk_map(rows.len(), 4, |range| {
                    let mut acc = BitSliceAccumulator::new(self.dim());
                    let mut select = Vec::new();
                    let mut out = Vec::with_capacity(range.len());
                    for r in range {
                        acc.clear();
                        self.accumulate_row_hardened(&mut acc, rows[r], &mut select);
                        out.push(finish(&acc));
                    }
                    out
                })
            }
        }
    }

    fn check_row(&self, levels: &[u16]) {
        assert_eq!(
            levels.len(),
            self.n_features(),
            "row has {} levels, encoder expects {}",
            levels.len(),
            self.n_features()
        );
    }
}

impl Encoder for LockedEncoder {
    fn n_features(&self) -> usize {
        self.derived.len()
    }

    fn m_levels(&self) -> usize {
        self.values.m()
    }

    fn dim(&self) -> usize {
        self.pool.dim()
    }

    fn encode_int(&self, levels: &[u16]) -> IntHv {
        self.check_row(levels);
        let mut acc = BitSliceAccumulator::new(self.dim());
        match self.mode {
            DeriveMode::Cached => self.accumulate_row_cached(&mut acc, levels),
            DeriveMode::OnTheFly => {
                let mut fea = BinaryHv::ones(self.dim());
                let mut scratch = BinaryHv::ones(self.dim());
                self.accumulate_row_on_the_fly(&mut acc, levels, &mut fea, &mut scratch);
            }
            DeriveMode::Hardened => {
                self.accumulate_row_hardened(&mut acc, levels, &mut Vec::new());
            }
        }
        acc.to_int()
    }

    fn encode_binary(&self, levels: &[u16]) -> BinaryHv {
        self.check_row(levels);
        let mut acc = BitSliceAccumulator::new(self.dim());
        match self.mode {
            DeriveMode::Cached => self.accumulate_row_cached(&mut acc, levels),
            DeriveMode::OnTheFly => {
                let mut fea = BinaryHv::ones(self.dim());
                let mut scratch = BinaryHv::ones(self.dim());
                self.accumulate_row_on_the_fly(&mut acc, levels, &mut fea, &mut scratch);
            }
            DeriveMode::Hardened => {
                self.accumulate_row_hardened(&mut acc, levels, &mut Vec::new());
            }
        }
        acc.majority_ties_positive()
    }

    fn encode_batch_binary(&self, rows: &[&[u16]]) -> Vec<BinaryHv> {
        self.encode_batch_with(rows, BitSliceAccumulator::majority_ties_positive)
    }

    fn encode_batch_int(&self, rows: &[&[u16]]) -> Vec<IntHv> {
        self.encode_batch_with(rows, BitSliceAccumulator::to_int)
    }

    fn feature_hv(&self, i: usize) -> BinaryHv {
        self.derived_feature(i)
    }

    fn value_hv(&self, v: usize) -> BinaryHv {
        self.values.level(v).clone()
    }

    fn is_hardened(&self) -> bool {
        self.mode == DeriveMode::Hardened
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::LayerKey;

    fn config() -> LockConfig {
        LockConfig {
            n_features: 9,
            m_levels: 4,
            dim: 1024,
            pool_size: 20,
            n_layers: 2,
        }
    }

    #[test]
    fn derive_feature_is_product_of_rotated_bases() {
        let mut rng = HvRng::from_seed(1);
        let pool = BasePool::generate(&mut rng, 512, 6);
        let fk = FeatureKey::new(vec![
            LayerKey {
                base_index: 2,
                rotation: 10,
            },
            LayerKey {
                base_index: 5,
                rotation: 100,
            },
        ]);
        let hv = derive_feature(&pool, &fk, 0).unwrap();
        let manual = pool
            .base(2)
            .unwrap()
            .rotated(10)
            .bind(&pool.base(5).unwrap().rotated(100));
        assert_eq!(hv, manual);
    }

    #[test]
    fn derive_feature_rejects_missing_base_naming_the_feature() {
        let mut rng = HvRng::from_seed(2);
        let pool = BasePool::generate(&mut rng, 64, 2);
        let fk = FeatureKey::new(vec![LayerKey {
            base_index: 7,
            rotation: 0,
        }]);
        // The error must carry the *real* feature index, not a hardcoded 0.
        match derive_feature(&pool, &fk, 5) {
            Err(LockError::KeyOutOfRange {
                feature,
                base_index,
                ..
            }) => {
                assert_eq!(feature, 5);
                assert_eq!(base_index, 7);
            }
            other => panic!("expected KeyOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn derive_feature_into_matches_allocating_variant() {
        let mut rng = HvRng::from_seed(11);
        let pool = BasePool::generate(&mut rng, 130, 4);
        let fk = FeatureKey::new(vec![
            LayerKey {
                base_index: 1,
                rotation: 29,
            },
            LayerKey {
                base_index: 3,
                rotation: 101,
            },
        ]);
        let mut out = BinaryHv::ones(130);
        let mut scratch = BinaryHv::ones(130);
        // Dirty the buffers first: the contract is full overwrite.
        out = out.negated();
        derive_feature_into(&pool, &fk, 2, &mut out, &mut scratch).unwrap();
        assert_eq!(out, derive_feature(&pool, &fk, 2).unwrap());
    }

    #[test]
    fn encode_matches_manual_sum() {
        let mut rng = HvRng::from_seed(3);
        let enc = LockedEncoder::generate(&mut rng, &config()).unwrap();
        let row: Vec<u16> = (0..9).map(|i| (i % 4) as u16).collect();
        let h = enc.encode_int(&row);
        let mut manual = IntHv::zeros(1024);
        for (i, &lv) in row.iter().enumerate() {
            manual.add_binary(&enc.feature_hv(i).bind(&enc.value_hv(usize::from(lv))));
        }
        assert_eq!(h, manual);
    }

    #[test]
    fn engine_matches_scalar_reference_in_both_modes() {
        let mut rng = HvRng::from_seed(12);
        let mut enc = LockedEncoder::generate(&mut rng, &config()).unwrap();
        let row: Vec<u16> = (0..9).map(|i| ((i * 5) % 4) as u16).collect();
        for mode in [
            DeriveMode::Cached,
            DeriveMode::OnTheFly,
            DeriveMode::Hardened,
        ] {
            enc.set_mode(mode);
            assert_eq!(
                enc.encode_int(&row),
                enc.encode_int_scalar(&row),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn batch_matches_per_sample_in_both_modes() {
        let mut rng = HvRng::from_seed(13);
        let mut enc = LockedEncoder::generate(&mut rng, &config()).unwrap();
        let rows: Vec<Vec<u16>> = (0..11)
            .map(|s| (0..9).map(|i| ((s + 2 * i) % 4) as u16).collect())
            .collect();
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        for mode in [
            DeriveMode::Cached,
            DeriveMode::OnTheFly,
            DeriveMode::Hardened,
        ] {
            enc.set_mode(mode);
            let batch = enc.encode_batch_binary(&refs);
            let batch_int = enc.encode_batch_int(&refs);
            for (i, row) in refs.iter().enumerate() {
                assert_eq!(batch[i], enc.encode_binary(row), "{mode:?} row {i}");
                assert_eq!(batch_int[i], enc.encode_int(row), "{mode:?} row {i}");
            }
        }
    }

    #[test]
    fn cached_and_on_the_fly_agree() {
        let mut rng = HvRng::from_seed(4);
        let mut enc = LockedEncoder::generate(&mut rng, &config()).unwrap();
        let row: Vec<u16> = (0..9).map(|i| ((i * 3) % 4) as u16).collect();
        let cached = enc.encode_binary(&row);
        enc.set_mode(DeriveMode::OnTheFly);
        let otf = enc.encode_binary(&row);
        assert_eq!(cached, otf);
        enc.set_mode(DeriveMode::Hardened);
        assert_eq!(cached, enc.encode_binary(&row));
    }

    #[test]
    fn hardened_mode_reads_vault_per_sample() {
        let mut rng = HvRng::from_seed(15);
        let mut enc = LockedEncoder::generate(&mut rng, &config()).unwrap();
        enc.set_mode(DeriveMode::Hardened);
        assert!(Encoder::is_hardened(&enc));
        let base_reads = enc.vault().reads();
        let row = vec![0u16; 9];
        let _ = enc.encode_binary(&row);
        let _ = enc.encode_int(&row);
        assert_eq!(enc.vault().reads(), base_reads + 2);
        let rows: Vec<Vec<u16>> = (0..7).map(|_| vec![0u16; 9]).collect();
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let _ = enc.encode_batch_binary(&refs);
        assert_eq!(enc.vault().reads(), base_reads + 9);
    }

    #[test]
    fn hardened_feature_hv_matches_cached() {
        let mut rng = HvRng::from_seed(16);
        let mut enc = LockedEncoder::generate(&mut rng, &config()).unwrap();
        let cached: Vec<BinaryHv> = (0..9).map(|i| enc.feature_hv(i)).collect();
        enc.set_mode(DeriveMode::Hardened);
        for (i, fea) in cached.iter().enumerate() {
            assert_eq!(&enc.feature_hv(i), fea, "feature {i}");
        }
    }

    #[test]
    fn rekeyed_preserves_mode() {
        let mut rng = HvRng::from_seed(17);
        let mut enc = LockedEncoder::generate(&mut rng, &config()).unwrap();
        enc.set_mode(DeriveMode::Hardened);
        let rekeyed = enc.rekeyed(&mut rng).unwrap();
        assert_eq!(rekeyed.mode(), DeriveMode::Hardened);
        assert!(Encoder::is_hardened(&rekeyed));
    }

    #[test]
    fn on_the_fly_mode_reads_vault_per_sample() {
        let mut rng = HvRng::from_seed(5);
        let mut enc = LockedEncoder::generate(&mut rng, &config()).unwrap();
        let base_reads = enc.vault().reads();
        let row = vec![0u16; 9];
        let _ = enc.encode_binary(&row);
        assert_eq!(
            enc.vault().reads(),
            base_reads,
            "cached mode must not read the vault"
        );
        enc.set_mode(DeriveMode::OnTheFly);
        let _ = enc.encode_binary(&row);
        let _ = enc.encode_binary(&row);
        assert_eq!(enc.vault().reads(), base_reads + 2);
    }

    #[test]
    fn on_the_fly_batch_reads_vault_per_sample() {
        let mut rng = HvRng::from_seed(14);
        let mut enc = LockedEncoder::generate(&mut rng, &config()).unwrap();
        enc.set_mode(DeriveMode::OnTheFly);
        let base_reads = enc.vault().reads();
        let rows: Vec<Vec<u16>> = (0..7).map(|_| vec![0u16; 9]).collect();
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let _ = enc.encode_batch_binary(&refs);
        assert_eq!(enc.vault().reads(), base_reads + 7);
    }

    #[test]
    fn session_inference_matches_scalar_in_both_modes() {
        use hdc_model::{ClassMemory, InferenceSession, ModelKind};

        let mut rng = HvRng::from_seed(21);
        let mut enc = LockedEncoder::generate(&mut rng, &config()).unwrap();
        let rows: Vec<Vec<u16>> = (0..13)
            .map(|s| (0..9).map(|i| ((s + 3 * i) % 4) as u16).collect())
            .collect();
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        for kind in [ModelKind::Binary, ModelKind::NonBinary] {
            let mut memory = ClassMemory::new(kind, 3, 1024);
            for (j, row) in refs.iter().take(3).enumerate() {
                memory.acc_mut(j).add(&enc.encode_binary(row));
            }
            memory.rebinarize();
            for mode in [
                DeriveMode::Cached,
                DeriveMode::OnTheFly,
                DeriveMode::Hardened,
            ] {
                enc.set_mode(mode);
                let session = InferenceSession::new(&enc, &memory);
                let fused = session.classify_batch(&refs);
                for (i, row) in refs.iter().enumerate() {
                    let scalar = match kind {
                        ModelKind::Binary => {
                            hdc_model::infer::classify_binary_hv(&memory, &enc.encode_binary(row))
                        }
                        ModelKind::NonBinary => {
                            hdc_model::infer::classify_int_hv(&memory, &enc.encode_int(row))
                        }
                    };
                    assert_eq!(fused[i], scalar, "{kind:?} {mode:?} row {i}");
                }
            }
        }
    }

    #[test]
    fn session_on_the_fly_batch_keeps_vault_accounting() {
        use hdc_model::{ClassMemory, InferenceSession, ModelKind};

        let mut rng = HvRng::from_seed(22);
        let mut enc = LockedEncoder::generate(&mut rng, &config()).unwrap();
        enc.set_mode(DeriveMode::OnTheFly);
        let memory = ClassMemory::new(ModelKind::Binary, 2, 1024);
        let session = InferenceSession::new(&enc, &memory);
        let base_reads = enc.vault().reads();
        let rows: Vec<Vec<u16>> = (0..6).map(|_| vec![0u16; 9]).collect();
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let _ = session.classify_batch(&refs);
        // The fused path still derives per sample under one privileged
        // read each — serving does not change the audit trail.
        assert_eq!(enc.vault().reads(), base_reads + 6);
    }

    #[test]
    fn derived_features_are_quasi_orthogonal() {
        let mut rng = HvRng::from_seed(6);
        let cfg = LockConfig {
            n_features: 12,
            m_levels: 4,
            dim: 10_000,
            pool_size: 24,
            n_layers: 2,
        };
        let enc = LockedEncoder::generate(&mut rng, &cfg).unwrap();
        for i in 0..12 {
            for j in (i + 1)..12 {
                let d = enc.feature_hv(i).normalized_hamming(&enc.feature_hv(j));
                assert!((d - 0.5).abs() < 0.05, "features {i},{j}: {d}");
            }
        }
    }

    #[test]
    fn zero_layers_reproduces_identity_pool_mapping() {
        let mut rng = HvRng::from_seed(7);
        let cfg = LockConfig {
            n_features: 5,
            m_levels: 4,
            dim: 512,
            pool_size: 5,
            n_layers: 0,
        };
        let enc = LockedEncoder::generate(&mut rng, &cfg).unwrap();
        for i in 0..5 {
            assert_eq!(&enc.feature_hv(i), enc.pool().base(i).unwrap());
        }
    }

    #[test]
    fn from_parts_validates_dimensions() {
        let mut rng = HvRng::from_seed(8);
        let pool = BasePool::generate(&mut rng, 128, 4);
        let values = LevelHvs::generate(&mut rng, 256, 4).unwrap();
        let key = EncodingKey::random(&mut rng, 3, 1, 4, 128).unwrap();
        assert!(matches!(
            LockedEncoder::from_parts(pool, values, key),
            Err(LockError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rekeying_changes_every_feature() {
        let mut rng = HvRng::from_seed(10);
        let enc = LockedEncoder::generate(&mut rng, &config()).unwrap();
        let rekeyed = enc.rekeyed(&mut rng).unwrap();
        assert_eq!(rekeyed.pool(), enc.pool());
        assert_eq!(rekeyed.values(), enc.values());
        let mut changed = 0;
        for i in 0..enc.n_features() {
            if enc.feature_hv(i) != rekeyed.feature_hv(i) {
                changed += 1;
            }
        }
        assert_eq!(changed, enc.n_features(), "all features must re-derive");
        let row = vec![0u16; 9];
        assert_ne!(enc.encode_binary(&row), rekeyed.encode_binary(&row));
    }

    #[test]
    fn wrong_guess_changes_encoding() {
        // Planting a wrong key for one feature must visibly change the
        // encoder output (this is what the attack criterion measures).
        let mut rng = HvRng::from_seed(9);
        let cfg = config();
        let pool = BasePool::generate(&mut rng, cfg.dim, cfg.pool_size);
        let values = LevelHvs::generate(&mut rng, cfg.dim, cfg.m_levels).unwrap();
        let key = EncodingKey::random(&mut rng, cfg.n_features, 2, cfg.pool_size, cfg.dim).unwrap();
        let mut wrong_key = key.clone();
        let mut fk = wrong_key.feature(0).clone();
        let mut layers = fk.layers().to_vec();
        layers[0].rotation = (layers[0].rotation + 1) % cfg.dim;
        fk = FeatureKey::new(layers);
        wrong_key.set_feature(0, fk).unwrap();

        let enc = LockedEncoder::from_parts(pool.clone(), values.clone(), key).unwrap();
        let wrong = LockedEncoder::from_parts(pool, values, wrong_key).unwrap();
        let row = vec![0u16; 9];
        assert_ne!(enc.encode_binary(&row), wrong.encode_binary(&row));
    }
}
