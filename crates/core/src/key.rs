//! The HDLock key: which base hypervectors, with which rotations, build
//! each feature hypervector.
//!
//! A feature hypervector under HDLock is
//! `FeaHV_i = Π_{l=1}^{L} ρ^{k_{i,l}}(B_{i,l})` (paper Eq. 9). The key
//! therefore stores, for each of the `N` features, `L` pairs of
//! (base-pool index, rotation amount). This is exactly the `N × L`
//! mapping information the paper keeps in tamper-proof memory.

use hypervec::HvRng;
use serde::{Deserialize, Serialize};

use crate::error::LockError;

/// One layer of a feature's key: which base hypervector and how far to
/// rotate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerKey {
    /// Index into the public base-hypervector pool (`0..P`).
    pub base_index: usize,
    /// Circular rotation amount (`0..D`).
    pub rotation: usize,
}

/// The full key for one feature: `L` layer keys whose permuted bases are
/// multiplied together.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct FeatureKey {
    layers: Vec<LayerKey>,
}

impl FeatureKey {
    /// Wraps explicit layer keys.
    #[must_use]
    pub fn new(layers: Vec<LayerKey>) -> Self {
        FeatureKey { layers }
    }

    /// The layer keys in order.
    #[must_use]
    pub fn layers(&self) -> &[LayerKey] {
        &self.layers
    }

    /// Number of layers `L`.
    #[must_use]
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }
}

/// The complete encoding key: one [`FeatureKey`] per feature.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodingKey {
    features: Vec<FeatureKey>,
    pool_size: usize,
    dim: usize,
}

impl EncodingKey {
    /// Samples a uniformly random key for `n_features` features with
    /// `n_layers` layers, a pool of `pool_size` bases and dimension
    /// `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::InvalidParameter`] if any of the sizes is
    /// zero (`n_layers == 0` is allowed and means "identity mapping",
    /// the unprotected baseline of Fig. 8 — feature `i` uses base `i`
    /// directly, which requires `pool_size ≥ n_features`).
    pub fn random(
        rng: &mut HvRng,
        n_features: usize,
        n_layers: usize,
        pool_size: usize,
        dim: usize,
    ) -> Result<Self, LockError> {
        if n_features == 0 || pool_size == 0 || dim == 0 {
            return Err(LockError::InvalidParameter {
                what: "n_features, pool_size and dim must all be positive",
            });
        }
        if n_layers == 0 && pool_size < n_features {
            return Err(LockError::PoolTooSmall {
                pool_size,
                n_features,
            });
        }
        let features = (0..n_features)
            .map(|i| {
                if n_layers == 0 {
                    FeatureKey::new(vec![LayerKey {
                        base_index: i,
                        rotation: 0,
                    }])
                } else {
                    FeatureKey::new(
                        (0..n_layers)
                            .map(|_| LayerKey {
                                base_index: rng.index(pool_size),
                                rotation: rng.index(dim),
                            })
                            .collect(),
                    )
                }
            })
            .collect();
        Ok(EncodingKey {
            features,
            pool_size,
            dim,
        })
    }

    /// Builds a key from explicit per-feature keys, validating ranges.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::KeyOutOfRange`] if any base index ≥
    /// `pool_size` or rotation ≥ `dim`, and
    /// [`LockError::InvalidParameter`] for empty inputs.
    pub fn from_feature_keys(
        features: Vec<FeatureKey>,
        pool_size: usize,
        dim: usize,
    ) -> Result<Self, LockError> {
        if features.is_empty() || pool_size == 0 || dim == 0 {
            return Err(LockError::InvalidParameter {
                what: "features, pool_size and dim must all be non-empty/positive",
            });
        }
        for (i, fk) in features.iter().enumerate() {
            for lk in fk.layers() {
                if lk.base_index >= pool_size || lk.rotation >= dim {
                    return Err(LockError::KeyOutOfRange {
                        feature: i,
                        base_index: lk.base_index,
                        rotation: lk.rotation,
                    });
                }
            }
        }
        Ok(EncodingKey {
            features,
            pool_size,
            dim,
        })
    }

    /// Number of features `N`.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// Layers per feature `L` (the maximum across features; keys built
    /// by [`EncodingKey::random`] are uniform).
    #[must_use]
    pub fn n_layers(&self) -> usize {
        self.features
            .iter()
            .map(FeatureKey::n_layers)
            .max()
            .unwrap_or(0)
    }

    /// Pool size `P` this key indexes into.
    #[must_use]
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Dimensionality `D` the rotations are taken modulo.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The key for feature `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_features()`.
    #[must_use]
    pub fn feature(&self, i: usize) -> &FeatureKey {
        &self.features[i]
    }

    /// All per-feature keys in feature order — the serialization hook
    /// used by `hdc_store`'s sealed key segment. Only reachable through
    /// an audited [`KeyVault::with_key`](crate::KeyVault::with_key) read
    /// once the key is sealed.
    #[must_use]
    pub fn features(&self) -> &[FeatureKey] {
        &self.features
    }

    /// Replaces the key of one feature (used by attack experiments to
    /// plant known-wrong guesses).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::KeyOutOfRange`] on invalid indices.
    pub fn set_feature(&mut self, i: usize, key: FeatureKey) -> Result<(), LockError> {
        for lk in key.layers() {
            if lk.base_index >= self.pool_size || lk.rotation >= self.dim {
                return Err(LockError::KeyOutOfRange {
                    feature: i,
                    base_index: lk.base_index,
                    rotation: lk.rotation,
                });
            }
        }
        if i >= self.features.len() {
            return Err(LockError::InvalidParameter {
                what: "feature index out of range",
            });
        }
        self.features[i] = key;
        Ok(())
    }
}

/// The `Debug` form never prints key material — only shape metadata —
/// so a key cannot leak through logging.
impl std::fmt::Debug for EncodingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EncodingKey(N={}, L={}, P={}, D={}, material=<redacted>)",
            self.n_features(),
            self.n_layers(),
            self.pool_size,
            self.dim
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_key_has_requested_shape() {
        let mut rng = HvRng::from_seed(1);
        let key = EncodingKey::random(&mut rng, 10, 2, 50, 1000).unwrap();
        assert_eq!(key.n_features(), 10);
        assert_eq!(key.n_layers(), 2);
        assert_eq!(key.pool_size(), 50);
        for i in 0..10 {
            for lk in key.feature(i).layers() {
                assert!(lk.base_index < 50);
                assert!(lk.rotation < 1000);
            }
        }
    }

    #[test]
    fn zero_layers_is_identity_mapping() {
        let mut rng = HvRng::from_seed(2);
        let key = EncodingKey::random(&mut rng, 5, 0, 5, 100).unwrap();
        for i in 0..5 {
            let layers = key.feature(i).layers();
            assert_eq!(layers.len(), 1);
            assert_eq!(
                layers[0],
                LayerKey {
                    base_index: i,
                    rotation: 0
                }
            );
        }
    }

    #[test]
    fn zero_layers_requires_big_pool() {
        let mut rng = HvRng::from_seed(3);
        assert!(matches!(
            EncodingKey::random(&mut rng, 10, 0, 5, 100),
            Err(LockError::PoolTooSmall { .. })
        ));
    }

    #[test]
    fn from_feature_keys_validates_ranges() {
        let bad = vec![FeatureKey::new(vec![LayerKey {
            base_index: 9,
            rotation: 0,
        }])];
        assert!(matches!(
            EncodingKey::from_feature_keys(bad, 5, 100),
            Err(LockError::KeyOutOfRange { .. })
        ));
        let good = vec![FeatureKey::new(vec![LayerKey {
            base_index: 4,
            rotation: 99,
        }])];
        assert!(EncodingKey::from_feature_keys(good, 5, 100).is_ok());
    }

    #[test]
    fn debug_redacts_material() {
        let mut rng = HvRng::from_seed(4);
        let key = EncodingKey::random(&mut rng, 3, 2, 10, 100).unwrap();
        let dbg = format!("{key:?}");
        assert!(dbg.contains("redacted"));
        assert!(!dbg.contains("base_index"));
    }

    #[test]
    fn set_feature_replaces_and_validates() {
        let mut rng = HvRng::from_seed(5);
        let mut key = EncodingKey::random(&mut rng, 3, 2, 10, 100).unwrap();
        let fk = FeatureKey::new(vec![LayerKey {
            base_index: 1,
            rotation: 2,
        }]);
        key.set_feature(0, fk.clone()).unwrap();
        assert_eq!(key.feature(0), &fk);
        assert!(key
            .set_feature(
                0,
                FeatureKey::new(vec![LayerKey {
                    base_index: 99,
                    rotation: 0
                }])
            )
            .is_err());
    }

    #[test]
    fn keys_are_deterministic_per_seed() {
        let a = EncodingKey::random(&mut HvRng::from_seed(6), 4, 2, 8, 64).unwrap();
        let b = EncodingKey::random(&mut HvRng::from_seed(6), 4, 2, 8, 64).unwrap();
        assert_eq!(a, b);
    }
}
