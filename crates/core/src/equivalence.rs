//! Statistical equivalence checks between locked and standard encoders.
//!
//! Fig. 8 of the paper shows HDLock costs no accuracy. The underlying
//! reason is structural: derived feature hypervectors are products of
//! independent random bases, hence themselves uniformly random and
//! pairwise quasi-orthogonal — statistically indistinguishable from the
//! standard encoder's feature hypervectors. This module quantifies that
//! claim so tests (and the Fig. 8 harness) can assert it.

use hypervec::BinaryHv;

/// Summary of pairwise normalized Hamming distances within a set of
/// hypervectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairwiseStats {
    /// Mean pairwise normalized distance.
    pub mean: f64,
    /// Minimum pairwise normalized distance.
    pub min: f64,
    /// Maximum pairwise normalized distance.
    pub max: f64,
    /// Number of pairs measured.
    pub pairs: usize,
}

/// Computes pairwise distance statistics over `hvs`.
///
/// # Panics
///
/// Panics if `hvs` has fewer than two vectors or mixed dimensions.
#[must_use]
pub fn pairwise_stats(hvs: &[BinaryHv]) -> PairwiseStats {
    assert!(hvs.len() >= 2, "need at least two hypervectors");
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut pairs = 0usize;
    for i in 0..hvs.len() {
        for j in (i + 1)..hvs.len() {
            let d = hvs[i].normalized_hamming(&hvs[j]);
            sum += d;
            min = min.min(d);
            max = max.max(d);
            pairs += 1;
        }
    }
    PairwiseStats {
        mean: sum / pairs as f64,
        min,
        max,
        pairs,
    }
}

/// Whether a set of hypervectors is quasi-orthogonal: every pairwise
/// normalized distance within `tolerance` of 0.5.
///
/// # Panics
///
/// Panics if `hvs` has fewer than two vectors.
#[must_use]
pub fn is_quasi_orthogonal(hvs: &[BinaryHv], tolerance: f64) -> bool {
    let stats = pairwise_stats(hvs);
    (stats.min - 0.5).abs() <= tolerance && (stats.max - 0.5).abs() <= tolerance
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locked_encoder::{LockConfig, LockedEncoder};
    use hdc_model::Encoder;
    use hypervec::HvRng;

    #[test]
    fn random_pool_is_quasi_orthogonal() {
        let mut rng = HvRng::from_seed(1);
        let hvs = rng.orthogonal_pool(10_000, 10);
        assert!(is_quasi_orthogonal(&hvs, 0.03));
        let stats = pairwise_stats(&hvs);
        assert_eq!(stats.pairs, 45);
        assert!((stats.mean - 0.5).abs() < 0.01);
    }

    #[test]
    fn locked_features_match_standard_statistics() {
        let mut rng = HvRng::from_seed(2);
        let cfg = LockConfig {
            n_features: 16,
            m_levels: 4,
            dim: 10_000,
            pool_size: 16,
            n_layers: 3,
        };
        let enc = LockedEncoder::generate(&mut rng, &cfg).unwrap();
        let derived: Vec<BinaryHv> = (0..16).map(|i| enc.feature_hv(i)).collect();
        assert!(
            is_quasi_orthogonal(&derived, 0.03),
            "{:?}",
            pairwise_stats(&derived)
        );
    }

    #[test]
    fn identical_vectors_are_not_orthogonal() {
        let mut rng = HvRng::from_seed(3);
        let hv = rng.binary_hv(1000);
        assert!(!is_quasi_orthogonal(&[hv.clone(), hv], 0.03));
    }
}
