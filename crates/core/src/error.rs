//! Error type for HDLock configuration and key handling.

use std::error::Error;
use std::fmt;

/// Errors from HDLock key and encoder construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LockError {
    /// A structural parameter was invalid (zero where positive needed,
    /// out-of-range index, …).
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        what: &'static str,
    },
    /// A key referenced a base index or rotation outside the pool/dim.
    KeyOutOfRange {
        /// Which feature's key is invalid.
        feature: usize,
        /// The offending base index.
        base_index: usize,
        /// The offending rotation.
        rotation: usize,
    },
    /// The base pool is too small for the requested construction.
    PoolTooSmall {
        /// Available pool size.
        pool_size: usize,
        /// Required minimum (e.g. `n_features` for the L = 0 baseline).
        n_features: usize,
    },
    /// Pool, values and key disagree on dimensionality.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Found dimension.
        found: usize,
    },
    /// The key vault has been consumed/poisoned and can no longer serve
    /// reads.
    VaultSealed,
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            LockError::KeyOutOfRange { feature, base_index, rotation } => write!(
                f,
                "key for feature {feature} out of range (base_index {base_index}, rotation {rotation})"
            ),
            LockError::PoolTooSmall { pool_size, n_features } => {
                write!(f, "base pool of {pool_size} cannot serve {n_features} features at L = 0")
            }
            LockError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LockError::VaultSealed => write!(f, "key vault is sealed and cannot serve reads"),
        }
    }
}

impl Error for LockError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LockError::PoolTooSmall {
            pool_size: 3,
            n_features: 10,
        };
        assert!(e.to_string().contains("pool of 3"));
        assert!(LockError::VaultSealed.to_string().contains("sealed"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LockError>();
    }
}
