//! Why HDLock does **not** lock the value hypervectors — the paper's
//! Sec. 4.1 dilemma, made executable.
//!
//! Value hypervectors must stay linearly correlated (Eq. 1b) or the
//! encoder loses accuracy. Deriving them from a base pool therefore
//! forces a choice:
//!
//! * **Shared rotation** — derive each level from a *correlated* base
//!   family with one common rotation. Linearity survives, but the pool
//!   itself is now correlated, so an attacker orders the dumped pool by
//!   pairwise Hamming distance and recovers the value mapping with *no
//!   oracle queries at all*: the lock adds nothing.
//! * **Independent rotations** — rotate each level's base differently.
//!   The pool looks random, but rotation destroys the inter-level
//!   correlation, so Eq. 1b breaks and encoding quality collapses.
//!
//! [`analyze_value_locking`] quantifies both horns; the tests (and the
//! `DESIGN.md` ablation index) pin the dilemma down numerically.

use hypervec::{BinaryHv, HvRng, LevelHvs};

/// Which value-locking construction to analyze.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueLockStrategy {
    /// One common rotation for every level: preserves linearity, leaks
    /// order through the public pool.
    SharedRotation,
    /// A fresh random rotation per level: hides order, destroys
    /// linearity.
    IndependentRotations,
}

/// Outcome of analyzing a value-locking construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueLockAnalysis {
    /// Worst absolute deviation of the *derived* levels' pairwise
    /// normalized distance from the Eq. 1b linear prediction. Near 0
    /// means the encoder still works; near 0.5 means levels are
    /// scrambled.
    pub linearity_error: f64,
    /// Fraction of adjacent level pairs an **oracle-free** attacker
    /// recovers by sorting the public pool's pairwise distances. 1.0
    /// means the mapping leaks completely from the dump alone.
    pub order_leak: f64,
    /// Strategy analyzed.
    pub strategy: ValueLockStrategy,
}

/// Builds a value-locking construction for `m` levels in dimension
/// `dim` and measures both security and fidelity.
///
/// # Panics
///
/// Panics if `m < 3` (the dilemma needs interior levels) or the level
/// family cannot be generated.
#[must_use]
pub fn analyze_value_locking(
    rng: &mut HvRng,
    dim: usize,
    m: usize,
    strategy: ValueLockStrategy,
) -> ValueLockAnalysis {
    assert!(
        m >= 3,
        "need at least 3 levels to observe the correlation structure"
    );
    // The "pool" for value locking must itself be a correlated family
    // (that is the paper's point): base b_v generates level v.
    let base_family = LevelHvs::generate(rng, dim, m).expect("valid level family");
    let shared_rotation = rng.index(dim);
    let rotations: Vec<usize> = match strategy {
        ValueLockStrategy::SharedRotation => vec![shared_rotation; m],
        ValueLockStrategy::IndependentRotations => (0..m).map(|_| rng.index(dim)).collect(),
    };
    let derived: Vec<BinaryHv> = (0..m)
        .map(|v| base_family.level(v).rotated(rotations[v]))
        .collect();

    // Fidelity: do the derived levels still follow Eq. 1b?
    let steps = (m - 1) as f64;
    let mut linearity_error = 0.0f64;
    for a in 0..m {
        for b in (a + 1)..m {
            let measured = derived[a].normalized_hamming(&derived[b]);
            let predicted = 0.5 * (b - a) as f64 / steps;
            linearity_error = linearity_error.max((measured - predicted).abs());
        }
    }

    // Security: can an attacker order the *public pool* (the base
    // family, as dumped) by distances alone? Walk greedily from one
    // endpoint; count adjacent pairs recovered.
    let order_leak = pool_order_leak(base_family.levels());

    ValueLockAnalysis {
        linearity_error,
        order_leak,
        strategy,
    }
}

/// Greedy nearest-neighbour chaining over a dumped pool: the fraction of
/// true-adjacent pairs recovered. Correlated pools leak ≈ 1.0.
fn pool_order_leak(pool: &[BinaryHv]) -> f64 {
    let m = pool.len();
    // Endpoint = the row with the largest distance to some other row.
    let mut best = (0usize, 0usize, 0usize);
    for i in 0..m {
        for j in (i + 1)..m {
            let d = pool[i].hamming(&pool[j]);
            if d > best.2 {
                best = (i, j, d);
            }
        }
    }
    let mut order = vec![best.0];
    let mut used = vec![false; m];
    used[best.0] = true;
    while order.len() < m {
        let last = *order.last().expect("non-empty");
        let next = (0..m)
            .filter(|&r| !used[r])
            .min_by_key(|&r| pool[last].hamming(&pool[r]))
            .expect("rows remain");
        used[next] = true;
        order.push(next);
    }
    let recovered = order
        .windows(2)
        .filter(|w| w[1] == w[0] + 1 || w[0] == w[1] + 1)
        .count();
    recovered as f64 / (m - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_rotation_keeps_linearity_but_leaks_order() {
        let mut rng = HvRng::from_seed(1);
        let a = analyze_value_locking(&mut rng, 10_000, 8, ValueLockStrategy::SharedRotation);
        assert!(
            a.linearity_error < 0.02,
            "linearity error {}",
            a.linearity_error
        );
        assert!(a.order_leak > 0.99, "order leak {}", a.order_leak);
    }

    #[test]
    fn independent_rotations_hide_nothing_useful() {
        let mut rng = HvRng::from_seed(2);
        let a = analyze_value_locking(&mut rng, 10_000, 8, ValueLockStrategy::IndependentRotations);
        // the derived levels no longer follow Eq. 1b at all
        assert!(
            a.linearity_error > 0.2,
            "linearity error {}",
            a.linearity_error
        );
        // and the pool still leaks (the bases themselves stay correlated)
        assert!(a.order_leak > 0.99, "order leak {}", a.order_leak);
    }

    #[test]
    fn random_pool_does_not_leak_order() {
        // Control: orthogonal pools (like HDLock's feature bases) give
        // the greedy chainer nothing to work with.
        let mut rng = HvRng::from_seed(3);
        let pool = rng.orthogonal_pool(10_000, 8);
        let leak = pool_order_leak(&pool);
        assert!(leak < 0.6, "random pool leaked {leak}");
    }

    #[test]
    #[should_panic(expected = "at least 3 levels")]
    fn needs_three_levels() {
        let mut rng = HvRng::from_seed(4);
        let _ = analyze_value_locking(&mut rng, 1024, 2, ValueLockStrategy::SharedRotation);
    }
}
