//! Reasoning-complexity calculators (paper Sec. 4.2 & Fig. 7).
//!
//! The divide-and-conquer attack needs `O(N²)` guesses against a
//! standard encoder and `O(N · (D·P)^L)` against HDLock. These counts
//! overflow `u64` quickly (MNIST at `L = 5` is ~10⁴⁰), so
//! [`GuessCount`] carries the exact value when it fits in `u128` and a
//! base-10 logarithm always.

use serde::{Deserialize, Serialize};

/// A (possibly astronomically large) number of attack guesses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuessCount {
    log10: f64,
    exact: Option<u128>,
}

impl GuessCount {
    /// Wraps an exact count.
    #[must_use]
    pub fn from_exact(count: u128) -> Self {
        GuessCount {
            log10: (count.max(1) as f64).log10(),
            exact: Some(count),
        }
    }

    /// A product `Π terms` computed in log space, keeping exactness
    /// while it fits.
    #[must_use]
    pub fn product(terms: &[u128]) -> Self {
        let mut log10 = 0.0f64;
        let mut exact: Option<u128> = Some(1);
        for &t in terms {
            log10 += (t.max(1) as f64).log10();
            exact = exact.and_then(|e| e.checked_mul(t));
        }
        GuessCount { log10, exact }
    }

    /// Base-10 logarithm of the count.
    #[must_use]
    pub fn log10(&self) -> f64 {
        self.log10
    }

    /// The exact count when it fits in `u128`.
    #[must_use]
    pub fn exact(&self) -> Option<u128> {
        self.exact
    }

    /// The count as `f64` (may be `inf` beyond ~1e308).
    #[must_use]
    pub fn approx(&self) -> f64 {
        10f64.powf(self.log10)
    }
}

impl std::fmt::Display for GuessCount {
    /// Scientific notation matching the paper's style, e.g. `4.81e16`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let exp = self.log10.floor();
        let mantissa = 10f64.powf(self.log10 - exp);
        write!(f, "{mantissa:.2}e{}", exp as i64)
    }
}

/// Guesses to reason the full feature mapping of a **standard** HDC
/// encoder with the divide-and-conquer attack: `N²` (paper Sec. 3.2).
#[must_use]
pub fn standard_reasoning_guesses(n_features: usize) -> GuessCount {
    GuessCount::product(&[n_features as u128, n_features as u128])
}

/// Guesses to reason **one** HDLock feature key: `(D·P)^L`
/// (paper Sec. 4.2).
#[must_use]
pub fn hdlock_per_feature_guesses(dim: usize, pool_size: usize, n_layers: usize) -> GuessCount {
    let mut terms = Vec::with_capacity(2 * n_layers);
    for _ in 0..n_layers {
        terms.push(dim as u128);
        terms.push(pool_size as u128);
    }
    GuessCount::product(&terms)
}

/// Guesses to reason the full HDLock mapping: `N · (D·P)^L` (the
/// complexity the paper reports as `O(N·(DP)^L)`).
#[must_use]
pub fn hdlock_reasoning_guesses(
    n_features: usize,
    dim: usize,
    pool_size: usize,
    n_layers: usize,
) -> GuessCount {
    let per = hdlock_per_feature_guesses(dim, pool_size, n_layers);
    match per.exact() {
        Some(e) => match e.checked_mul(n_features as u128) {
            Some(total) => GuessCount::from_exact(total),
            None => GuessCount {
                log10: per.log10() + (n_features.max(1) as f64).log10(),
                exact: None,
            },
        },
        None => GuessCount {
            log10: per.log10() + (n_features.max(1) as f64).log10(),
            exact: None,
        },
    }
}

/// Security amplification of HDLock over the standard model — the
/// paper's headline "10 orders of magnitude" at `L = 2` for MNIST.
#[must_use]
pub fn amplification_log10(
    n_features: usize,
    dim: usize,
    pool_size: usize,
    n_layers: usize,
) -> f64 {
    hdlock_reasoning_guesses(n_features, dim, pool_size, n_layers).log10()
        - standard_reasoning_guesses(n_features).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 784;
    const D: usize = 10_000;

    #[test]
    fn mnist_standard_matches_paper() {
        // Paper: 6.15e5 guesses for the normal MNIST model.
        let g = standard_reasoning_guesses(N);
        assert_eq!(g.exact(), Some(614_656));
        assert_eq!(g.to_string(), "6.15e5");
    }

    #[test]
    fn mnist_one_layer_matches_paper() {
        // Paper: 6.15e9 for the one-layer key.
        let g = hdlock_reasoning_guesses(N, D, N, 1);
        assert_eq!(g.exact(), Some(784u128 * 10_000 * 784));
        assert_eq!(g.to_string(), "6.15e9");
    }

    #[test]
    fn mnist_two_layer_matches_paper() {
        // Paper: 4.81e16 tries for the two-layer key.
        let g = hdlock_reasoning_guesses(N, D, N, 2);
        assert_eq!(g.to_string(), "4.82e16");
        let exact = g.exact().unwrap();
        assert!((4.8e16..4.9e16).contains(&(exact as f64)));
    }

    #[test]
    fn amplification_is_ten_orders_for_l2() {
        // Paper: 7.82e10× improvement, i.e. ~10.9 orders of magnitude.
        let amp = amplification_log10(N, D, N, 2);
        assert!((amp - 10.89).abs() < 0.02, "amplification {amp}");
    }

    #[test]
    fn growth_is_exponential_in_layers() {
        let l1 = hdlock_reasoning_guesses(N, D, 700, 1).log10();
        let l2 = hdlock_reasoning_guesses(N, D, 700, 2).log10();
        let l3 = hdlock_reasoning_guesses(N, D, 700, 3).log10();
        // constant log-increment per layer ⇒ exponential growth
        assert!(((l2 - l1) - (l3 - l2)).abs() < 1e-9);
        assert!(l2 - l1 > 6.0);
    }

    #[test]
    fn monotone_in_every_parameter() {
        let base = hdlock_reasoning_guesses(N, D, 300, 2).log10();
        assert!(hdlock_reasoning_guesses(N + 1, D, 300, 2).log10() > base);
        assert!(hdlock_reasoning_guesses(N, D + 1000, 300, 2).log10() > base);
        assert!(hdlock_reasoning_guesses(N, D, 301, 2).log10() > base);
        assert!(hdlock_reasoning_guesses(N, D, 300, 3).log10() > base);
    }

    #[test]
    fn huge_counts_lose_exactness_gracefully() {
        // L = 5 still fits u128 (~2.3e37); L = 6 does not (~1.8e44).
        let l5 = hdlock_reasoning_guesses(N, D, N, 5);
        assert!(l5.exact().is_some());
        let l6 = hdlock_reasoning_guesses(N, D, N, 6);
        assert!(l6.exact().is_none());
        assert!(l6.log10() > 43.0);
        assert!(!l6.to_string().is_empty());
    }

    #[test]
    fn display_formats_scientific() {
        assert_eq!(GuessCount::from_exact(1000).to_string(), "1.00e3");
        assert_eq!(GuessCount::from_exact(1).to_string(), "1.00e0");
    }
}
