//! # hdlock — privileged encoding for HDC model IP protection
//!
//! Reproduction of the defense from *"HDLock: Exploiting Privileged
//! Encoding to Protect Hyperdimensional Computing Models against IP
//! Stealing"* (DAC 2022).
//!
//! A standard HDC encoder stores its `N` feature hypervectors in plain
//! memory; protecting only the feature↔row *mapping* is not enough,
//! because a divide-and-conquer reasoning attack recovers it in `O(N²)`
//! oracle-assisted guesses (see the companion `hdc-attack` crate).
//! HDLock replaces stored feature hypervectors with **derived** ones:
//!
//! ```text
//! FeaHV_i = Π_{l=1}^{L} ρ^{k_{i,l}}(B_{i,l})        (Eq. 9)
//! ```
//!
//! where the `B`s come from a *public* pool of `P` random bases and the
//! key — `N × L` (base index, rotation) pairs — lives in a tamper-proof
//! [`KeyVault`]. Reasoning the mapping now costs `O(N · (D·P)^L)`
//! guesses ([`complexity`]), a ~10¹¹× amplification for MNIST at
//! `L = 2`, while the encoding output distribution (and therefore model
//! accuracy) is unchanged ([`equivalence`]).
//!
//! Beyond the paper's defense, [`DeriveMode::Hardened`] puts the
//! locked encoder in a constant-time mode for serving deployments:
//! fixed input-independent work per encode and oblivious key-vault
//! reads ([`KeyVault::with_key_oblivious`]), bit-identical outputs,
//! closing the bound-pair cache-warmth timing side channel (the
//! repository's `SECURITY.md` states the full threat model; the
//! companion `hdc-attack` crate's `warmth_distinguisher` demonstrates
//! the channel).
//!
//! ## Example
//!
//! ```
//! use hdc_model::Encoder;
//! use hdlock::{hdlock_reasoning_guesses, LockConfig, LockedEncoder};
//! use hypervec::HvRng;
//!
//! let mut rng = HvRng::from_seed(2022);
//! let config = LockConfig { n_features: 32, m_levels: 8, dim: 4096, pool_size: 32, n_layers: 2 };
//! let encoder = LockedEncoder::generate(&mut rng, &config)?;
//! let hv = encoder.encode_binary(&vec![0u16; 32]);
//! assert_eq!(hv.dim(), 4096);
//!
//! let guesses = hdlock_reasoning_guesses(32, 4096, 32, 2);
//! assert!(guesses.log10() > 11.0);
//! # Ok::<(), hdlock::LockError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod complexity;
pub mod equivalence;
pub mod error;
pub mod key;
pub mod locked_encoder;
pub mod ngram_lock;
pub mod pool;
pub mod value_lock;
pub mod vault;

pub use complexity::{
    amplification_log10, hdlock_per_feature_guesses, hdlock_reasoning_guesses,
    standard_reasoning_guesses, GuessCount,
};
pub use equivalence::{is_quasi_orthogonal, pairwise_stats, PairwiseStats};
pub use error::LockError;
pub use key::{EncodingKey, FeatureKey, LayerKey};
pub use locked_encoder::{
    derive_feature, derive_feature_into, DeriveMode, LockConfig, LockedEncoder,
};
pub use ngram_lock::LockedNgramEncoder;
pub use pool::BasePool;
pub use value_lock::{analyze_value_locking, ValueLockAnalysis, ValueLockStrategy};
pub use vault::KeyVault;
