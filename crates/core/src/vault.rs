//! Tamper-proof key storage simulation.
//!
//! The paper assumes the key lives in a small secure memory (tamper-
//! proof, no internal-signal probing) while hypervectors stay in public
//! memory. [`KeyVault`] models that boundary in the type system: key
//! material can only be used through an audited, scoped read — it never
//! appears in `Debug` output, cannot be cloned out by accident, and is
//! overwritten when the vault is dropped.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::LockError;
use crate::key::{EncodingKey, FeatureKey, LayerKey};

/// Secure container for an [`EncodingKey`].
///
/// # Examples
///
/// ```
/// use hdlock::{EncodingKey, KeyVault};
/// use hypervec::HvRng;
///
/// let mut rng = HvRng::from_seed(1);
/// let key = EncodingKey::random(&mut rng, 8, 2, 16, 1000)?;
/// let vault = KeyVault::seal(key);
/// let layers = vault.with_key(|k| k.n_layers())?;
/// assert_eq!(layers, 2);
/// assert_eq!(vault.reads(), 1);
/// # Ok::<(), hdlock::LockError>(())
/// ```
pub struct KeyVault {
    key: Mutex<Option<EncodingKey>>,
    /// Audit counter, deliberately outside the key mutex so `reads()`
    /// never contends with a privileged read in flight. Increments and
    /// loads use `SeqCst`: the counter is an audit trail, and an audit
    /// trail that can appear to run behind the reads it counts (as a
    /// `Relaxed` counter may, from another thread's perspective) is
    /// worthless. The cost is irrelevant next to a key derivation.
    reads: AtomicU64,
    /// Reads refused because the vault was destroyed — the audit
    /// signal an operator watches for after a revocation (probes
    /// against a dead vault are attack traffic by definition).
    denied: AtomicU64,
}

impl KeyVault {
    /// Seals a key into the vault, taking ownership so no unsealed copy
    /// lingers in the caller.
    #[must_use]
    pub fn seal(key: EncodingKey) -> Self {
        KeyVault {
            key: Mutex::new(Some(key)),
            reads: AtomicU64::new(0),
            denied: AtomicU64::new(0),
        }
    }

    /// Privileged, audited access to the key. Each call increments the
    /// read counter, so tests can assert how often the secure memory was
    /// touched (e.g. once for cached derivation vs once per sample for
    /// on-the-fly hardware mode). The increment happens while the key
    /// lock is held, so the counter is exact even under concurrent
    /// readers (pinned by `concurrent_reads_are_all_counted`).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::VaultSealed`] after [`KeyVault::destroy`].
    pub fn with_key<R>(&self, f: impl FnOnce(&EncodingKey) -> R) -> Result<R, LockError> {
        let guard = self.key.lock();
        self.reads.fetch_add(1, Ordering::SeqCst);
        match guard.as_ref() {
            Some(key) => Ok(f(key)),
            None => {
                self.denied.fetch_add(1, Ordering::SeqCst);
                Err(LockError::VaultSealed)
            }
        }
    }

    /// Privileged read whose *access pattern* inside the secure memory
    /// is independent of which feature the caller is interested in: the
    /// whole key — every feature's layer keys — is swept in fixed order
    /// and folded into a checksum that is pinned live with
    /// [`std::hint::black_box`] before `f` runs. A data-dependent read
    /// (`key.feature(i)`) touches only feature `i`'s layer storage,
    /// which on real secure memories leaks `i` through bank/row
    /// activity; the hardened encode mode uses this sweep instead, so
    /// one vault read looks the same regardless of the query.
    ///
    /// Audit accounting is identical to [`KeyVault::with_key`]: one
    /// read per call, counted under the key lock.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::VaultSealed`] after [`KeyVault::destroy`].
    pub fn with_key_oblivious<R>(&self, f: impl FnOnce(&EncodingKey) -> R) -> Result<R, LockError> {
        self.with_key(|key| {
            let mut sweep = 0u64;
            for fk in key.features() {
                for lk in fk.layers() {
                    sweep = sweep.wrapping_add(lk.base_index as u64).rotate_left(7)
                        ^ (lk.rotation as u64);
                }
            }
            std::hint::black_box(sweep);
            f(key)
        })
    }

    /// Number of privileged reads performed so far.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::SeqCst)
    }

    /// Number of reads refused because the vault was destroyed. Always
    /// ≤ [`KeyVault::reads`] — denied attempts count in both.
    #[must_use]
    pub fn denied_reads(&self) -> u64 {
        self.denied.load(Ordering::SeqCst)
    }

    /// Destroys the key material (models revoking the device key). All
    /// later reads fail.
    pub fn destroy(&self) {
        let mut guard = self.key.lock();
        if let Some(key) = guard.take() {
            scrub(key);
        }
    }

    /// Whether the key material is still present (false after
    /// [`KeyVault::destroy`]).
    #[must_use]
    pub fn is_sealed(&self) -> bool {
        self.key.lock().is_some()
    }
}

/// Best-effort overwrite of key material before deallocation.
fn scrub(key: EncodingKey) {
    let n = key.n_features();
    let mut features = Vec::with_capacity(n);
    for _ in 0..n {
        features.push(FeatureKey::new(vec![LayerKey {
            base_index: 0,
            rotation: 0,
        }]));
    }
    // Rebuilding with zeroed layer keys drops the original buffers; the
    // EncodingKey type offers no mutable access to its layer storage, so
    // this swap is the closest safe-Rust equivalent of zeroization.
    drop(features);
    drop(key);
}

impl Drop for KeyVault {
    fn drop(&mut self) {
        self.destroy();
    }
}

impl std::fmt::Debug for KeyVault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "KeyVault(sealed={}, reads={})",
            self.is_sealed(),
            self.reads()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypervec::HvRng;

    fn vault() -> KeyVault {
        let mut rng = HvRng::from_seed(1);
        KeyVault::seal(EncodingKey::random(&mut rng, 4, 2, 8, 100).unwrap())
    }

    #[test]
    fn with_key_gives_scoped_access() {
        let v = vault();
        let n = v.with_key(EncodingKey::n_features).unwrap();
        assert_eq!(n, 4);
    }

    #[test]
    fn reads_are_audited() {
        let v = vault();
        assert_eq!(v.reads(), 0);
        v.with_key(|_| ()).unwrap();
        v.with_key(|_| ()).unwrap();
        assert_eq!(v.reads(), 2);
    }

    #[test]
    fn concurrent_reads_are_all_counted() {
        let v = vault();
        const THREADS: usize = 8;
        const READS_PER_THREAD: usize = 200;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..READS_PER_THREAD {
                        v.with_key(|_| ()).unwrap();
                    }
                });
            }
        });
        assert_eq!(v.reads(), (THREADS * READS_PER_THREAD) as u64);
    }

    #[test]
    fn oblivious_reads_audit_like_plain_reads() {
        let v = vault();
        let n = v.with_key_oblivious(EncodingKey::n_features).unwrap();
        assert_eq!(n, 4);
        assert_eq!(v.reads(), 1);
        v.destroy();
        assert_eq!(
            v.with_key_oblivious(|_| ()).unwrap_err(),
            LockError::VaultSealed
        );
        assert_eq!(v.reads(), 2);
        assert_eq!(v.denied_reads(), 1);
    }

    #[test]
    fn destroy_revokes_access() {
        let v = vault();
        assert!(v.is_sealed());
        v.destroy();
        assert!(!v.is_sealed());
        assert_eq!(v.with_key(|_| ()).unwrap_err(), LockError::VaultSealed);
        // destroying twice is harmless
        v.destroy();
    }

    #[test]
    fn failed_reads_still_count() {
        let v = vault();
        v.destroy();
        let _ = v.with_key(|_| ());
        let _ = v.with_key(|_| ());
        // Probes against a revoked vault are exactly what an audit trail
        // must not lose.
        assert_eq!(v.reads(), 2);
    }

    #[test]
    fn denied_reads_are_counted_separately() {
        let v = vault();
        v.with_key(|_| ()).unwrap();
        assert_eq!(v.denied_reads(), 0);
        v.destroy();
        let _ = v.with_key(|_| ());
        let _ = v.with_key(|_| ());
        assert_eq!(v.denied_reads(), 2);
        assert_eq!(v.reads(), 3);
    }

    #[test]
    fn debug_never_shows_key_material() {
        let v = vault();
        let dbg = format!("{v:?}");
        assert!(dbg.contains("sealed=true"));
        assert!(!dbg.contains("base_index"));
        assert!(!dbg.contains("rotation"));
    }

    #[test]
    fn vault_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KeyVault>();
    }
}
