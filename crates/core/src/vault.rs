//! Tamper-proof key storage simulation.
//!
//! The paper assumes the key lives in a small secure memory (tamper-
//! proof, no internal-signal probing) while hypervectors stay in public
//! memory. [`KeyVault`] models that boundary in the type system: key
//! material can only be used through an audited, scoped read — it never
//! appears in `Debug` output, cannot be cloned out by accident, and is
//! overwritten when the vault is dropped.

use parking_lot::Mutex;

use crate::error::LockError;
use crate::key::{EncodingKey, FeatureKey, LayerKey};

/// Secure container for an [`EncodingKey`].
///
/// # Examples
///
/// ```
/// use hdlock::{EncodingKey, KeyVault};
/// use hypervec::HvRng;
///
/// let mut rng = HvRng::from_seed(1);
/// let key = EncodingKey::random(&mut rng, 8, 2, 16, 1000)?;
/// let vault = KeyVault::seal(key);
/// let layers = vault.with_key(|k| k.n_layers())?;
/// assert_eq!(layers, 2);
/// assert_eq!(vault.reads(), 1);
/// # Ok::<(), hdlock::LockError>(())
/// ```
pub struct KeyVault {
    inner: Mutex<VaultInner>,
}

struct VaultInner {
    key: Option<EncodingKey>,
    reads: u64,
}

impl KeyVault {
    /// Seals a key into the vault, taking ownership so no unsealed copy
    /// lingers in the caller.
    #[must_use]
    pub fn seal(key: EncodingKey) -> Self {
        KeyVault {
            inner: Mutex::new(VaultInner {
                key: Some(key),
                reads: 0,
            }),
        }
    }

    /// Privileged, audited access to the key. Each call increments the
    /// read counter, so tests can assert how often the secure memory was
    /// touched (e.g. once for cached derivation vs once per sample for
    /// on-the-fly hardware mode).
    ///
    /// # Errors
    ///
    /// Returns [`LockError::VaultSealed`] after [`KeyVault::destroy`].
    pub fn with_key<R>(&self, f: impl FnOnce(&EncodingKey) -> R) -> Result<R, LockError> {
        let mut inner = self.inner.lock();
        inner.reads += 1;
        match &inner.key {
            Some(key) => Ok(f(key)),
            None => Err(LockError::VaultSealed),
        }
    }

    /// Number of privileged reads performed so far.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.inner.lock().reads
    }

    /// Destroys the key material (models revoking the device key). All
    /// later reads fail.
    pub fn destroy(&self) {
        let mut inner = self.inner.lock();
        if let Some(key) = inner.key.take() {
            scrub(key);
        }
    }
}

/// Best-effort overwrite of key material before deallocation.
fn scrub(key: EncodingKey) {
    let n = key.n_features();
    let mut features = Vec::with_capacity(n);
    for _ in 0..n {
        features.push(FeatureKey::new(vec![LayerKey {
            base_index: 0,
            rotation: 0,
        }]));
    }
    // Rebuilding with zeroed layer keys drops the original buffers; the
    // EncodingKey type offers no mutable access to its layer storage, so
    // this swap is the closest safe-Rust equivalent of zeroization.
    drop(features);
    drop(key);
}

impl Drop for KeyVault {
    fn drop(&mut self) {
        self.destroy();
    }
}

impl std::fmt::Debug for KeyVault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        write!(
            f,
            "KeyVault(sealed={}, reads={})",
            inner.key.is_some(),
            inner.reads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypervec::HvRng;

    fn vault() -> KeyVault {
        let mut rng = HvRng::from_seed(1);
        KeyVault::seal(EncodingKey::random(&mut rng, 4, 2, 8, 100).unwrap())
    }

    #[test]
    fn with_key_gives_scoped_access() {
        let v = vault();
        let n = v.with_key(EncodingKey::n_features).unwrap();
        assert_eq!(n, 4);
    }

    #[test]
    fn reads_are_audited() {
        let v = vault();
        assert_eq!(v.reads(), 0);
        v.with_key(|_| ()).unwrap();
        v.with_key(|_| ()).unwrap();
        assert_eq!(v.reads(), 2);
    }

    #[test]
    fn destroy_revokes_access() {
        let v = vault();
        v.destroy();
        assert_eq!(v.with_key(|_| ()).unwrap_err(), LockError::VaultSealed);
        // destroying twice is harmless
        v.destroy();
    }

    #[test]
    fn debug_never_shows_key_material() {
        let v = vault();
        let dbg = format!("{v:?}");
        assert!(dbg.contains("sealed=true"));
        assert!(!dbg.contains("base_index"));
        assert!(!dbg.contains("rotation"));
    }

    #[test]
    fn vault_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KeyVault>();
    }
}
