//! The public base-hypervector pool.
//!
//! HDLock stores `P` random orthogonal base hypervectors in **public**
//! memory; only the key (which bases, which rotations) is secret. The
//! pool is therefore exactly what the paper's attacker can dump.

use hypervec::{BinaryHv, HvError, HvRng, ItemMemory};
use serde::{Deserialize, Serialize};

/// A pool of `P` public base hypervectors.
///
/// # Examples
///
/// ```
/// use hdlock::BasePool;
/// use hypervec::HvRng;
///
/// let mut rng = HvRng::from_seed(1);
/// let pool = BasePool::generate(&mut rng, 10_000, 64);
/// assert_eq!(pool.len(), 64);
/// assert_eq!(pool.dim(), 10_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasePool {
    mem: ItemMemory,
}

impl BasePool {
    /// Generates `pool_size` random base hypervectors of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn generate(rng: &mut HvRng, dim: usize, pool_size: usize) -> Self {
        BasePool {
            mem: ItemMemory::random(rng, dim, pool_size),
        }
    }

    /// Wraps existing hypervectors as a pool.
    ///
    /// # Errors
    ///
    /// Propagates [`HvError`] for empty or inconsistent rows.
    pub fn from_rows(rows: Vec<BinaryHv>) -> Result<Self, HvError> {
        Ok(BasePool {
            mem: ItemMemory::from_rows(rows)?,
        })
    }

    /// Number of bases `P`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// Whether the pool is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// Dimensionality `D`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.mem.dim()
    }

    /// Base hypervector `i`.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::IndexOutOfRange`] for an invalid index.
    pub fn base(&self, i: usize) -> Result<&BinaryHv, HvError> {
        self.mem.get(i)
    }

    /// The underlying item memory (e.g. for attack-side dumps).
    #[must_use]
    pub fn memory(&self) -> &ItemMemory {
        &self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_bases_are_quasi_orthogonal() {
        let mut rng = HvRng::from_seed(1);
        let pool = BasePool::generate(&mut rng, 10_000, 8);
        for i in 0..8 {
            for j in (i + 1)..8 {
                let d = pool
                    .base(i)
                    .unwrap()
                    .normalized_hamming(pool.base(j).unwrap());
                assert!((d - 0.5).abs() < 0.05, "bases {i},{j}: {d}");
            }
        }
    }

    #[test]
    fn base_lookup_bounds() {
        let mut rng = HvRng::from_seed(2);
        let pool = BasePool::generate(&mut rng, 100, 3);
        assert!(pool.base(2).is_ok());
        assert!(pool.base(3).is_err());
    }
}
