//! Property test for the hardened serving mode: every encode entry
//! point must be **bit-identical** across all three derivation modes.
//!
//! Hardening (fixed-work encode, cache-oblivious table strides,
//! branchless selection) is only deployable if it changes *when* work
//! happens, never *what* is computed — the paper's accuracy claims
//! (Fig. 8) must survive the constant-time rewrite untouched. The CI
//! kernel matrix runs this file under every `HYPERVEC_KERNEL` backend
//! (avx2 / scalar / portable), so the equivalence holds on each
//! word-parallel engine, not just the one the dev box dispatches to.

use hdc_model::{ClassMemory, ClassifySession, Encoder, InferenceSession, ModelKind, TopKSession};
use hdlock::{DeriveMode, LockConfig, LockedEncoder};
use hypervec::{HvRng, ProbeConfig};

fn config() -> LockConfig {
    LockConfig {
        n_features: 11,
        m_levels: 5,
        dim: 1030, // deliberately not a multiple of 64: exercises tail masking
        pool_size: 24,
        n_layers: 2,
    }
}

fn random_rows(rng: &mut HvRng, n: usize, width: usize, m: usize) -> Vec<Vec<u16>> {
    (0..n)
        .map(|_| {
            (0..width)
                .map(|_| (rng.next_u64() % m as u64) as u16)
                .collect()
        })
        .collect()
}

#[test]
fn hardened_encodes_are_bit_identical_to_unhardened() {
    let mut rng = HvRng::from_seed(0xC0_11AB1E);
    let mut enc = LockedEncoder::generate(&mut rng, &config()).unwrap();
    let rows = random_rows(&mut rng, 40, 11, 5);
    let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();

    let want_bin = enc.encode_batch_binary(&refs);
    let want_int = enc.encode_batch_int(&refs);

    for mode in [DeriveMode::OnTheFly, DeriveMode::Hardened] {
        enc.set_mode(mode);
        assert_eq!(enc.encode_batch_binary(&refs), want_bin, "{mode:?} batch");
        assert_eq!(enc.encode_batch_int(&refs), want_int, "{mode:?} batch int");
        for (i, row) in refs.iter().enumerate() {
            assert_eq!(enc.encode_binary(row), want_bin[i], "{mode:?} row {i}");
            assert_eq!(enc.encode_int(row), want_int[i], "{mode:?} row {i}");
            assert_eq!(
                enc.encode_int_scalar(row),
                want_int[i],
                "{mode:?} scalar row {i}"
            );
        }
    }
}

#[test]
fn hardened_session_results_match_including_forced_exact_topk() {
    let mut rng = HvRng::from_seed(0x5EC_0DE);
    let mut enc = LockedEncoder::generate(&mut rng, &config()).unwrap();
    let protos = random_rows(&mut rng, 6, 11, 5);
    let rows = random_rows(&mut rng, 30, 11, 5);
    let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
    // A deliberately narrow probe: pruned and exact scans may disagree
    // at this width, which is exactly why hardened mode must ignore it.
    let narrow = ProbeConfig {
        probe_words: 1,
        probe_factor: 1,
        exact_threshold: 0,
    };

    for kind in [ModelKind::Binary, ModelKind::NonBinary] {
        let mut memory = ClassMemory::new(kind, protos.len(), config().dim);
        for (j, p) in protos.iter().enumerate() {
            memory.acc_mut(j).add(&enc.encode_binary(p));
        }
        memory.rebinarize();

        enc.set_mode(DeriveMode::Cached);
        let (want_classes, want_scores, want_exact_topk) = {
            let session = InferenceSession::new(&enc, &memory);
            assert!(!session.hardened());
            (
                session.classify_batch(&refs),
                session.scores_batch(&refs),
                TopKSession::new(&session, 3).search_batch(&refs),
            )
        };

        enc.set_mode(DeriveMode::Hardened);
        let session = InferenceSession::new(&enc, &memory);
        assert!(session.hardened());
        assert_eq!(session.classify_batch(&refs), want_classes, "{kind:?}");
        let scores = session.scores_batch(&refs);
        for q in 0..refs.len() {
            for (g, w) in scores.scores(q).iter().zip(want_scores.scores(q)) {
                assert_eq!(g.to_bits(), w.to_bits(), "{kind:?} q {q}");
            }
        }
        // The probe is silently clamped to the exact scan: a hardened
        // session returns exact results even under pruning tuning.
        let pruned_request = TopKSession::new(&session, 3)
            .with_probe(narrow)
            .search_batch(&refs);
        assert_eq!(pruned_request, want_exact_topk, "{kind:?}");
        enc.set_mode(DeriveMode::Cached);
    }
}
