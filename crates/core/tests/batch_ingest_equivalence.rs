//! Property tests for the batch corpus-ingest paths (ISSUE 6 satellite):
//! batch k-mer encode → push → top-1 search must agree with the
//! single-record paths in `ngram.rs` / `ngram_lock.rs`, and the record
//! encoder's batch path must agree in both [`DeriveMode`]s.

use hdc_model::{Encoder, NgramEncoder};
use hdlock::{DeriveMode, LockConfig, LockedEncoder, LockedNgramEncoder};
use hypervec::{BinaryHv, HvRng, ShardedClassMemory};
use proptest::prelude::*;

/// Random corpus of `count` sequences with lengths in `[n, n + 12]`.
fn corpus(rng: &mut HvRng, alphabet: usize, n: usize, count: usize) -> Vec<Vec<usize>> {
    (0..count)
        .map(|_| {
            let len = n + rng.index(13);
            (0..len).map(|_| rng.index(alphabet)).collect()
        })
        .collect()
}

/// Single-record reference: encode each sequence on its own and push in
/// corpus order.
fn push_one_by_one(dim: usize, rows: &[BinaryHv]) -> ShardedClassMemory {
    let mut mem = ShardedClassMemory::new(dim);
    for hv in rows {
        mem.push(hv).unwrap();
    }
    mem
}

fn top1(mem: &ShardedClassMemory, query: &BinaryHv) -> (usize, u64) {
    let hits = mem.search_topk_binary(&[query], 1).unwrap();
    let m = hits.matches(0)[0];
    (m.row, m.score.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Plain n-gram path: `ingest` (batch encode, blocked push) builds
    /// the same memory — row by row, bit for bit — as the
    /// `encode_sequence` loop, and top-1 search through either memory
    /// returns the same row and score bits.
    #[test]
    fn ngram_ingest_matches_single_record_path(
        alphabet in 4usize..=12,
        n in 2usize..=4,
        dim in prop_oneof![Just(256), Just(1000), Just(2048)],
        count in 1usize..=24,
        seed in any::<u64>(),
    ) {
        let mut rng = HvRng::from_seed(seed);
        let enc = NgramEncoder::generate(&mut rng, alphabet, n, dim).unwrap();
        let seqs = corpus(&mut rng, alphabet, n, count);
        let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();

        let singles: Vec<BinaryHv> = refs
            .iter()
            .map(|s| enc.encode_sequence(s).unwrap())
            .collect();
        prop_assert_eq!(&enc.encode_batch(&refs).unwrap(), &singles);

        let batch_mem = enc.ingest(&refs).unwrap();
        let single_mem = push_one_by_one(dim, &singles);
        prop_assert_eq!(batch_mem.n_rows(), single_mem.n_rows());

        let probe_seq = corpus(&mut rng, alphabet, n, 1).remove(0);
        let q = enc.encode_sequence(&probe_seq).unwrap();
        prop_assert_eq!(top1(&batch_mem, &q), top1(&single_mem, &q));
    }

    /// Locked n-gram path: the vault-keyed encoder's batch ingest agrees
    /// with its own single-record path AND with a plain encoder rebuilt
    /// from the derived symbols (the lock changes provenance, not
    /// semantics).
    #[test]
    fn locked_ngram_ingest_matches_single_record_path(
        alphabet in 4usize..=8,
        n in 2usize..=3,
        count in 1usize..=16,
        seed in any::<u64>(),
    ) {
        let dim = 1024;
        let mut rng = HvRng::from_seed(seed);
        let locked = LockedNgramEncoder::generate(&mut rng, alphabet, n, dim, 16, 2).unwrap();
        let seqs = corpus(&mut rng, alphabet, n, count);
        let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();

        let singles: Vec<BinaryHv> = refs
            .iter()
            .map(|s| locked.encode_sequence(s).unwrap())
            .collect();
        prop_assert_eq!(&locked.encode_batch(&refs).unwrap(), &singles);

        let batch_mem = locked.ingest(&refs).unwrap();
        let single_mem = push_one_by_one(dim, &singles);

        let probe_seq = corpus(&mut rng, alphabet, n, 1).remove(0);
        let q = locked.encode_sequence(&probe_seq).unwrap();
        prop_assert_eq!(top1(&batch_mem, &q), top1(&single_mem, &q));
    }

    /// Record path, both `DeriveMode`s: batch encoding feeds the same
    /// row memory as one-at-a-time encoding, and the heap top-1 agrees
    /// with the full-scan argmax either way.
    #[test]
    fn record_batch_ingest_matches_single_in_both_derive_modes(
        count in 1usize..=12,
        seed in any::<u64>(),
    ) {
        let mut rng = HvRng::from_seed(seed);
        let config = LockConfig {
            n_features: 12,
            m_levels: 6,
            dim: 1024,
            pool_size: 16,
            n_layers: 2,
        };
        let mut enc = LockedEncoder::generate(&mut rng, &config).unwrap();
        let rows: Vec<Vec<u16>> = (0..count)
            .map(|_| (0..12).map(|_| rng.index(6) as u16).collect())
            .collect();
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let probe: Vec<u16> = (0..12).map(|_| rng.index(6) as u16).collect();

        let mut results = Vec::new();
        for mode in [DeriveMode::Cached, DeriveMode::OnTheFly] {
            enc.set_mode(mode);
            let batch = enc.encode_batch_binary(&refs);
            let singles: Vec<BinaryHv> =
                refs.iter().map(|r| enc.encode_binary(r)).collect();
            prop_assert_eq!(&batch, &singles, "mode {:?}", mode);

            let mut mem = ShardedClassMemory::new(config.dim);
            mem.reserve(batch.len());
            for hv in &batch {
                mem.push(hv).unwrap();
            }
            let q = enc.encode_binary(&probe);
            let best = top1(&mem, &q);

            // Heap top-1 == full-scan argmax (lowest index on ties).
            let full = mem.search_batch_binary(&[&q]).unwrap();
            let scores = full.scores(0);
            let argmax = (0..scores.len())
                .max_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(b.cmp(&a)))
                .unwrap();
            prop_assert_eq!(best, (argmax, scores[argmax].to_bits()), "mode {:?}", mode);
            results.push(best);
        }
        // The two modes derive identical features, so the search result
        // must not depend on the mode either.
        prop_assert_eq!(results[0], results[1]);
    }
}
