//! The JSON-shaped tree every serializable type lowers to.

/// A JSON number: exact unsigned/signed integers or a double.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// Non-negative integer (exact up to `u128`).
    U(u128),
    /// Negative integer (exact down to `i128`).
    I(i128),
    /// Floating-point number (finite).
    F(f64),
}

/// A JSON value tree.
///
/// Objects preserve insertion order so serialized output is
/// deterministic and matches struct declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array of values.
    Array(Vec<Value>),
    /// An ordered map of string keys to values.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the array payload, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutably borrows the array payload, if this is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrows the string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u128`, if non-negative integral.
    #[must_use]
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Value::Number(Number::U(n)) => Some(*n),
            Value::Number(Number::I(n)) => u128::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The number as `u64`, if it fits.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        self.as_u128().and_then(|n| u64::try_from(n).ok())
    }

    /// The number as `i128`, if integral.
    #[must_use]
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Number(Number::U(n)) => i128::try_from(*n).ok(),
            Value::Number(Number::I(n)) => Some(*n),
            _ => None,
        }
    }

    /// The number as `i64`, if it fits.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        self.as_i128().and_then(|n| i64::try_from(n).ok())
    }

    /// The number as `f64` (integers convert lossily).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::U(n)) => Some(*n as f64),
            Value::Number(Number::I(n)) => Some(*n as f64),
            Value::Number(Number::F(f)) => Some(*f),
            _ => None,
        }
    }

    /// Looks up an object key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Shared `null` for missing-key indexing.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object field access; missing keys and non-objects yield `null`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Object field access for writing; inserts `null` for a missing key.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        let Value::Object(o) = self else {
            panic!("cannot index non-object JSON value with a string key");
        };
        if let Some(pos) = o.iter().position(|(k, _)| k == key) {
            return &mut o[pos].1;
        }
        o.push((key.to_owned(), Value::Null));
        &mut o.last_mut().expect("just pushed").1
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Array element access; out-of-range and non-arrays yield `null`.
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::fmt::Display for Value {
    /// Renders compact JSON text.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(Number::U(n)) => write!(f, "{n}"),
            Value::Number(Number::I(n)) => write!(f, "{n}"),
            Value::Number(Number::F(x)) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes a decimal point.
                    write!(f, "{x:?}")
                } else {
                    f.write_str("null")
                }
            }
            Value::String(s) => write_json_string(f, s),
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(o) => {
                f.write_str("{")?;
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}
