//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors a minimal serialization framework with the same spelling as
//! the real thing: `serde::{Serialize, Deserialize}` derive + traits,
//! and a `serde_json` sibling for the JSON text format.
//!
//! The data model is deliberately simple: [`Serialize`] lowers any value
//! to a [`Value`] tree, [`Deserialize`] rebuilds from one. This keeps
//! derived code trivial while preserving the properties the workspace
//! relies on — validated deserialization via `try_from`/`into` container
//! attributes, exact integer round-trips, and a JSON wire format
//! compatible with the hand-written fixtures in the tests.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Number, Value};

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Lowers a value into the [`Value`] data model.
pub trait Serialize {
    /// The tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `self` out of a tree, validating invariants.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Compatibility alias used in trait bounds (`serde::de::DeserializeOwned`).
pub mod de {
    /// Marker matching real serde's owned-deserialization bound.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

/// Looks up and deserializes a struct field from an object body
/// (used by derived `Deserialize` impls).
///
/// # Errors
///
/// Returns [`Error`] if the field is missing or malformed.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    let v = obj
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))?;
    T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and containers
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(u128::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u128().ok_or_else(|| {
                    Error::custom(concat!("expected unsigned integer for ", stringify!($t)))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, u128);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::U(*self as u128))
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v
            .as_u128()
            .ok_or_else(|| Error::custom("expected unsigned integer for usize"))?;
        usize::try_from(n).map_err(|_| Error::custom("integer out of range for usize"))
    }
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i128::from(*self);
                if n >= 0 {
                    Value::Number(Number::U(n as u128))
                } else {
                    Value::Number(Number::I(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i128().ok_or_else(|| {
                    Error::custom(concat!("expected integer for ", stringify!($t)))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, i128);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(i64::from_value(v)? as isize)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::F(*self))
        } else {
            // JSON cannot represent non-finite floats; match serde_json's
            // lossy `null` encoding.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(f64::NAN),
            _ => v
                .as_f64()
                .ok_or_else(|| Error::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array().map(Vec::as_slice) {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom("expected 2-element array for tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array().map(Vec::as_slice) {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::custom("expected 3-element array for tuple")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
