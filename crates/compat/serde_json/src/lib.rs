//! Offline stand-in for `serde_json`.
//!
//! Provides the subset of the real crate's API the workspace uses:
//! [`to_string`], [`from_str`], the [`Value`] tree (re-exported from the
//! sibling `serde` stand-in) and an [`Error`] type. The parser is a
//! complete JSON reader (strings with escapes, exact integers up to
//! 128 bits, floats, nested containers); the writer lives on
//! `Value`'s `Display` impl.

pub use serde::{Number, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Never fails for the workspace's types; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Parses a value from JSON text, running the type's validation.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or failed validation.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a paired \uXXXX.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated unicode escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| Error::new("bad unicode escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad unicode escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(mag) = rest.parse::<u128>() {
                    if let Ok(n) = i128::try_from(mag) {
                        return Ok(Value::Number(Number::I(-n)));
                    }
                }
            } else if let Ok(n) = text.parse::<u128>() {
                return Ok(Value::Number(Number::U(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-7", "3.5", "\"hi\""] {
            let v = parse_value(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\"y"}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn large_integers_are_exact() {
        let v = parse_value("18446744073709551615").unwrap();
        assert_eq!(v.as_u128(), Some(u64::MAX as u128));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{not json").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("").is_err());
        assert!(parse_value("1 2").is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<u16> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let opt: Option<u128> = from_str("null").unwrap();
        assert_eq!(opt, None);
    }
}
