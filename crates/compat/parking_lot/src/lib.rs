//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's signature: `lock()`
//! returns the guard directly (poisoning is swallowed by recovering the
//! inner value, matching parking_lot's no-poisoning semantics).

/// A mutual-exclusion lock with parking_lot's `lock() -> Guard` API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_guards_value() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
