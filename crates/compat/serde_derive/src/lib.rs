//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serde data model (see the sibling `serde` crate):
//! `Serialize` lowers a value to a JSON-like `Value` tree and
//! `Deserialize` rebuilds it. This proc-macro derives both traits for
//! the shapes the workspace actually uses:
//!
//! * structs with named fields (serialized as JSON objects),
//! * enums whose variants are all unit variants (serialized as strings),
//! * the `#[serde(try_from = "T", into = "T")]` container attribute
//!   (validated deserialization through a wire type).
//!
//! Anything else (tuple structs, data-carrying enums, generics) is
//! rejected with a compile error naming the unsupported shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
struct Item {
    name: String,
    kind: Kind,
    /// `#[serde(try_from = "...")]` type path, if any.
    try_from: Option<String>,
    /// `#[serde(into = "...")]` type path, if any.
    into: Option<String>,
}

enum Kind {
    /// Named fields in declaration order.
    Struct(Vec<String>),
    /// Unit variant names in declaration order.
    Enum(Vec<String>),
}

/// Derives the workspace `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let body = if let Some(wire) = &item.into {
        format!(
            "let wire: {wire} = ::core::clone::Clone::clone(self).into();\n\
             ::serde::Serialize::to_value(&wire)"
        )
    } else {
        match &item.kind {
            Kind::Struct(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!(
                    "::serde::Value::Object(::std::vec![{}])",
                    entries.join(", ")
                )
            }
            Kind::Enum(variants) => {
                let name = &item.name;
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        format!(
                            "{name}::{v} => ::serde::Value::String(\
                             ::std::string::String::from(\"{v}\"))"
                        )
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join(", "))
            }
        }
    };
    let name = &item.name;
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the workspace `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let name = &item.name;
    let body = if let Some(wire) = &item.try_from {
        format!(
            "let wire: {wire} = ::serde::Deserialize::from_value(v)?;\n\
             ::core::convert::TryFrom::try_from(wire)\
                 .map_err(|e| ::serde::Error::custom(::std::format!(\"{{e}}\")))"
        )
    } else {
        match &item.kind {
            Kind::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?"))
                    .collect();
                format!(
                    "let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                         ::std::format!(\"expected object for {name}\")))?;\n\
                     ::core::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
            Kind::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| format!("\"{v}\" => ::core::result::Result::Ok({name}::{v})"))
                    .collect();
                format!(
                    "let s = v.as_str().ok_or_else(|| ::serde::Error::custom(\
                         ::std::format!(\"expected string variant for {name}\")))?;\n\
                     match s {{ {},\n\
                         other => ::core::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown {name} variant {{other}}\"))) }}",
                    arms.join(",\n")
                )
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});")
        .parse()
        .expect("error tokens parse")
}

/// Parses the derive input into an [`Item`], or an error message.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    let mut try_from = None;
    let mut into = None;

    // Leading attributes (doc comments, #[serde(...)], #[derive(...)], …).
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                let Some(TokenTree::Group(g)) = tokens.next() else {
                    return Err("malformed attribute".into());
                };
                parse_serde_attr(g.stream(), &mut try_from, &mut into)?;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // Skip a `(crate)`-style visibility qualifier.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    let is_enum = match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "cannot derive serde traits for generic type {name}"
            ));
        }
        _ => {
            return Err(format!(
                "cannot derive serde traits for {name}: only brace-bodied structs/enums \
                 with named fields or unit variants are supported"
            ));
        }
    };

    let kind = if is_enum {
        Kind::Enum(parse_unit_variants(body, &name)?)
    } else {
        Kind::Struct(parse_named_fields(body, &name)?)
    };
    Ok(Item {
        name,
        kind,
        try_from,
        into,
    })
}

/// If the bracketed attribute body is `serde(...)`, records its
/// `try_from`/`into` string arguments.
fn parse_serde_attr(
    stream: TokenStream,
    try_from: &mut Option<String>,
    into: &mut Option<String>,
) -> Result<(), String> {
    let mut tokens = stream.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(()), // some other attribute: ignore
    }
    let Some(TokenTree::Group(args)) = tokens.next() else {
        return Err("malformed #[serde] attribute".into());
    };
    let mut args = args.stream().into_iter();
    while let Some(tt) = args.next() {
        let TokenTree::Ident(key) = tt else { continue };
        let key = key.to_string();
        // Expect `= "Type"`.
        match (args.next(), args.next()) {
            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) if eq.as_char() == '=' => {
                let raw = lit.to_string();
                let ty = raw.trim_matches('"').to_string();
                match key.as_str() {
                    "try_from" => *try_from = Some(ty),
                    "into" => *into = Some(ty),
                    other => {
                        return Err(format!("unsupported #[serde({other} = ...)] attribute"));
                    }
                }
            }
            _ => return Err(format!("unsupported #[serde({key})] form")),
        }
    }
    Ok(())
}

/// Extracts field names from a named-field struct body.
fn parse_named_fields(body: TokenStream, name: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip per-field attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(field) = tt else {
            return Err(format!("{name}: expected field name, found {tt:?}"));
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("{name}: field {field} is not `name: type` shaped")),
        }
        fields.push(field.to_string());
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0usize;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    if fields.is_empty() {
        return Err(format!(
            "{name}: serde derive needs at least one named field"
        ));
    }
    Ok(fields)
}

/// Extracts variant names from an all-unit-variant enum body.
fn parse_unit_variants(body: TokenStream, name: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip per-variant attributes (e.g. #[default], doc comments).
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() != '#' {
                break;
            }
            tokens.next();
            tokens.next(); // the [...] group
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(variant) = tt else {
            return Err(format!("{name}: expected variant name, found {tt:?}"));
        };
        variants.push(variant.to_string());
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "{name}::{variant}: serde derive supports unit enum variants only"
                ));
            }
            Some(other) => {
                return Err(format!(
                    "{name}: unexpected token {other:?} after {variant}"
                ));
            }
        }
    }
    if variants.is_empty() {
        return Err(format!("{name}: serde derive needs at least one variant"));
    }
    Ok(variants)
}
