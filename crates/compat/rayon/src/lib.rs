//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the `par_iter()` / `into_par_iter()` spelling with **sequential**
//! execution. Semantics are identical (rayon's contract makes the
//! parallel result order-deterministic); only the parallelism is gone.
//!
//! Hot paths that genuinely need threads use `hypervec::par`, which
//! chunks work across `std::thread::scope` workers instead of relying
//! on this shim.

/// The `use rayon::prelude::*` surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// A "parallel" iterator that simply wraps a sequential one.
#[derive(Debug)]
pub struct ParIter<I> {
    inner: I,
}

/// Conversion into a [`ParIter`] by value (ranges, `Vec`, …).
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;

    /// Mirrors `rayon::iter::IntoParallelIterator::into_par_iter`.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    type Iter = T::IntoIter;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// Conversion into a [`ParIter`] by reference (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: 'a;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;

    /// Mirrors `rayon::iter::IntoParallelRefIterator::par_iter`.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for T
where
    &'a T: IntoIterator,
{
    type Item = <&'a T as IntoIterator>::Item;
    type Iter = <&'a T as IntoIterator>::IntoIter;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// The combinator surface the workspace uses from rayon.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item;
    /// Sequential iterator this adapter drains.
    type Iter: Iterator<Item = Self::Item>;

    /// Unwraps the sequential iterator.
    fn into_seq(self) -> Self::Iter;

    /// Elementwise transform.
    fn map<U, F: FnMut(Self::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<Self::Iter, F>> {
        ParIter {
            inner: self.into_seq().map(f),
        }
    }

    /// Keeps items matching the predicate.
    fn filter<F: FnMut(&Self::Item) -> bool>(
        self,
        f: F,
    ) -> ParIter<std::iter::Filter<Self::Iter, F>> {
        ParIter {
            inner: self.into_seq().filter(f),
        }
    }

    /// Minimum item.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.into_seq().min()
    }

    /// Minimum item under a comparator.
    fn min_by<F>(self, compare: F) -> Option<Self::Item>
    where
        F: FnMut(&Self::Item, &Self::Item) -> std::cmp::Ordering,
    {
        self.into_seq().min_by(compare)
    }

    /// Maximum item.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.into_seq().max()
    }

    /// Collects into any `FromIterator` container.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.into_seq().collect()
    }

    /// Rayon-style fold: produces a (single-element) iterator of partial
    /// accumulators.
    fn fold<B, INIT, F>(self, init: INIT, f: F) -> ParIter<std::iter::Once<B>>
    where
        INIT: Fn() -> B,
        F: FnMut(B, Self::Item) -> B,
    {
        let acc = self.into_seq().fold(init(), f);
        ParIter {
            inner: std::iter::once(acc),
        }
    }

    /// Rayon-style reduce: combines partial accumulators starting from
    /// the identity.
    fn reduce<INIT, F>(self, identity: INIT, op: F) -> Self::Item
    where
        INIT: Fn() -> Self::Item,
        F: FnMut(Self::Item, Self::Item) -> Self::Item,
    {
        self.into_seq().fold(identity(), op)
    }

    /// Total number of items.
    fn count(self) -> usize {
        self.into_seq().count()
    }

    /// Sums the items.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.into_seq().sum()
    }
}

impl<I: Iterator> ParallelIterator for ParIter<I> {
    type Item = I::Item;
    type Iter = I;

    fn into_seq(self) -> I {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_sequential() {
        let out: Vec<i32> = (0..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn par_iter_over_slice() {
        let v = vec![3, 1, 2];
        assert_eq!(v.par_iter().map(|&x| (x, x)).min(), Some((1, 1)));
    }

    #[test]
    fn fold_reduce_pipeline() {
        let total: i64 = (1..=10i64)
            .into_par_iter()
            .fold(|| 0i64, |a, b| a + b)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 55);
    }
}
