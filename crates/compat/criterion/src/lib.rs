//! Offline stand-in for `criterion`.
//!
//! Implements the macro/API surface the workspace benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`, and `black_box` — on a
//! simple wall-clock harness: a calibration pass picks an iteration
//! count targeting ~100 ms per sample, then `sample_size` samples are
//! timed and the median per-iteration time is reported.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// No-op compatibility hook (the real crate parses CLI flags here).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark outside a group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{name}", self.name);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier for one parameterized benchmark instance.
#[derive(Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter display.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// A parameter-only identifier.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: grow the iteration count until one sample costs ≥ 20 ms
    // (capped so pathological benches still finish).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!(
        "bench: {name:<50} {:>12}/iter  ({iters} iters/sample)",
        format_time(median)
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
