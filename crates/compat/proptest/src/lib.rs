//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! `proptest!` macro with an optional `#![proptest_config(...)]`
//! attribute, range/`Just`/tuple/`prop_map`/`prop_oneof!`/`any::<T>()`
//! strategies, and `prop_assert*` macros. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name and case
//! index), so failures reproduce; there is **no shrinking** — the
//! failing inputs are printed by the panic message instead.

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::{any, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many sampled cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic splitmix64 generator driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name and case index (stable across runs).
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (bias < 2^-64, fine for tests).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }
}

/// Boxed strategy used by `prop_oneof!`.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.sample(rng))
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between a first strategy and the (recursively built)
/// rest — the typed union behind `prop_oneof!`. Keeping the strategies
/// fully typed (no trait objects) lets integer-literal inference flow
/// from the union's `Value` into `Just(...)` options, exactly as real
/// proptest's `TupleUnion` does.
#[derive(Debug, Clone)]
pub struct OneOfPair<A, B> {
    total: u64,
    first: A,
    rest: B,
}

impl<A, B> OneOfPair<A, B> {
    /// Builds a union of `total` options whose first option is `first`.
    #[must_use]
    pub fn new(total: u64, first: A, rest: B) -> Self {
        OneOfPair { total, first, rest }
    }
}

impl<A: Strategy, B: Strategy<Value = A::Value>> Strategy for OneOfPair<A, B> {
    type Value = A::Value;

    fn sample(&self, rng: &mut TestRng) -> A::Value {
        // Picking slot 0 with probability 1/total and recursing otherwise
        // keeps the overall choice uniform across all options.
        if rng.below(self.total) == 0 {
            self.first.sample(rng)
        } else {
            self.rest.sample(rng)
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + rng.below(width) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(width + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a full-domain uniform strategy via [`any`].
pub trait ArbitraryValue: Sized {
    /// Draws a uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full domain (`any::<u64>()`).
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Creates an [`Any`] strategy.
#[must_use]
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Uniformly picks one of several strategies per case.
#[macro_export]
macro_rules! prop_oneof {
    ($option:expr $(,)?) => { $option };
    ($first:expr, $($rest:expr),+ $(,)?) => {
        $crate::OneOfPair::new(
            1 + [$($crate::__stringify_len!($rest)),+].len() as u64,
            $first,
            $crate::prop_oneof![$($rest),+],
        )
    };
}

/// Implementation detail of [`prop_oneof!`]: one unit per option.
#[macro_export]
#[doc(hidden)]
macro_rules! __stringify_len {
    ($x:expr) => {
        ()
    };
}

/// Asserts inside a property (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares deterministic randomized property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident (
        $($pat:pat_param in $strategy:expr),* $(,)?
    ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut proptest_rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in 5u64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&a));
            prop_assert_eq!(b, 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![1usize..=2, Just(9usize)].prop_map(|v| v * 10)) {
            prop_assert!(x == 10 || x == 20 || x == 90);
        }

        #[test]
        fn tuples_sample_elementwise((a, b) in (0u32..4, any::<bool>())) {
            prop_assert!(a < 4);
            let _ = b;
        }
    }

    #[test]
    fn rng_is_deterministic_per_case() {
        let a = TestRng::for_case("t", 3).next_u64();
        let b = TestRng::for_case("t", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, TestRng::for_case("t", 4).next_u64());
    }
}
