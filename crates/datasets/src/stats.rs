//! Descriptive statistics over datasets.

use serde::{Deserialize, Serialize};

use crate::schema::Dataset;

/// Per-feature summary statistics of a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureStats {
    mins: Vec<f32>,
    maxs: Vec<f32>,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl FeatureStats {
    /// Computes min/max/mean/std for every feature of `dataset`.
    #[must_use]
    pub fn compute(dataset: &Dataset) -> Self {
        let n = dataset.n_features();
        let count = dataset.len() as f64;
        let mut mins = vec![f32::INFINITY; n];
        let mut maxs = vec![f32::NEG_INFINITY; n];
        let mut sums = vec![0.0f64; n];
        let mut sq_sums = vec![0.0f64; n];
        for s in dataset {
            for (j, &v) in s.features.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
                sums[j] += f64::from(v);
                sq_sums[j] += f64::from(v) * f64::from(v);
            }
        }
        let means: Vec<f64> = sums.iter().map(|s| s / count).collect();
        let stds: Vec<f64> = sq_sums
            .iter()
            .zip(&means)
            .map(|(sq, m)| (sq / count - m * m).max(0.0).sqrt())
            .collect();
        FeatureStats {
            mins,
            maxs,
            means,
            stds,
        }
    }

    /// Minimum of feature `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn min(&self, j: usize) -> f32 {
        self.mins[j]
    }

    /// Maximum of feature `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn max(&self, j: usize) -> f32 {
        self.maxs[j]
    }

    /// Mean of feature `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn mean(&self, j: usize) -> f64 {
        self.means[j]
    }

    /// Standard deviation of feature `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn std(&self, j: usize) -> f64 {
        self.stds[j]
    }

    /// Number of features described.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.mins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Sample;

    #[test]
    fn stats_of_known_data() {
        let ds = Dataset::new(
            "s",
            1,
            vec![
                Sample {
                    features: vec![1.0, 10.0],
                    label: 0,
                },
                Sample {
                    features: vec![3.0, 10.0],
                    label: 0,
                },
            ],
        )
        .unwrap();
        let st = FeatureStats::compute(&ds);
        assert_eq!(st.n_features(), 2);
        assert_eq!(st.min(0), 1.0);
        assert_eq!(st.max(0), 3.0);
        assert!((st.mean(0) - 2.0).abs() < 1e-9);
        assert!((st.std(0) - 1.0).abs() < 1e-9);
        assert_eq!(st.std(1), 0.0);
    }
}
