//! Stratified train/test splitting.

use hypervec::HvRng;

use crate::error::DataError;
use crate::schema::{Dataset, Sample};

/// Splits `dataset` into `(train, test)` with approximately
/// `test_fraction` of each class's samples in the test split
/// (stratified, shuffled).
///
/// # Errors
///
/// Returns [`DataError::BadSplit`] if the fraction is outside `(0, 1)`
/// or either side would be empty.
///
/// # Examples
///
/// ```
/// use hdc_datasets::{stratified_split, Dataset, Sample};
/// use hypervec::HvRng;
///
/// let samples: Vec<Sample> = (0..20)
///     .map(|i| Sample { features: vec![i as f32], label: i % 2 })
///     .collect();
/// let ds = Dataset::new("t", 2, samples)?;
/// let (train, test) = stratified_split(&ds, 0.2, &mut HvRng::from_seed(0))?;
/// assert_eq!(train.len(), 16);
/// assert_eq!(test.len(), 4);
/// # Ok::<(), hdc_datasets::DataError>(())
/// ```
pub fn stratified_split(
    dataset: &Dataset,
    test_fraction: f64,
    rng: &mut HvRng,
) -> Result<(Dataset, Dataset), DataError> {
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
        return Err(DataError::BadSplit { test_fraction });
    }
    let mut by_class: Vec<Vec<&Sample>> = vec![Vec::new(); dataset.n_classes()];
    for s in dataset {
        by_class[s.label].push(s);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for class_samples in &mut by_class {
        if class_samples.is_empty() {
            continue;
        }
        // Shuffle within the class for an unbiased draw.
        let order = rng.shuffled_indices(class_samples.len());
        let n_test = ((class_samples.len() as f64) * test_fraction).round() as usize;
        let n_test = n_test.min(class_samples.len().saturating_sub(1));
        for (rank, &idx) in order.iter().enumerate() {
            if rank < n_test {
                test.push(class_samples[idx].clone());
            } else {
                train.push(class_samples[idx].clone());
            }
        }
    }
    if train.is_empty() || test.is_empty() {
        return Err(DataError::BadSplit { test_fraction });
    }
    let train = Dataset::new(
        format!("{}-train", dataset.name()),
        dataset.n_classes(),
        train,
    )?;
    let test = Dataset::new(
        format!("{}-test", dataset.name()),
        dataset.n_classes(),
        test,
    )?;
    Ok((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, classes: usize) -> Dataset {
        let samples: Vec<Sample> = (0..n)
            .map(|i| Sample {
                features: vec![i as f32],
                label: i % classes,
            })
            .collect();
        Dataset::new("toy", classes, samples).unwrap()
    }

    #[test]
    fn split_sizes_add_up() {
        let ds = toy(100, 4);
        let (train, test) = stratified_split(&ds, 0.2, &mut HvRng::from_seed(1)).unwrap();
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(test.len(), 20);
    }

    #[test]
    fn split_is_stratified() {
        let ds = toy(100, 4);
        let (_, test) = stratified_split(&ds, 0.2, &mut HvRng::from_seed(2)).unwrap();
        assert_eq!(test.class_counts(), vec![5, 5, 5, 5]);
    }

    #[test]
    fn no_sample_is_duplicated_or_lost() {
        let ds = toy(60, 3);
        let (train, test) = stratified_split(&ds, 0.3, &mut HvRng::from_seed(3)).unwrap();
        let mut seen: Vec<f32> = train
            .iter()
            .chain(test.iter())
            .map(|s| s.features[0])
            .collect();
        seen.sort_by(f32::total_cmp);
        let expected: Vec<f32> = (0..60).map(|i| i as f32).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn rejects_degenerate_fractions() {
        let ds = toy(10, 2);
        for frac in [0.0, 1.0, 1.5, -0.1] {
            assert!(
                matches!(
                    stratified_split(&ds, frac, &mut HvRng::from_seed(0)),
                    Err(DataError::BadSplit { .. })
                ),
                "fraction {frac} should be rejected"
            );
        }
    }

    #[test]
    fn tiny_classes_keep_a_training_sample() {
        // 2 samples per class with a huge test fraction: each class must
        // still retain one training sample.
        let ds = toy(4, 2);
        let (train, test) = stratified_split(&ds, 0.9, &mut HvRng::from_seed(4)).unwrap();
        assert_eq!(train.len(), 2);
        assert_eq!(test.len(), 2);
    }
}
