//! # hdc-datasets — benchmark data substrate for the HDLock reproduction
//!
//! The HDLock paper evaluates on MNIST, UCIHAR, FACE, ISOLET and PAMAP.
//! This crate provides deterministic **synthetic stand-ins** with the
//! same feature counts, class counts and value ranges (see `DESIGN.md`
//! §2 for the substitution argument), plus the plumbing an HDC pipeline
//! needs: min–max [`Discretizer`] quantization into `M` levels,
//! stratified splits, summary statistics and a CSV loader so real data
//! can be dropped in unchanged.
//!
//! ## Example
//!
//! ```
//! use hdc_datasets::{Benchmark, Discretizer};
//!
//! let (train, test) = Benchmark::Pamap.generate(0.02, 42)?;
//! let disc = Discretizer::fit(&train, 16)?;
//! let train_q = disc.discretize(&train)?;
//! assert_eq!(train_q.n_features(), 75);
//! assert_eq!(train_q.m_levels(), 16);
//! assert_eq!(test.n_classes(), 5);
//! # Ok::<(), hdc_datasets::DataError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benchmarks;
pub mod error;
pub mod loader;
pub mod quantize;
pub mod schema;
pub mod split;
pub mod stats;
pub mod synth;

pub use benchmarks::Benchmark;
pub use error::DataError;
pub use loader::{load_csv_file, load_csv_str};
pub use quantize::Discretizer;
pub use schema::{Dataset, QuantizedDataset, Sample};
pub use split::stratified_split;
pub use stats::FeatureStats;
pub use synth::SynthSpec;
