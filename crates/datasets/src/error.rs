//! Error type for dataset construction, loading and quantization.

use std::error::Error;
use std::fmt;

/// Errors from dataset construction and parsing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DataError {
    /// A dataset or row collection was empty.
    Empty,
    /// A sample had a different feature count than the first sample.
    InconsistentWidth {
        /// Sample index.
        index: usize,
        /// Expected feature count.
        expected: usize,
        /// Found feature count.
        found: usize,
    },
    /// A label fell outside `0..n_classes`.
    LabelOutOfRange {
        /// Sample index.
        index: usize,
        /// Offending label.
        label: usize,
        /// Number of classes.
        n_classes: usize,
    },
    /// A quantized level fell outside `0..m_levels`.
    LevelOutOfRange {
        /// Sample index.
        index: usize,
        /// Offending level.
        level: usize,
        /// Number of levels.
        m_levels: usize,
    },
    /// A text line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A quantizer was asked for fewer than two levels.
    TooFewLevels {
        /// Requested level count.
        requested: usize,
    },
    /// The requested split leaves one side empty.
    BadSplit {
        /// Requested test fraction.
        test_fraction: f64,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Empty => write!(f, "dataset has no samples or no features"),
            DataError::InconsistentWidth {
                index,
                expected,
                found,
            } => write!(
                f,
                "sample {index} has {found} features, expected {expected}"
            ),
            DataError::LabelOutOfRange {
                index,
                label,
                n_classes,
            } => write!(
                f,
                "sample {index} has label {label}, valid range is 0..{n_classes}"
            ),
            DataError::LevelOutOfRange {
                index,
                level,
                m_levels,
            } => write!(
                f,
                "sample {index} has level {level}, valid range is 0..{m_levels}"
            ),
            DataError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            DataError::TooFewLevels { requested } => {
                write!(
                    f,
                    "quantizer needs at least 2 levels, requested {requested}"
                )
            }
            DataError::BadSplit { test_fraction } => {
                write!(f, "test fraction {test_fraction} leaves an empty split")
            }
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(DataError::Empty.to_string().contains("no samples"));
        let e = DataError::Parse {
            line: 3,
            message: "bad float".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
