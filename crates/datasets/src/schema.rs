//! Core dataset containers.

use serde::{Deserialize, Serialize};

use crate::error::DataError;

/// One labelled sample: a dense feature vector plus a class label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Raw (continuous) feature values.
    pub features: Vec<f32>,
    /// Class label in `0..n_classes`.
    pub label: usize,
}

/// A labelled dataset of fixed-width samples.
///
/// # Examples
///
/// ```
/// use hdc_datasets::{Dataset, Sample};
///
/// let ds = Dataset::new(
///     "toy",
///     2,
///     vec![
///         Sample { features: vec![0.0, 1.0], label: 0 },
///         Sample { features: vec![1.0, 0.0], label: 1 },
///     ],
/// )?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.n_features(), 2);
/// # Ok::<(), hdc_datasets::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    name: String,
    n_classes: usize,
    n_features: usize,
    samples: Vec<Sample>,
}

impl Dataset {
    /// Builds a dataset, validating that every sample has the same width
    /// and labels fall inside `0..n_classes`.
    ///
    /// # Errors
    ///
    /// [`DataError::Empty`] when `samples` is empty;
    /// [`DataError::InconsistentWidth`] when widths differ;
    /// [`DataError::LabelOutOfRange`] when a label ≥ `n_classes`.
    pub fn new(
        name: impl Into<String>,
        n_classes: usize,
        samples: Vec<Sample>,
    ) -> Result<Self, DataError> {
        let first = samples.first().ok_or(DataError::Empty)?;
        let n_features = first.features.len();
        if n_features == 0 {
            return Err(DataError::Empty);
        }
        for (i, s) in samples.iter().enumerate() {
            if s.features.len() != n_features {
                return Err(DataError::InconsistentWidth {
                    index: i,
                    expected: n_features,
                    found: s.features.len(),
                });
            }
            if s.label >= n_classes {
                return Err(DataError::LabelOutOfRange {
                    index: i,
                    label: s.label,
                    n_classes,
                });
            }
        }
        Ok(Dataset {
            name: name.into(),
            n_classes,
            n_features,
            samples,
        })
    }

    /// Human-readable dataset name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset holds no samples (never true after `new`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Feature-vector width `N`.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes `C`.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// All samples in order.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterator over samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Per-class sample counts.
    #[must_use]
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for s in &self.samples {
            counts[s.label] += 1;
        }
        counts
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

/// A dataset already discretized to `M` value levels — the direct input
/// format of an HDC encoder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantizedDataset {
    name: String,
    n_classes: usize,
    n_features: usize,
    m_levels: usize,
    rows: Vec<Vec<u16>>,
    labels: Vec<usize>,
}

impl QuantizedDataset {
    /// Builds a quantized dataset.
    ///
    /// # Errors
    ///
    /// Mirrors [`Dataset::new`], plus [`DataError::LevelOutOfRange`] when
    /// any value ≥ `m_levels`.
    pub fn new(
        name: impl Into<String>,
        n_classes: usize,
        m_levels: usize,
        rows: Vec<Vec<u16>>,
        labels: Vec<usize>,
    ) -> Result<Self, DataError> {
        let first = rows.first().ok_or(DataError::Empty)?;
        let n_features = first.len();
        if n_features == 0 || rows.len() != labels.len() {
            return Err(DataError::Empty);
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n_features {
                return Err(DataError::InconsistentWidth {
                    index: i,
                    expected: n_features,
                    found: row.len(),
                });
            }
            if let Some(&bad) = row.iter().find(|&&v| usize::from(v) >= m_levels) {
                return Err(DataError::LevelOutOfRange {
                    index: i,
                    level: usize::from(bad),
                    m_levels,
                });
            }
            if labels[i] >= n_classes {
                return Err(DataError::LabelOutOfRange {
                    index: i,
                    label: labels[i],
                    n_classes,
                });
            }
        }
        Ok(QuantizedDataset {
            name: name.into(),
            n_classes,
            n_features,
            m_levels,
            rows,
            labels,
        })
    }

    /// Dataset name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no samples (never true after `new`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature count `N`.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Class count `C`.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of discrete value levels `M`.
    #[must_use]
    pub fn m_levels(&self) -> usize {
        self.m_levels
    }

    /// Level row for sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[u16] {
        &self.rows[i]
    }

    /// Label for sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Iterator over `(levels, label)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (&[u16], usize)> + '_ {
        self.rows
            .iter()
            .map(Vec::as_slice)
            .zip(self.labels.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(features: Vec<f32>, label: usize) -> Sample {
        Sample { features, label }
    }

    #[test]
    fn new_validates_width() {
        let err = Dataset::new(
            "bad",
            2,
            vec![sample(vec![0.0, 1.0], 0), sample(vec![0.0], 1)],
        )
        .unwrap_err();
        assert!(matches!(err, DataError::InconsistentWidth { index: 1, .. }));
    }

    #[test]
    fn new_validates_labels() {
        let err = Dataset::new("bad", 2, vec![sample(vec![0.0], 5)]).unwrap_err();
        assert!(matches!(err, DataError::LabelOutOfRange { label: 5, .. }));
    }

    #[test]
    fn new_rejects_empty() {
        assert!(matches!(
            Dataset::new("e", 2, vec![]).unwrap_err(),
            DataError::Empty
        ));
    }

    #[test]
    fn class_counts_sum_to_len() {
        let ds = Dataset::new(
            "t",
            3,
            vec![
                sample(vec![0.0], 0),
                sample(vec![1.0], 2),
                sample(vec![2.0], 2),
            ],
        )
        .unwrap();
        assert_eq!(ds.class_counts(), vec![1, 0, 2]);
    }

    #[test]
    fn quantized_validates_levels() {
        let err = QuantizedDataset::new("q", 2, 4, vec![vec![0, 4]], vec![0]).unwrap_err();
        assert!(matches!(err, DataError::LevelOutOfRange { level: 4, .. }));
    }

    #[test]
    fn quantized_roundtrip() {
        let q = QuantizedDataset::new("q", 2, 4, vec![vec![0, 3], vec![1, 2]], vec![0, 1]).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.row(1), &[1, 2]);
        assert_eq!(q.label(1), 1);
        assert_eq!(q.iter().count(), 2);
    }
}
