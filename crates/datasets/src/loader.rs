//! Plain-text dataset loading.
//!
//! Accepts the common "CSV, label last" layout so the synthetic
//! benchmarks can be swapped for the real datasets without touching any
//! other code: each line is `f1,f2,…,fN,label`. Blank lines and lines
//! starting with `#` are ignored.

use std::io::BufRead;
use std::path::Path;

use crate::error::DataError;
use crate::schema::{Dataset, Sample};

/// Parses a dataset from CSV text (`f1,…,fN,label` per line).
///
/// # Errors
///
/// Returns [`DataError::Parse`] with a 1-based line number on malformed
/// input, and the usual construction errors for inconsistent rows.
///
/// # Examples
///
/// ```
/// use hdc_datasets::load_csv_str;
///
/// let ds = load_csv_str("demo", "0.5,1.0,0\n0.25,0.75,1\n", 2)?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.samples()[1].label, 1);
/// # Ok::<(), hdc_datasets::DataError>(())
/// ```
pub fn load_csv_str(name: &str, text: &str, n_classes: usize) -> Result<Dataset, DataError> {
    let mut samples = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let label_field = fields.pop().ok_or(DataError::Parse {
            line: line_no,
            message: "empty line after trim".into(),
        })?;
        let label: usize = label_field.parse().map_err(|_| DataError::Parse {
            line: line_no,
            message: format!("invalid label '{label_field}'"),
        })?;
        if fields.is_empty() {
            return Err(DataError::Parse {
                line: line_no,
                message: "no feature columns".into(),
            });
        }
        let mut features = Vec::with_capacity(fields.len());
        for f in fields {
            let v: f32 = f.parse().map_err(|_| DataError::Parse {
                line: line_no,
                message: format!("invalid feature value '{f}'"),
            })?;
            features.push(v);
        }
        samples.push(Sample { features, label });
    }
    Dataset::new(name, n_classes, samples)
}

/// Loads a dataset from a CSV file on disk.
///
/// # Errors
///
/// Returns [`DataError::Parse`] (line 0) when the file cannot be read,
/// otherwise behaves like [`load_csv_str`].
pub fn load_csv_file(
    name: &str,
    path: impl AsRef<Path>,
    n_classes: usize,
) -> Result<Dataset, DataError> {
    let file = std::fs::File::open(path.as_ref()).map_err(|e| DataError::Parse {
        line: 0,
        message: format!("cannot open {}: {e}", path.as_ref().display()),
    })?;
    let mut text = String::new();
    for line in std::io::BufReader::new(file).lines() {
        let line = line.map_err(|e| DataError::Parse {
            line: 0,
            message: format!("read error: {e}"),
        })?;
        text.push_str(&line);
        text.push('\n');
    }
    load_csv_str(name, &text, n_classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_csv() {
        let ds = load_csv_str("t", "1.0,2.0,0\n3.0,4.0,1\n", 2).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.samples()[0].features, vec![1.0, 2.0]);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let ds = load_csv_str("t", "# header\n\n1.0,0\n", 1).unwrap();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn reports_bad_label_with_line() {
        let err = load_csv_str("t", "1.0,0\n1.0,xyz\n", 2).unwrap_err();
        assert_eq!(
            err,
            DataError::Parse {
                line: 2,
                message: "invalid label 'xyz'".into()
            }
        );
    }

    #[test]
    fn reports_bad_feature_with_line() {
        let err = load_csv_str("t", "oops,0\n", 1).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_label_only_lines() {
        let err = load_csv_str("t", "0\n", 1).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 1, .. }));
    }

    #[test]
    fn whitespace_tolerant() {
        let ds = load_csv_str("t", " 1.0 , 2.0 , 1 \n", 2).unwrap();
        assert_eq!(ds.samples()[0].label, 1);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hdc_datasets_loader_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.csv");
        std::fs::write(&path, "0.1,0.9,0\n0.8,0.2,1\n").unwrap();
        let ds = load_csv_file("toy", &path, 2).unwrap();
        assert_eq!(ds.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        let err = load_csv_file("x", "/nonexistent/definitely/missing.csv", 2).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 0, .. }));
    }
}
