//! The five benchmarks of the HDLock evaluation (paper Sec. 5).
//!
//! Each benchmark keeps the feature count, class count and value range
//! of the original dataset; the samples themselves are synthesized (see
//! `DESIGN.md` §2 for why this substitution preserves every claim under
//! test). Feature/class dimensions follow the sizes commonly reported
//! for these datasets in the HDC literature the paper builds on
//! (QuantHD/SearcHD).

use hypervec::HvRng;
use serde::{Deserialize, Serialize};

use crate::error::DataError;
use crate::schema::Dataset;
use crate::synth::SynthSpec;

/// The benchmark suite used throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// Handwritten digits, 784 features (28×28), 10 classes.
    Mnist,
    /// Smartphone human-activity recognition, 561 features, 12 classes.
    Ucihar,
    /// Face vs non-face images, 608 features, 2 classes.
    Face,
    /// Spoken letters, 617 features, 26 classes.
    Isolet,
    /// Physical-activity monitoring, 75 features, 5 classes.
    Pamap,
}

impl Benchmark {
    /// All five benchmarks in the paper's column order.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::Mnist,
        Benchmark::Ucihar,
        Benchmark::Face,
        Benchmark::Isolet,
        Benchmark::Pamap,
    ];

    /// Canonical lowercase name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Mnist => "mnist",
            Benchmark::Ucihar => "ucihar",
            Benchmark::Face => "face",
            Benchmark::Isolet => "isolet",
            Benchmark::Pamap => "pamap",
        }
    }

    /// Feature count `N` of the original dataset.
    #[must_use]
    pub fn n_features(&self) -> usize {
        match self {
            Benchmark::Mnist => 784,
            Benchmark::Ucihar => 561,
            Benchmark::Face => 608,
            Benchmark::Isolet => 617,
            Benchmark::Pamap => 75,
        }
    }

    /// Class count `C` of the original dataset.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        match self {
            Benchmark::Mnist => 10,
            Benchmark::Ucihar => 12,
            Benchmark::Face => 2,
            Benchmark::Isolet => 26,
            Benchmark::Pamap => 5,
        }
    }

    /// The synthetic-task recipe for this benchmark at full (paper-like)
    /// sample counts.
    ///
    /// Noise levels are calibrated so a binary HDC model lands near the
    /// paper's reported accuracy (Tab. 1): ~0.80 for MNIST/UCIHAR/PAMAP,
    /// ~0.87 for ISOLET, ~0.94 for FACE.
    #[must_use]
    pub fn spec(&self) -> SynthSpec {
        let (train, test, noise, distract, distinct) = match self {
            Benchmark::Mnist => (6000, 1000, 0.30, 0.25, 0.26),
            Benchmark::Ucihar => (4000, 800, 0.30, 0.20, 0.28),
            Benchmark::Face => (1000, 246, 0.30, 0.10, 0.23),
            Benchmark::Isolet => (3900, 780, 0.30, 0.10, 0.31),
            Benchmark::Pamap => (2000, 500, 0.30, 0.10, 0.37),
        };
        SynthSpec {
            name: format!("{}-synth", self.name()),
            n_features: self.n_features(),
            n_classes: self.n_classes(),
            train_size: train,
            test_size: test,
            noise,
            distractor_fraction: distract,
            class_distinctness: distinct,
        }
    }

    /// Generates the benchmark's train/test datasets.
    ///
    /// `scale` multiplies the sample counts (1.0 = full paper-like
    /// sizes); dimensions are never scaled. A dedicated RNG stream is
    /// derived from `seed` so each benchmark is independent.
    ///
    /// # Errors
    ///
    /// Propagates [`DataError`] from generation (only possible when
    /// `scale` collapses a split to zero, which `scaled` prevents).
    pub fn generate(&self, scale: f64, seed: u64) -> Result<(Dataset, Dataset), DataError> {
        let mut rng = HvRng::from_seed(seed ^ (0xBEEF << 4) ^ self.ordinal() as u64);
        self.spec().scaled(scale).generate(&mut rng)
    }

    fn ordinal(&self) -> usize {
        Benchmark::ALL
            .iter()
            .position(|b| b == self)
            .expect("benchmark is in ALL")
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Benchmark::Mnist => "MNIST",
            Benchmark::Ucihar => "UCIHAR",
            Benchmark::Face => "FACE",
            Benchmark::Isolet => "ISOLET",
            Benchmark::Pamap => "PAMAP",
        })
    }
}

impl std::str::FromStr for Benchmark {
    type Err = DataError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "mnist" => Ok(Benchmark::Mnist),
            "ucihar" => Ok(Benchmark::Ucihar),
            "face" => Ok(Benchmark::Face),
            "isolet" => Ok(Benchmark::Isolet),
            "pamap" => Ok(Benchmark::Pamap),
            other => Err(DataError::Parse {
                line: 0,
                message: format!("unknown benchmark '{other}'"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_match_the_literature() {
        assert_eq!(Benchmark::Mnist.n_features(), 784);
        assert_eq!(Benchmark::Mnist.n_classes(), 10);
        assert_eq!(Benchmark::Ucihar.n_features(), 561);
        assert_eq!(Benchmark::Face.n_classes(), 2);
        assert_eq!(Benchmark::Isolet.n_classes(), 26);
        assert_eq!(Benchmark::Pamap.n_features(), 75);
    }

    #[test]
    fn generate_small_scale() {
        let (train, test) = Benchmark::Pamap.generate(0.02, 1).unwrap();
        assert_eq!(train.n_features(), 75);
        assert_eq!(train.n_classes(), 5);
        assert!(train.len() >= 5);
        assert!(test.len() >= 5);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (a, _) = Benchmark::Face.generate(0.02, 9).unwrap();
        let (b, _) = Benchmark::Face.generate(0.02, 9).unwrap();
        let (c, _) = Benchmark::Face.generate(0.02, 10).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn benchmarks_with_same_seed_are_distinct_tasks() {
        let (a, _) = Benchmark::Mnist.generate(0.005, 3).unwrap();
        let (b, _) = Benchmark::Ucihar.generate(0.005, 3).unwrap();
        assert_ne!(a.n_features(), b.n_features());
    }

    #[test]
    fn parse_round_trips() {
        for b in Benchmark::ALL {
            let parsed: Benchmark = b.name().parse().unwrap();
            assert_eq!(parsed, b);
        }
        assert!("frobnitz".parse::<Benchmark>().is_err());
    }

    #[test]
    fn display_matches_paper_casing() {
        assert_eq!(Benchmark::Mnist.to_string(), "MNIST");
        assert_eq!(Benchmark::Ucihar.to_string(), "UCIHAR");
    }
}
