//! Synthetic classification-task generator.
//!
//! Stand-in for the paper's real benchmarks (see `DESIGN.md` §2): each
//! class gets a random prototype in `[0,1]^N`; samples are the prototype
//! plus Gaussian noise, clipped back to `[0,1]`. The resulting task has
//! the same feature count, class count and value range as the original
//! dataset, is learnable by an HDC model to accuracies in the paper's
//! band, and is fully deterministic given a seed.

use hypervec::HvRng;
use serde::{Deserialize, Serialize};

use crate::error::DataError;
use crate::schema::{Dataset, Sample};

/// Recipe for one synthetic classification dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Dataset name (e.g. `"mnist-synth"`).
    pub name: String,
    /// Feature count `N`.
    pub n_features: usize,
    /// Class count `C`.
    pub n_classes: usize,
    /// Training-set size.
    pub train_size: usize,
    /// Test-set size.
    pub test_size: usize,
    /// Gaussian noise σ added around class prototypes. Larger σ makes
    /// the task harder.
    pub noise: f64,
    /// Fraction of features that are pure noise (carry no class signal),
    /// emulating uninformative pixels/channels in the real benchmarks.
    pub distractor_fraction: f64,
    /// How far class prototypes deviate from a shared backbone, in
    /// `[0, 1]`: each informative feature's prototype is
    /// `(1 − β)·shared + β·class_unique`. Small β makes classes overlap
    /// (harder task); β = 1 gives fully independent prototypes. This is
    /// the main knob calibrating HDC accuracy into the paper's
    /// 0.80–0.94 band.
    pub class_distinctness: f64,
}

impl SynthSpec {
    /// Convenience constructor with no distractor features.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        n_features: usize,
        n_classes: usize,
        train_size: usize,
        test_size: usize,
        noise: f64,
    ) -> Self {
        SynthSpec {
            name: name.into(),
            n_features,
            n_classes,
            train_size,
            test_size,
            noise,
            distractor_fraction: 0.0,
            class_distinctness: 1.0,
        }
    }

    /// Returns a copy with train/test sizes multiplied by `scale`
    /// (clamped so each side keeps at least one sample per class).
    #[must_use]
    pub fn scaled(&self, scale: f64) -> Self {
        let scale = scale.max(0.0);
        let min = self.n_classes;
        SynthSpec {
            train_size: ((self.train_size as f64 * scale) as usize).max(min),
            test_size: ((self.test_size as f64 * scale) as usize).max(min),
            ..self.clone()
        }
    }

    /// Generates the train and test datasets for this spec.
    ///
    /// Both splits share the class prototypes (drawn first) so they
    /// describe the same underlying task.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Empty`] if the spec asks for zero samples,
    /// features or classes.
    pub fn generate(&self, rng: &mut HvRng) -> Result<(Dataset, Dataset), DataError> {
        if self.n_features == 0
            || self.n_classes == 0
            || self.train_size == 0
            || self.test_size == 0
        {
            return Err(DataError::Empty);
        }
        let beta = self.class_distinctness.clamp(0.0, 1.0);
        let shared: Vec<f64> = (0..self.n_features).map(|_| rng.unit_f64()).collect();
        let prototypes: Vec<Vec<f64>> = (0..self.n_classes)
            .map(|_| {
                (0..self.n_features)
                    .map(|j| (1.0 - beta) * shared[j] + beta * rng.unit_f64())
                    .collect()
            })
            .collect();
        let distractor: Vec<bool> = (0..self.n_features)
            .map(|_| rng.unit_f64() < self.distractor_fraction)
            .collect();
        let train = self.sample_split("train", &prototypes, &distractor, self.train_size, rng)?;
        let test = self.sample_split("test", &prototypes, &distractor, self.test_size, rng)?;
        Ok((train, test))
    }

    fn sample_split(
        &self,
        split: &str,
        prototypes: &[Vec<f64>],
        distractor: &[bool],
        count: usize,
        rng: &mut HvRng,
    ) -> Result<Dataset, DataError> {
        let mut samples = Vec::with_capacity(count);
        for i in 0..count {
            // Round-robin labels guarantee class balance in every split.
            let label = i % self.n_classes;
            let proto = &prototypes[label];
            let features: Vec<f32> = (0..self.n_features)
                .map(|j| {
                    let center = if distractor[j] {
                        rng.unit_f64()
                    } else {
                        proto[j]
                    };
                    let v = center + self.noise * rng.normal();
                    v.clamp(0.0, 1.0) as f32
                })
                .collect();
            samples.push(Sample { features, label });
        }
        Dataset::new(format!("{}-{split}", self.name), self.n_classes, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SynthSpec {
        SynthSpec::new("unit", 20, 4, 40, 16, 0.1)
    }

    #[test]
    fn generates_requested_shapes() {
        let mut rng = HvRng::from_seed(1);
        let (train, test) = spec().generate(&mut rng).unwrap();
        assert_eq!(train.len(), 40);
        assert_eq!(test.len(), 16);
        assert_eq!(train.n_features(), 20);
        assert_eq!(train.n_classes(), 4);
        assert_eq!(test.name(), "unit-test");
    }

    #[test]
    fn splits_are_class_balanced() {
        let mut rng = HvRng::from_seed(2);
        let (train, _) = spec().generate(&mut rng).unwrap();
        assert_eq!(train.class_counts(), vec![10, 10, 10, 10]);
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = spec().generate(&mut HvRng::from_seed(7)).unwrap();
        let (b, _) = spec().generate(&mut HvRng::from_seed(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = spec().generate(&mut HvRng::from_seed(7)).unwrap();
        let (b, _) = spec().generate(&mut HvRng::from_seed(8)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn values_stay_in_unit_interval() {
        let mut rng = HvRng::from_seed(3);
        let mut s = spec();
        s.noise = 2.0; // extreme noise must still clamp
        let (train, _) = s.generate(&mut rng).unwrap();
        for sample in &train {
            for &v in &sample.features {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn same_class_samples_are_closer_than_cross_class() {
        let mut rng = HvRng::from_seed(4);
        let (train, _) = SynthSpec::new("sep", 50, 2, 100, 10, 0.1)
            .generate(&mut rng)
            .unwrap();
        let dist = |a: &[f32], b: &[f32]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| ((x - y) as f64).powi(2))
                .sum::<f64>()
        };
        let s = train.samples();
        let mut within = 0.0;
        let mut across = 0.0;
        let mut n_within = 0;
        let mut n_across = 0;
        for i in 0..30 {
            for j in (i + 1)..30 {
                let d = dist(&s[i].features, &s[j].features);
                if s[i].label == s[j].label {
                    within += d;
                    n_within += 1;
                } else {
                    across += d;
                    n_across += 1;
                }
            }
        }
        assert!((within / n_within as f64) < (across / n_across as f64));
    }

    #[test]
    fn scaled_respects_minimums() {
        let s = spec().scaled(0.0);
        assert_eq!(s.train_size, 4);
        assert_eq!(s.test_size, 4);
        let s = spec().scaled(0.5);
        assert_eq!(s.train_size, 20);
    }

    #[test]
    fn zero_sizes_rejected() {
        let mut s = spec();
        s.train_size = 0;
        assert!(matches!(
            s.generate(&mut HvRng::from_seed(0)),
            Err(DataError::Empty)
        ));
    }
}
