//! Min–max quantization of continuous features into `M` discrete levels.
//!
//! HDC record-based encoding needs each feature value mapped to one of
//! `M` level hypervectors. Following the paper (Sec. 2, Encoding), the
//! value range is taken per-feature across the *training* set and split
//! into `M` equal bins.

use serde::{Deserialize, Serialize};

use crate::error::DataError;
use crate::schema::{Dataset, QuantizedDataset};

/// A fitted min–max discretizer mapping `f32` features to levels
/// `0..m_levels`.
///
/// # Examples
///
/// ```
/// use hdc_datasets::{Dataset, Discretizer, Sample};
///
/// let ds = Dataset::new("t", 2, vec![
///     Sample { features: vec![0.0], label: 0 },
///     Sample { features: vec![1.0], label: 1 },
/// ])?;
/// let disc = Discretizer::fit(&ds, 4)?;
/// assert_eq!(disc.discretize_value(0, 0.0), 0);
/// assert_eq!(disc.discretize_value(0, 1.0), 3);
/// # Ok::<(), hdc_datasets::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discretizer {
    mins: Vec<f32>,
    maxs: Vec<f32>,
    m_levels: usize,
}

impl Discretizer {
    /// Fits per-feature minima/maxima on `dataset` for `m_levels` bins.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::TooFewLevels`] if `m_levels < 2`.
    pub fn fit(dataset: &Dataset, m_levels: usize) -> Result<Self, DataError> {
        if m_levels < 2 {
            return Err(DataError::TooFewLevels {
                requested: m_levels,
            });
        }
        let n = dataset.n_features();
        let mut mins = vec![f32::INFINITY; n];
        let mut maxs = vec![f32::NEG_INFINITY; n];
        for s in dataset {
            for (j, &v) in s.features.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        Ok(Discretizer {
            mins,
            maxs,
            m_levels,
        })
    }

    /// Reassembles a discretizer from stored bounds (the binary-snapshot
    /// deserialization path).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::TooFewLevels`] if `m_levels < 2`,
    /// [`DataError::Empty`] for no features, and
    /// [`DataError::InconsistentWidth`] when `mins` and `maxs` disagree
    /// on the feature count.
    pub fn from_parts(mins: Vec<f32>, maxs: Vec<f32>, m_levels: usize) -> Result<Self, DataError> {
        if m_levels < 2 {
            return Err(DataError::TooFewLevels {
                requested: m_levels,
            });
        }
        if mins.is_empty() {
            return Err(DataError::Empty);
        }
        if mins.len() != maxs.len() {
            return Err(DataError::InconsistentWidth {
                index: 0,
                expected: mins.len(),
                found: maxs.len(),
            });
        }
        Ok(Discretizer {
            mins,
            maxs,
            m_levels,
        })
    }

    /// Per-feature minima fitted on the training set.
    #[must_use]
    pub fn mins(&self) -> &[f32] {
        &self.mins
    }

    /// Per-feature maxima fitted on the training set.
    #[must_use]
    pub fn maxs(&self) -> &[f32] {
        &self.maxs
    }

    /// Number of levels `M`.
    #[must_use]
    pub fn m_levels(&self) -> usize {
        self.m_levels
    }

    /// Number of features this discretizer was fitted on.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.mins.len()
    }

    /// Quantizes one value of feature `j`; values outside the fitted
    /// range clamp to the boundary levels.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.n_features()`.
    #[must_use]
    pub fn discretize_value(&self, j: usize, v: f32) -> u16 {
        let (lo, hi) = (self.mins[j], self.maxs[j]);
        if hi <= lo {
            return 0; // constant feature: single level
        }
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        let level = (t * self.m_levels as f32) as usize;
        level.min(self.m_levels - 1) as u16
    }

    /// Quantizes a full feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != self.n_features()`.
    #[must_use]
    pub fn discretize_row(&self, features: &[f32]) -> Vec<u16> {
        assert_eq!(features.len(), self.n_features(), "feature width mismatch");
        features
            .iter()
            .enumerate()
            .map(|(j, &v)| self.discretize_value(j, v))
            .collect()
    }

    /// Quantizes a whole dataset into a [`QuantizedDataset`].
    ///
    /// # Errors
    ///
    /// Propagates construction errors (these indicate an internal bug;
    /// the discretizer always emits in-range levels).
    pub fn discretize(&self, dataset: &Dataset) -> Result<QuantizedDataset, DataError> {
        let rows: Vec<Vec<u16>> = dataset
            .iter()
            .map(|s| self.discretize_row(&s.features))
            .collect();
        let labels: Vec<usize> = dataset.iter().map(|s| s.label).collect();
        QuantizedDataset::new(
            dataset.name(),
            dataset.n_classes(),
            self.m_levels,
            rows,
            labels,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Sample;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            2,
            vec![
                Sample {
                    features: vec![0.0, -5.0],
                    label: 0,
                },
                Sample {
                    features: vec![10.0, 5.0],
                    label: 1,
                },
                Sample {
                    features: vec![5.0, 0.0],
                    label: 0,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn fit_finds_min_max() {
        let d = Discretizer::fit(&toy(), 4).unwrap();
        assert_eq!(d.discretize_value(0, 0.0), 0);
        assert_eq!(d.discretize_value(0, 10.0), 3);
        assert_eq!(d.discretize_value(1, -5.0), 0);
        assert_eq!(d.discretize_value(1, 5.0), 3);
    }

    #[test]
    fn midpoints_hit_middle_levels() {
        let d = Discretizer::fit(&toy(), 4).unwrap();
        assert_eq!(d.discretize_value(0, 2.6), 1);
        assert_eq!(d.discretize_value(0, 5.1), 2);
    }

    #[test]
    fn out_of_range_clamps() {
        let d = Discretizer::fit(&toy(), 8).unwrap();
        assert_eq!(d.discretize_value(0, -100.0), 0);
        assert_eq!(d.discretize_value(0, 100.0), 7);
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let ds = Dataset::new(
            "c",
            1,
            vec![
                Sample {
                    features: vec![3.0],
                    label: 0,
                },
                Sample {
                    features: vec![3.0],
                    label: 0,
                },
            ],
        )
        .unwrap();
        let d = Discretizer::fit(&ds, 4).unwrap();
        assert_eq!(d.discretize_value(0, 3.0), 0);
    }

    #[test]
    fn from_parts_roundtrips_fitted_bounds() {
        let d = Discretizer::fit(&toy(), 4).unwrap();
        let rebuilt =
            Discretizer::from_parts(d.mins().to_vec(), d.maxs().to_vec(), d.m_levels()).unwrap();
        assert_eq!(rebuilt, d);
        assert!(matches!(
            Discretizer::from_parts(vec![0.0], vec![1.0], 1),
            Err(DataError::TooFewLevels { .. })
        ));
        assert!(matches!(
            Discretizer::from_parts(vec![], vec![], 4),
            Err(DataError::Empty)
        ));
        assert!(matches!(
            Discretizer::from_parts(vec![0.0, 1.0], vec![1.0], 4),
            Err(DataError::InconsistentWidth { .. })
        ));
    }

    #[test]
    fn rejects_single_level() {
        assert!(matches!(
            Discretizer::fit(&toy(), 1),
            Err(DataError::TooFewLevels { requested: 1 })
        ));
    }

    #[test]
    fn discretize_dataset_preserves_shape() {
        let ds = toy();
        let d = Discretizer::fit(&ds, 16).unwrap();
        let q = d.discretize(&ds).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.n_features(), 2);
        assert_eq!(q.m_levels(), 16);
        assert_eq!(q.label(2), 0);
    }

    #[test]
    fn levels_are_monotone_in_value() {
        let d = Discretizer::fit(&toy(), 10).unwrap();
        let mut prev = 0;
        for step in 0..=100 {
            let v = step as f32 * 0.1;
            let lv = d.discretize_value(0, v);
            assert!(lv >= prev, "level decreased at v={v}");
            prev = lv;
        }
    }
}
