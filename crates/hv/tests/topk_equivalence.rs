//! Property tests for the top-k search paths: every backend is
//! bit-identical to the scalar full-sort reference, and pruned top-k at
//! full probe width is bit-identical to exact top-k — argmax, tie
//! order, and score sequence (the ISSUE 6 acceptance property).

use hypervec::kernel::{self, Kernel};
use hypervec::{BinaryHv, HvRng, IntHv, ProbeConfig, ShardedClassMemory, TopKMatch};
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(130),
        60usize..=70,
        Just(1000),
        Just(4096),
        Just(10_000)
    ]
}

fn non_scalar_backends() -> Vec<&'static Kernel> {
    kernel::available()
        .into_iter()
        .filter(|k| k.name != "scalar")
        .collect()
}

/// Reference top-k: stable sort of the full per-row score vector by
/// (score desc, row asc) — what the heap kernels must reproduce
/// bit-for-bit.
fn reference_topk(scores: &[f64], k: usize) -> Vec<(usize, u64)> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    order
        .into_iter()
        .take(k)
        .map(|r| (r, scores[r].to_bits()))
        .collect()
}

fn as_pairs(matches: &[TopKMatch]) -> Vec<(usize, u64)> {
    matches.iter().map(|m| (m.row, m.score.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn topk_binary_matches_reference_on_every_backend(
        dim in dims(),
        n_rows in 1usize..=40,
        n_queries in 1usize..=4,
        k in 0usize..=12,
        seed in any::<u64>(),
    ) {
        let mut rng = HvRng::from_seed(seed);
        let rows: Vec<BinaryHv> = (0..n_rows).map(|_| rng.binary_hv(dim)).collect();
        let mem = ShardedClassMemory::from_rows(&rows).unwrap();
        let queries: Vec<BinaryHv> = (0..n_queries).map(|_| rng.binary_hv(dim)).collect();
        let refs: Vec<&BinaryHv> = queries.iter().collect();
        let full = mem.search_batch_binary_with(kernel::scalar(), &refs).unwrap();
        let want = mem.search_topk_binary_with(kernel::scalar(), &refs, k).unwrap();
        for q in 0..n_queries {
            prop_assert_eq!(
                as_pairs(want.matches(q)),
                reference_topk(full.scores(q), k),
                "scalar topk vs full-sort reference, q {}", q
            );
        }
        for kb in non_scalar_backends() {
            let got = mem.search_topk_binary_with(kb, &refs, k).unwrap();
            prop_assert_eq!(&got, &want, "topk_binary: {}", kb.name);
        }
    }

    #[test]
    fn topk_int_matches_reference_on_every_backend(
        dim in dims(),
        n_rows in 1usize..=20,
        n_queries in 1usize..=3,
        k in 0usize..=8,
        seed in any::<u64>(),
    ) {
        let mut rng = HvRng::from_seed(seed);
        let bins: Vec<BinaryHv> = (0..n_rows).map(|_| rng.binary_hv(dim)).collect();
        let ints: Vec<IntHv> = bins
            .iter()
            .map(|b| {
                let mut acc = b.to_int();
                acc.add_binary(&rng.binary_hv(dim));
                acc
            })
            .collect();
        let mut mem = ShardedClassMemory::from_rows(&bins).unwrap();
        mem.set_int_rows(&ints).unwrap();
        let queries: Vec<IntHv> = (0..n_queries).map(|_| rng.binary_hv(dim).to_int()).collect();
        let refs: Vec<&IntHv> = queries.iter().collect();
        let full = mem.search_batch_int_with(kernel::scalar(), &refs).unwrap();
        let want = mem.search_topk_int_with(kernel::scalar(), &refs, k).unwrap();
        for q in 0..n_queries {
            prop_assert_eq!(
                as_pairs(want.matches(q)),
                reference_topk(full.scores(q), k),
                "scalar int topk vs reference, q {}", q
            );
        }
        for kb in non_scalar_backends() {
            let got = mem.search_topk_int_with(kb, &refs, k).unwrap();
            prop_assert_eq!(&got, &want, "topk_int: {}", kb.name);
        }
    }

    /// The acceptance property: pruned top-k at full probe width is
    /// bit-identical to exact top-k — argmax, tie order, score
    /// sequence — on every backend, with `exact_threshold = 0` so the
    /// two-phase coarse/rescore machinery actually runs.
    #[test]
    fn pruned_full_probe_width_is_bit_identical_to_exact(
        dim in dims(),
        n_rows in 1usize..=60,
        n_queries in 1usize..=3,
        k in 1usize..=10,
        probe_factor in 1usize..=4,
        dup in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = HvRng::from_seed(seed);
        let mut rows: Vec<BinaryHv> = (0..n_rows).map(|_| rng.binary_hv(dim)).collect();
        if dup && n_rows >= 2 {
            // Duplicated rows force exact ties; the pruned path must
            // keep the same lowest-index order.
            let base = rows[0].clone();
            let mid = n_rows / 2;
            rows[mid] = base.clone();
            rows[n_rows - 1] = base;
        }
        let mem = ShardedClassMemory::from_rows(&rows).unwrap();
        let queries: Vec<BinaryHv> = (0..n_queries).map(|_| rng.binary_hv(dim)).collect();
        let refs: Vec<&BinaryHv> = queries.iter().collect();
        let probe = ProbeConfig {
            probe_words: mem.dim().div_ceil(64), // full width
            probe_factor,
            exact_threshold: 0,
        };
        for kb in kernel::available() {
            let exact = mem.search_topk_binary_with(kb, &refs, k).unwrap();
            let pruned = mem
                .search_topk_binary_pruned_with(kb, &refs, k, &probe)
                .unwrap();
            prop_assert_eq!(&pruned, &exact, "pruned@full-width: {}", kb.name);
        }
    }

    /// The int acceptance property: pruned int top-k at full probe
    /// width is bit-identical to exact int top-k on every backend, for
    /// rows that fit the lossless i16 sidecar *and* rows that overflow
    /// it (forcing the exact i32 coarse path).
    #[test]
    fn pruned_int_full_probe_width_is_bit_identical_to_exact(
        dim in dims(),
        n_rows in 1usize..=40,
        n_queries in 1usize..=3,
        k in 1usize..=8,
        probe_factor in 1usize..=4,
        big in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = HvRng::from_seed(seed);
        let scale = if big { 50_000 } else { 1 };
        let bins: Vec<BinaryHv> = (0..n_rows).map(|_| rng.binary_hv(dim)).collect();
        let ints: Vec<IntHv> = bins
            .iter()
            .map(|b| {
                let mut acc = b.to_int();
                acc.add_binary(&rng.binary_hv(dim));
                if big {
                    // Values far outside ±32767: the i16 sidecar clamp
                    // fires and the exact coarse pass must take the i32
                    // planes instead.
                    IntHv::from_fn(dim, |i| acc.get(i) * scale)
                } else {
                    acc
                }
            })
            .collect();
        let mut mem = ShardedClassMemory::from_rows(&bins).unwrap();
        mem.set_int_rows(&ints).unwrap();
        let queries: Vec<IntHv> = (0..n_queries).map(|_| rng.binary_hv(dim).to_int()).collect();
        let refs: Vec<&IntHv> = queries.iter().collect();
        let probe = ProbeConfig {
            probe_words: mem.dim().div_ceil(64), // full width
            probe_factor,
            exact_threshold: 0,
        };
        for kb in kernel::available() {
            let exact = mem.search_topk_int_with(kb, &refs, k).unwrap();
            let pruned = mem
                .search_topk_int_pruned_with(kb, &refs, k, &probe)
                .unwrap();
            prop_assert_eq!(&pruned, &exact, "pruned int@full-width: {}", kb.name);
        }
    }

    #[test]
    fn narrow_pruned_int_is_valid_subset_with_exact_scores(
        dim in prop_oneof![Just(1000), Just(4096)],
        n_rows in 10usize..=60,
        k in 1usize..=5,
        seed in any::<u64>(),
    ) {
        // A narrow int probe may miss neighbors, but every match it
        // returns must carry the row's *exact* cosine score (the
        // rescore is always full-width i32) and the list must be
        // best-first among the returned rows.
        let mut rng = HvRng::from_seed(seed);
        let bins: Vec<BinaryHv> = (0..n_rows).map(|_| rng.binary_hv(dim)).collect();
        let ints: Vec<IntHv> = bins
            .iter()
            .map(|b| {
                let mut acc = b.to_int();
                acc.add_binary(&rng.binary_hv(dim));
                acc
            })
            .collect();
        let mut mem = ShardedClassMemory::from_rows(&bins).unwrap();
        mem.set_int_rows(&ints).unwrap();
        let q = rng.binary_hv(dim).to_int();
        let probe = ProbeConfig {
            probe_words: 2,
            probe_factor: 2,
            exact_threshold: 0,
        };
        let pruned = mem.search_topk_int_pruned(&[&q], k, &probe).unwrap();
        let full = mem.search_batch_int(&[&q]).unwrap();
        let matches = pruned.matches(0);
        prop_assert_eq!(matches.len(), k.min(n_rows));
        for m in matches {
            prop_assert_eq!(m.score.to_bits(), full.scores(0)[m.row].to_bits());
        }
        for w in matches.windows(2) {
            prop_assert!(
                w[0].score > w[1].score || (w[0].score == w[1].score && w[0].row < w[1].row)
            );
        }
    }

    #[test]
    fn narrow_pruned_is_valid_subset_with_exact_scores(
        dim in prop_oneof![Just(1000), Just(4096)],
        n_rows in 10usize..=80,
        k in 1usize..=6,
        seed in any::<u64>(),
    ) {
        // A narrow probe may miss neighbors (that is the recall trade),
        // but every match it returns must carry the row's *exact* score
        // and the list must be best-first among the returned rows.
        let mut rng = HvRng::from_seed(seed);
        let rows: Vec<BinaryHv> = (0..n_rows).map(|_| rng.binary_hv(dim)).collect();
        let mem = ShardedClassMemory::from_rows(&rows).unwrap();
        let q = rng.binary_hv(dim);
        let probe = ProbeConfig {
            probe_words: 2,
            probe_factor: 2,
            exact_threshold: 0,
        };
        let pruned = mem.search_topk_binary_pruned(&[&q], k, &probe).unwrap();
        let full = mem.search_batch_binary(&[&q]).unwrap();
        let matches = pruned.matches(0);
        prop_assert_eq!(matches.len(), k.min(n_rows));
        for m in matches {
            prop_assert_eq!(m.score.to_bits(), full.scores(0)[m.row].to_bits());
        }
        for w in matches.windows(2) {
            prop_assert!(
                w[0].score > w[1].score || (w[0].score == w[1].score && w[0].row < w[1].row)
            );
        }
    }
}

/// Row-sharded path (beyond the parallel chunk minimum) agrees with the
/// reference at scale — pinned explicitly rather than sampled.
#[test]
fn row_sharded_topk_matches_reference() {
    let dim = 256;
    let n_rows = 9000; // > TOPK_ROW_CHUNK so multi-shard merge runs
    let mut rng = HvRng::from_seed(2022);
    let rows: Vec<BinaryHv> = (0..n_rows).map(|_| rng.binary_hv(dim)).collect();
    let mem = ShardedClassMemory::from_rows(&rows).unwrap();
    let queries: Vec<BinaryHv> = (0..3).map(|_| rng.binary_hv(dim)).collect();
    let refs: Vec<&BinaryHv> = queries.iter().collect();
    let k = 25;
    let got = mem.search_topk_binary(&refs, k).unwrap();
    let full = mem.search_batch_binary(&refs).unwrap();
    for q in 0..refs.len() {
        assert_eq!(as_pairs(got.matches(q)), reference_topk(full.scores(q), k));
    }
    // And the pruned path with a narrow probe still returns exact
    // scores for whatever it surfaces.
    let probe = ProbeConfig {
        probe_words: 1,
        probe_factor: 16,
        exact_threshold: 0,
    };
    let pruned = mem.search_topk_binary_pruned(&refs, k, &probe).unwrap();
    for q in 0..refs.len() {
        for m in pruned.matches(q) {
            assert_eq!(m.score.to_bits(), full.scores(q)[m.row].to_bits());
        }
    }
}
