//! Property-based tests for the hypervector substrate invariants.

use hypervec::bitvec::BitWords;
use hypervec::{BinaryHv, BundleAccumulator, HvRng, IntHv, LevelHvs, Permutation};
use proptest::prelude::*;

/// Strategy: a dimension that exercises word boundaries.
fn dims() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..=4,
        60usize..=70,
        120usize..=132,
        Just(1000),
        Just(10_000)
    ]
}

fn hv_pair() -> impl Strategy<Value = (BinaryHv, BinaryHv, u64)> {
    (dims(), any::<u64>()).prop_map(|(d, seed)| {
        let mut rng = HvRng::from_seed(seed);
        (rng.binary_hv(d), rng.binary_hv(d), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bind_is_self_inverse((a, b, _) in hv_pair()) {
        prop_assert_eq!(a.bind(&b).bind(&b), a);
    }

    #[test]
    fn bind_is_commutative((a, b, _) in hv_pair()) {
        prop_assert_eq!(a.bind(&b), b.bind(&a));
    }

    #[test]
    fn bind_preserves_distance((a, b, seed) in hv_pair()) {
        let mut rng = HvRng::from_seed(seed.wrapping_add(1));
        let c = rng.binary_hv(a.dim());
        prop_assert_eq!(a.hamming(&b), a.bind(&c).hamming(&b.bind(&c)));
    }

    #[test]
    fn hamming_metric_axioms((a, b, seed) in hv_pair()) {
        let mut rng = HvRng::from_seed(seed.wrapping_add(2));
        let c = rng.binary_hv(a.dim());
        prop_assert_eq!(a.hamming(&a), 0);
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
        prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
        prop_assert!(a.hamming(&b) <= a.dim());
    }

    #[test]
    fn rotation_is_distance_preserving((a, b, seed) in hv_pair()) {
        let k = (seed % a.dim() as u64) as usize;
        prop_assert_eq!(a.rotated(k).hamming(&b.rotated(k)), a.hamming(&b));
    }

    #[test]
    fn rotation_composes_mod_dim((a, _, seed) in hv_pair()) {
        let d = a.dim();
        let k1 = (seed % d as u64) as usize;
        let k2 = ((seed >> 16) % d as u64) as usize;
        prop_assert_eq!(a.rotated(k1).rotated(k2), a.rotated((k1 + k2) % d));
    }

    #[test]
    fn rotation_inverse_restores((a, _, seed) in hv_pair()) {
        let d = a.dim();
        let k = (seed % d as u64) as usize;
        prop_assert_eq!(a.rotated(k).rotated((d - k) % d), a);
    }

    #[test]
    fn dot_agrees_with_hamming((a, b, _) in hv_pair()) {
        prop_assert_eq!(a.dot(&b), a.dim() as i64 - 2 * a.hamming(&b) as i64);
    }

    #[test]
    fn extract64_is_circular(seed in any::<u64>(), d in 65usize..=200, start_frac in 0.0f64..1.0) {
        let mut rng = HvRng::from_seed(seed);
        let hv = rng.binary_hv(d);
        let start = ((d as f64) * start_frac) as usize % d;
        let w = hv.bits().extract64(start);
        for j in 0..64usize {
            let expected = hv.bits().get((start + j) % d);
            prop_assert_eq!((w >> j) & 1 == 1, expected);
        }
    }

    #[test]
    fn accumulator_add_remove_is_identity(seed in any::<u64>(), d in 1usize..=256, n in 1usize..=8) {
        let mut rng = HvRng::from_seed(seed);
        let keep = rng.binary_hv(d);
        let mut acc = BundleAccumulator::new(d);
        acc.add(&keep);
        let extras: Vec<BinaryHv> = (0..n).map(|_| rng.binary_hv(d)).collect();
        for e in &extras { acc.add(e); }
        for e in &extras { acc.remove(e); }
        prop_assert_eq!(acc.count(), 1);
        prop_assert_eq!(acc.majority_ties_positive(), keep);
    }

    #[test]
    fn sign_never_contradicts_nonzero(seed in any::<u64>(), d in 1usize..=128) {
        let mut rng = HvRng::from_seed(seed);
        let v = IntHv::from_fn(d, |i| ((seed >> (i % 48)) as i32 % 5) - 2);
        let s = v.sign_with(&mut rng);
        for i in 0..d {
            match v.get(i).signum() {
                1 => prop_assert_eq!(s.polarity(i), 1),
                -1 => prop_assert_eq!(s.polarity(i), -1),
                _ => {}
            }
        }
    }

    #[test]
    fn permutation_inverse_is_identity(seed in any::<u64>(), d in 1usize..=128) {
        let mut rng = HvRng::from_seed(seed);
        let p = Permutation::random(&mut rng, d);
        let hv = rng.binary_hv(d);
        prop_assert_eq!(p.inverse().apply(&p.apply(&hv)), hv.clone());
        prop_assert_eq!(p.compose(&p.inverse()).apply(&hv), hv);
    }

    #[test]
    fn level_family_is_monotone_linear(seed in any::<u64>(), m in 2usize..=12) {
        let d = 2000;
        let mut rng = HvRng::from_seed(seed);
        let fam = LevelHvs::generate(&mut rng, d, m).unwrap();
        prop_assert_eq!(fam.level(0).hamming(fam.level(m - 1)), d / 2);
        for a in 0..m {
            for b in 0..m {
                prop_assert_eq!(fam.level(a).hamming(fam.level(b)), fam.expected_hamming(a, b));
            }
        }
    }

    #[test]
    fn bitwords_roundtrip_through_words(seed in any::<u64>(), d in 1usize..=300) {
        let mut rng = HvRng::from_seed(seed);
        let hv = rng.binary_hv(d);
        let rebuilt = BinaryHv::from_bits(BitWords::from_words(hv.bits().words().to_vec(), d));
        prop_assert_eq!(rebuilt, hv);
    }
}
