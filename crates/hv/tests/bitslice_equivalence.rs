//! Property tests: the word-parallel [`BitSliceAccumulator`] is
//! bit-identical to the scalar [`BundleAccumulator`] — full hypervector
//! equality, not just similarity — across random dimensions (including
//! non-word-aligned ones like 130 and the paper-scale 10 000), bundle
//! sizes, tie policies and scratch-buffer reuse.

use hypervec::{BinaryHv, BitSliceAccumulator, BundleAccumulator, HvRng};
use proptest::prelude::*;

/// Dimensions that exercise word boundaries and paper scale.
fn dims() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..=4,
        60usize..=70,
        Just(130),
        120usize..=132,
        Just(1000),
        Just(10_000)
    ]
}

/// Builds the same bundle through both accumulators.
fn filled_pair(dim: usize, n: usize, seed: u64) -> (BitSliceAccumulator, BundleAccumulator) {
    let mut rng = HvRng::from_seed(seed);
    let mut fast = BitSliceAccumulator::new(dim);
    let mut slow = BundleAccumulator::new(dim);
    for _ in 0..n {
        let hv = rng.binary_hv(dim);
        fast.add(&hv);
        slow.add(&hv);
    }
    (fast, slow)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn integer_sums_are_bit_identical(d in dims(), n in 0usize..=33, seed in any::<u64>()) {
        let (fast, slow) = filled_pair(d, n, seed);
        prop_assert_eq!(fast.to_int(), slow.sums().clone());
        prop_assert_eq!(fast.count(), slow.count());
    }

    #[test]
    fn deterministic_majority_is_bit_identical(d in dims(), n in 0usize..=33, seed in any::<u64>()) {
        let (fast, slow) = filled_pair(d, n, seed);
        prop_assert_eq!(fast.majority_ties_positive(), slow.majority_ties_positive());
    }

    #[test]
    fn random_tie_majority_consumes_identical_coin_stream(
        d in dims(),
        n in 0usize..=16,
        seed in any::<u64>(),
        tie_seed in any::<u64>(),
    ) {
        // Even counts produce real ties; both paths must resolve them
        // from the same rng draws AND leave the stream in the same state.
        let n = n * 2;
        let (fast, slow) = filled_pair(d, n, seed);
        let mut rng_fast = HvRng::from_seed(tie_seed);
        let mut rng_slow = HvRng::from_seed(tie_seed);
        prop_assert_eq!(fast.majority_with(&mut rng_fast), slow.majority_with(&mut rng_slow));
        prop_assert_eq!(rng_fast.next_u64(), rng_slow.next_u64());
    }

    #[test]
    fn bound_pair_accumulation_is_bit_identical(d in dims(), n in 1usize..=17, seed in any::<u64>()) {
        let mut rng = HvRng::from_seed(seed);
        let mut fast = BitSliceAccumulator::new(d);
        let mut slow = BundleAccumulator::new(d);
        for _ in 0..n {
            let a = rng.binary_hv(d);
            let b = rng.binary_hv(d);
            fast.add_bound_pair(&a, &b);
            slow.add_bound_pair(&a, &b);
        }
        prop_assert_eq!(fast.to_int(), slow.sums().clone());
        prop_assert_eq!(fast.majority_ties_positive(), slow.majority_ties_positive());
    }

    #[test]
    fn cleared_accumulator_behaves_like_fresh(d in dims(), n in 1usize..=12, seed in any::<u64>()) {
        // Scratch-buffer contract: clear() + reuse must be indistinguishable
        // from a newly allocated accumulator.
        let mut rng = HvRng::from_seed(seed);
        let (mut reused, _) = filled_pair(d, n, seed ^ 0xABCD);
        reused.clear();
        let mut fresh = BitSliceAccumulator::new(d);
        for _ in 0..n {
            let hv = rng.binary_hv(d);
            reused.add(&hv);
            fresh.add(&hv);
        }
        prop_assert_eq!(reused.to_int(), fresh.to_int());
    }

    #[test]
    fn counts_match_per_dimension_negatives(d in dims(), n in 0usize..=20, seed in any::<u64>()) {
        let mut rng = HvRng::from_seed(seed);
        let mut fast = BitSliceAccumulator::new(d);
        let mut naive = vec![0u32; d];
        for _ in 0..n {
            let hv: BinaryHv = rng.binary_hv(d);
            fast.add(&hv);
            for (dim, count) in naive.iter_mut().enumerate() {
                if hv.polarity(dim) < 0 {
                    *count += 1;
                }
            }
        }
        prop_assert_eq!(fast.counts(), naive);
    }
}
