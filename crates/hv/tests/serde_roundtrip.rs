//! Serialization round-trips and validated-deserialization tests.
//!
//! Deserialization is an attack surface in this codebase's own threat
//! model (model files are the IP being protected), so every container
//! must re-validate its invariants when loaded.

use hypervec::bitvec::BitWords;
use hypervec::{HvRng, IntHv, ItemMemory, LevelHvs};

fn json_roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    serde_json::from_str(&serde_json::to_string(value).expect("serialize")).expect("deserialize")
}

#[test]
fn binary_hv_roundtrips() {
    let mut rng = HvRng::from_seed(1);
    let hv = rng.binary_hv(1000);
    assert_eq!(json_roundtrip(&hv), hv);
}

#[test]
fn int_hv_roundtrips() {
    let v = IntHv::from_fn(100, |i| i as i32 - 50);
    assert_eq!(json_roundtrip(&v), v);
}

#[test]
fn item_memory_roundtrips() {
    let mut rng = HvRng::from_seed(2);
    let mem = ItemMemory::random(&mut rng, 256, 8);
    assert_eq!(json_roundtrip(&mem), mem);
}

#[test]
fn level_family_roundtrips() {
    let mut rng = HvRng::from_seed(3);
    let fam = LevelHvs::generate(&mut rng, 1024, 8).unwrap();
    assert_eq!(json_roundtrip(&fam), fam);
}

#[test]
fn bitwords_rejects_wrong_word_count() {
    // 130 bits need 3 words; hand it 2.
    let malformed = r#"{"words":[0,0],"len":130}"#;
    assert!(serde_json::from_str::<BitWords>(malformed).is_err());
}

#[test]
fn bitwords_rejects_zero_length() {
    let malformed = r#"{"words":[],"len":0}"#;
    assert!(serde_json::from_str::<BitWords>(malformed).is_err());
}

#[test]
fn bitwords_masks_tail_garbage() {
    // 65 bits in 2 words, second word full of garbage beyond bit 0.
    let sneaky = format!(r#"{{"words":[0,{}],"len":65}}"#, u64::MAX);
    let parsed: BitWords = serde_json::from_str(&sneaky).expect("valid shape");
    // Only bit 64 (the single valid bit in word 1) may survive.
    assert_eq!(parsed.count_ones(), 1);
}

#[test]
fn level_family_rejects_single_level() {
    let mut rng = HvRng::from_seed(4);
    let fam = LevelHvs::generate(&mut rng, 128, 4).unwrap();
    let mut v: serde_json::Value =
        serde_json::from_str(&serde_json::to_string(&fam).unwrap()).unwrap();
    let arr = v.as_array().unwrap()[..1].to_vec();
    v = serde_json::Value::Array(arr);
    assert!(serde_json::from_str::<LevelHvs>(&v.to_string()).is_err());
}

#[test]
fn item_memory_rejects_mixed_dimensions() {
    let mut rng = HvRng::from_seed(5);
    let a = rng.binary_hv(64);
    let b = rng.binary_hv(128);
    let rows = serde_json::to_string(&vec![a, b]).unwrap();
    assert!(serde_json::from_str::<ItemMemory>(&rows).is_err());
}

#[test]
fn item_memory_rejects_empty() {
    assert!(serde_json::from_str::<ItemMemory>("[]").is_err());
}

#[test]
fn roundtrip_preserves_behaviour_not_just_bytes() {
    let mut rng = HvRng::from_seed(6);
    let a = rng.binary_hv(777);
    let b = rng.binary_hv(777);
    let (ra, rb) = (json_roundtrip(&a), json_roundtrip(&b));
    assert_eq!(ra.hamming(&rb), a.hamming(&b));
    assert_eq!(ra.bind(&rb), a.bind(&b));
    assert_eq!(ra.rotated(100), a.rotated(100));
}
