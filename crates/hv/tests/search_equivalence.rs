//! Property tests: the sharded batch search kernels are bit-identical
//! to the scalar one-row-at-a-time scan — same argmin/argmax (including
//! lowest-index tie-breaking) and bit-equal score floats — across
//! random shapes including non-word-aligned dimensions (130) and the
//! paper-scale D = 10 000.

use hypervec::{BinaryHv, HvRng, IntHv, ShardedClassMemory};
use proptest::prelude::*;

/// Dimensions exercising word boundaries plus the paper scale.
fn dims() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(64),
        Just(130),
        200usize..=260,
        Just(1024),
        Just(10_000)
    ]
}

/// Scalar reference: the pre-refactor per-row Hamming scan.
fn scalar_nearest(rows: &[BinaryHv], q: &BinaryHv) -> (usize, usize) {
    let mut best = (0usize, usize::MAX);
    for (j, r) in rows.iter().enumerate() {
        let d = r.hamming(q);
        if d < best.1 {
            best = (j, d);
        }
    }
    best
}

/// Scalar reference: the per-row cosine argmax.
fn scalar_best_int(rows: &[IntHv], q: &IntHv) -> (usize, f64) {
    let mut best = (0usize, f64::NEG_INFINITY);
    for (j, r) in rows.iter().enumerate() {
        let s = r.cosine(q);
        if s > best.1 {
            best = (j, s);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn batch_binary_search_is_bit_exact_with_scalar_scan(
        d in dims(),
        c in 2usize..=12,
        n_queries in 1usize..=17,
        seed in any::<u64>(),
    ) {
        let mut rng = HvRng::from_seed(seed);
        let rows: Vec<BinaryHv> = (0..c).map(|_| rng.binary_hv(d)).collect();
        let mem = ShardedClassMemory::from_rows(&rows).unwrap();
        let queries: Vec<BinaryHv> = (0..n_queries).map(|_| rng.binary_hv(d)).collect();
        let refs: Vec<&BinaryHv> = queries.iter().collect();

        let hits = mem.search_batch_binary(&refs).unwrap();
        prop_assert_eq!(hits.len(), n_queries);
        for (q, query) in queries.iter().enumerate() {
            let (want, want_d) = scalar_nearest(&rows, query);
            prop_assert_eq!(hits.best(q), want, "query {}", q);
            prop_assert_eq!(mem.search_binary(query).unwrap(), (want, want_d));
            for (r, row) in rows.iter().enumerate() {
                prop_assert_eq!(
                    hits.scores(q)[r].to_bits(),
                    row.cosine(query).to_bits(),
                    "query {} row {}", q, r
                );
            }
        }
    }

    #[test]
    fn batch_int_search_is_bit_exact_with_scalar_scan(
        d in dims(),
        c in 2usize..=10,
        n_queries in 1usize..=9,
        seed in any::<u64>(),
    ) {
        let mut rng = HvRng::from_seed(seed);
        let bins: Vec<BinaryHv> = (0..c).map(|_| rng.binary_hv(d)).collect();
        // Integer rows with mixed magnitudes, like trained accumulators.
        let ints: Vec<IntHv> = bins
            .iter()
            .map(|b| {
                let mut acc = IntHv::zeros(d);
                acc.add_binary(b);
                acc.add_binary_scaled(b, (rng.index(5) as i32) + 1);
                acc
            })
            .collect();
        let mut mem = ShardedClassMemory::from_rows(&bins).unwrap();
        mem.set_int_rows(&ints).unwrap();
        let queries: Vec<IntHv> = (0..n_queries)
            .map(|_| {
                let mut acc = IntHv::zeros(d);
                acc.add_binary(&rng.binary_hv(d));
                acc.add_binary(&rng.binary_hv(d));
                acc
            })
            .collect();
        let refs: Vec<&IntHv> = queries.iter().collect();

        let hits = mem.search_batch_int(&refs).unwrap();
        for (q, query) in queries.iter().enumerate() {
            let (want, want_s) = scalar_best_int(&ints, query);
            prop_assert_eq!(hits.best(q), want, "query {}", q);
            let (got, got_s) = mem.search_int(query).unwrap();
            prop_assert_eq!(got, want);
            prop_assert_eq!(got_s.to_bits(), want_s.to_bits());
            for (r, row) in ints.iter().enumerate() {
                prop_assert_eq!(
                    hits.scores(q)[r].to_bits(),
                    row.cosine(query).to_bits(),
                    "query {} row {}", q, r
                );
            }
        }
    }

    #[test]
    fn tie_breaking_matches_scalar_with_duplicate_rows(
        d in prop_oneof![Just(130usize), Just(192usize)],
        c in 2usize..=6,
        seed in any::<u64>(),
    ) {
        // All rows identical: every query ties across the board and the
        // kernels must return index 0, like the scalar scan.
        let mut rng = HvRng::from_seed(seed);
        let base = rng.binary_hv(d);
        let rows: Vec<BinaryHv> = (0..c).map(|_| base.clone()).collect();
        let mem = ShardedClassMemory::from_rows(&rows).unwrap();
        let query = rng.binary_hv(d);
        prop_assert_eq!(mem.search_binary(&query).unwrap().0, 0);
        let hits = mem.search_batch_binary(&[&query]).unwrap();
        prop_assert_eq!(hits.best(0), 0);
    }
}
