//! Property tests: every compiled-in kernel backend is bit-identical to
//! the scalar reference — primitive by primitive on random word/value
//! slices, and end-to-end through the sharded batch search at
//! non-word-aligned dimensions (130, 10 000) for both model kinds
//! (binary → Hamming popcount, non-binary → integer-dot cosine),
//! including float score sequences, argmax winners and lowest-index tie
//! order.

use hypervec::kernel::{self, Kernel};
use hypervec::{BinaryHv, HvRng, IntHv, ShardedClassMemory};
use proptest::prelude::*;

/// Word-slice lengths that exercise the SIMD blocks and scalar tails.
fn word_lens() -> impl Strategy<Value = usize> {
    prop_oneof![0usize..=9, Just(63), Just(64), Just(157), 120usize..=130]
}

/// Dimensions the acceptance criteria name: non-word-aligned small and
/// paper scale.
fn dims() -> impl Strategy<Value = usize> {
    prop_oneof![Just(130), 60usize..=70, Just(1000), Just(10_000)]
}

fn words(rng: &mut HvRng, n: usize) -> Vec<u64> {
    (0..n).map(|_| rng.next_u64()).collect()
}

fn ints(rng: &mut HvRng, n: usize) -> Vec<i32> {
    (0..n).map(|_| rng.next_u64() as i32).collect()
}

/// Every backend that is *not* the scalar reference, paired with it.
fn non_scalar_backends() -> Vec<&'static Kernel> {
    kernel::available()
        .into_iter()
        .filter(|k| k.name != "scalar")
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn xor_primitives_match_scalar(n in word_lens(), seed in any::<u64>()) {
        let scalar = kernel::scalar();
        let mut rng = HvRng::from_seed(seed);
        let a = words(&mut rng, n);
        let b = words(&mut rng, n);
        let mut want = vec![0u64; n];
        (scalar.xor_into)(&a, &b, &mut want);
        for k in non_scalar_backends() {
            let mut got = vec![0u64; n];
            (k.xor_into)(&a, &b, &mut got);
            prop_assert_eq!(&got, &want, "xor_into: {}", k.name);
            let mut got_assign = a.clone();
            (k.xor_assign)(&mut got_assign, &b);
            prop_assert_eq!(&got_assign, &want, "xor_assign: {}", k.name);
        }
    }

    #[test]
    fn popcount_and_hamming_match_scalar(n in word_lens(), seed in any::<u64>()) {
        let scalar = kernel::scalar();
        let mut rng = HvRng::from_seed(seed);
        let a = words(&mut rng, n);
        let b = words(&mut rng, n);
        for k in non_scalar_backends() {
            prop_assert_eq!((k.popcount)(&a), (scalar.popcount)(&a), "popcount: {}", k.name);
            prop_assert_eq!((k.hamming)(&a, &b), (scalar.hamming)(&a, &b), "hamming: {}", k.name);
        }
    }

    #[test]
    fn ripple_step_matches_scalar(n in word_lens(), seed in any::<u64>()) {
        let scalar = kernel::scalar();
        let mut rng = HvRng::from_seed(seed);
        let plane = words(&mut rng, n);
        let carry = words(&mut rng, n);
        let mut want_plane = plane.clone();
        let mut want_carry = carry.clone();
        let want_live = (scalar.ripple_step)(&mut want_plane, &mut want_carry);
        for k in non_scalar_backends() {
            let mut got_plane = plane.clone();
            let mut got_carry = carry.clone();
            let got_live = (k.ripple_step)(&mut got_plane, &mut got_carry);
            prop_assert_eq!(&got_plane, &want_plane, "ripple plane: {}", k.name);
            prop_assert_eq!(&got_carry, &want_carry, "ripple carry: {}", k.name);
            prop_assert_eq!(got_live, want_live, "ripple live flag: {}", k.name);
        }
    }

    #[test]
    fn threshold_step_matches_scalar(n in word_lens(), t_bit in any::<bool>(), seed in any::<u64>()) {
        let scalar = kernel::scalar();
        let mut rng = HvRng::from_seed(seed);
        let plane = words(&mut rng, n);
        let gt0 = words(&mut rng, n);
        let eq0 = words(&mut rng, n);
        let mut want_gt = gt0.clone();
        let mut want_eq = eq0.clone();
        (scalar.threshold_step)(&plane, t_bit, &mut want_gt, &mut want_eq);
        for k in non_scalar_backends() {
            let mut got_gt = gt0.clone();
            let mut got_eq = eq0.clone();
            (k.threshold_step)(&plane, t_bit, &mut got_gt, &mut got_eq);
            prop_assert_eq!(&got_gt, &want_gt, "threshold gt: {}", k.name);
            prop_assert_eq!(&got_eq, &want_eq, "threshold eq: {}", k.name);
        }
    }

    #[test]
    fn hamming_rows_matches_scalar(
        len in 1usize..=64,
        n_rows in 1usize..=12,
        seed in any::<u64>(),
    ) {
        let scalar = kernel::scalar();
        let mut rng = HvRng::from_seed(seed);
        let q = words(&mut rng, len);
        let rows = words(&mut rng, len * n_rows);
        // Non-zero starting distances check the += accumulation contract.
        let dist0: Vec<u32> = (0..n_rows).map(|r| r as u32 * 3).collect();
        let mut want = dist0.clone();
        (scalar.hamming_rows)(&q, &rows, &mut want);
        for k in non_scalar_backends() {
            let mut got = dist0.clone();
            (k.hamming_rows)(&q, &rows, &mut got);
            prop_assert_eq!(&got, &want, "hamming_rows: {}", k.name);
        }
    }

    #[test]
    fn hamming_rows_stride_matches_scalar(
        len in 1usize..=48,
        extra in 0usize..=16,
        n_rows in 1usize..=12,
        seed in any::<u64>(),
    ) {
        // The strided scan reads a `len`-word prefix of each
        // `stride`-word row — the pruned top-k coarse pass.
        let scalar = kernel::scalar();
        let mut rng = HvRng::from_seed(seed);
        let stride = len + extra;
        let q = words(&mut rng, len);
        let rows = words(&mut rng, stride * n_rows);
        let dist0: Vec<u32> = (0..n_rows).map(|r| r as u32 * 5).collect();
        let mut want = dist0.clone();
        (scalar.hamming_rows_stride)(&q, &rows, stride, &mut want);
        for k in non_scalar_backends() {
            let mut got = dist0.clone();
            (k.hamming_rows_stride)(&q, &rows, stride, &mut got);
            prop_assert_eq!(&got, &want, "hamming_rows_stride: {}", k.name);
        }
        // Full-width stride degenerates to the contiguous row scan.
        let mut contiguous = dist0.clone();
        (scalar.hamming_rows)(&q, &rows[..len * n_rows], &mut contiguous);
        let mut strided = dist0.clone();
        (scalar.hamming_rows_stride)(&q, &rows[..len * n_rows], len, &mut strided);
        prop_assert_eq!(&strided, &contiguous);
    }

    #[test]
    fn dot_i32_matches_scalar(n in 0usize..=80, seed in any::<u64>()) {
        // Full-range i32 values: lane reassociation must agree even when
        // partial sums sit near the extremes. The range covers the
        // unrolled AVX2 accumulators (32 values per block), the single
        // vector tail, and the scalar tail.
        let scalar = kernel::scalar();
        let mut rng = HvRng::from_seed(seed);
        let a = ints(&mut rng, n);
        let b = ints(&mut rng, n);
        for k in non_scalar_backends() {
            prop_assert_eq!((k.dot_i32)(&a, &b), (scalar.dot_i32)(&a, &b), "dot_i32: {}", k.name);
        }
    }

    #[test]
    fn dot_rows_stride_matches_scalar(
        len in 1usize..=70,
        extra in 0usize..=16,
        n_rows in 1usize..=12,
        seed in any::<u64>(),
    ) {
        // The strided multi-row dot reads a `len`-value prefix of each
        // `stride`-value row — the blocked int batch/coarse scan. Full-
        // range i32 values exercise the widening accumulation; non-zero
        // starting dots check the += contract.
        let scalar = kernel::scalar();
        let mut rng = HvRng::from_seed(seed);
        let stride = len + extra;
        let q = ints(&mut rng, len);
        let rows = ints(&mut rng, stride * n_rows);
        let dots0: Vec<i64> = (0..n_rows).map(|r| r as i64 * 7 - 3).collect();
        let mut want = dots0.clone();
        (scalar.dot_rows_stride)(&q, &rows, stride, &mut want);
        for k in non_scalar_backends() {
            let mut got = dots0.clone();
            (k.dot_rows_stride)(&q, &rows, stride, &mut got);
            prop_assert_eq!(&got, &want, "dot_rows_stride: {}", k.name);
        }
        // Full-width stride agrees with the single-row dot kernel.
        let mut strided = vec![0i64; n_rows];
        (scalar.dot_rows_stride)(&q, &rows, stride, &mut strided);
        for r in 0..n_rows {
            let row = &rows[r * stride..r * stride + len];
            prop_assert_eq!(strided[r], (scalar.dot_i32)(&q, row), "row {}", r);
        }
    }

    #[test]
    fn dot_i16_rows_stride_matches_scalar(
        len in 1usize..=70,
        extra in 0usize..=16,
        n_rows in 1usize..=12,
        seed in any::<u64>(),
    ) {
        // The i16 kernel contract bounds inputs to [-32767, 32767]
        // (the vpmaddwd pairwise i32 sums must not overflow), so the
        // generator stays in that range — including both extremes.
        let scalar = kernel::scalar();
        let mut rng = HvRng::from_seed(seed);
        let stride = len + extra;
        let shorts = |rng: &mut HvRng, n: usize| -> Vec<i16> {
            (0..n)
                .map(|_| ((rng.next_u64() % 65535) as i64 - 32767) as i16)
                .collect()
        };
        let q = shorts(&mut rng, len);
        let rows = shorts(&mut rng, stride * n_rows);
        let dots0: Vec<i64> = (0..n_rows).map(|r| r as i64 * 11 - 5).collect();
        let mut want = dots0.clone();
        (scalar.dot_i16_rows_stride)(&q, &rows, stride, &mut want);
        for k in non_scalar_backends() {
            let mut got = dots0.clone();
            (k.dot_i16_rows_stride)(&q, &rows, stride, &mut got);
            prop_assert_eq!(&got, &want, "dot_i16_rows_stride: {}", k.name);
        }
        // The i16 dot equals the widened i32 dot of the same values —
        // the lossless-sidecar property the int batch path relies on.
        let qi: Vec<i32> = q.iter().map(|&v| i32::from(v)).collect();
        for r in 0..n_rows {
            let row: Vec<i32> = rows[r * stride..r * stride + len]
                .iter()
                .map(|&v| i32::from(v))
                .collect();
            prop_assert_eq!(
                want[r] - dots0[r],
                (scalar.dot_i32)(&qi, &row),
                "i16 vs widened i32, row {}", r
            );
        }
    }

    #[test]
    fn batch_binary_search_is_bit_identical_across_backends(
        dim in dims(),
        n_rows in 1usize..=9,
        n_queries in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let mut rng = HvRng::from_seed(seed);
        let rows: Vec<BinaryHv> = (0..n_rows).map(|_| rng.binary_hv(dim)).collect();
        let mem = ShardedClassMemory::from_rows(&rows).unwrap();
        let queries: Vec<BinaryHv> = (0..n_queries).map(|_| rng.binary_hv(dim)).collect();
        let refs: Vec<&BinaryHv> = queries.iter().collect();
        let want = mem.search_batch_binary_with(kernel::scalar(), &refs).unwrap();
        for k in non_scalar_backends() {
            let got = mem.search_batch_binary_with(k, &refs).unwrap();
            prop_assert_eq!(got.best_rows(), want.best_rows(), "argmax: {}", k.name);
            for q in 0..n_queries {
                for (r, (g, w)) in got.scores(q).iter().zip(want.scores(q)).enumerate() {
                    prop_assert_eq!(
                        g.to_bits(), w.to_bits(),
                        "binary score bits: {} q {} row {}", k.name, q, r
                    );
                }
            }
        }
    }

    #[test]
    fn batch_int_search_is_bit_identical_across_backends(
        dim in dims(),
        n_rows in 1usize..=7,
        n_queries in 1usize..=6,
        seed in any::<u64>(),
    ) {
        let mut rng = HvRng::from_seed(seed);
        let bins: Vec<BinaryHv> = (0..n_rows).map(|_| rng.binary_hv(dim)).collect();
        let ints_rows: Vec<IntHv> = bins
            .iter()
            .map(|b| {
                let mut acc = b.to_int();
                acc.add_binary(&rng.binary_hv(dim));
                acc
            })
            .collect();
        let mut mem = ShardedClassMemory::from_rows(&bins).unwrap();
        mem.set_int_rows(&ints_rows).unwrap();
        let queries: Vec<IntHv> = (0..n_queries)
            .map(|_| rng.binary_hv(dim).to_int())
            .collect();
        let refs: Vec<&IntHv> = queries.iter().collect();
        let want = mem.search_batch_int_with(kernel::scalar(), &refs).unwrap();
        for k in non_scalar_backends() {
            let got = mem.search_batch_int_with(k, &refs).unwrap();
            prop_assert_eq!(got.best_rows(), want.best_rows(), "int argmax: {}", k.name);
            for q in 0..n_queries {
                for (r, (g, w)) in got.scores(q).iter().zip(want.scores(q)).enumerate() {
                    prop_assert_eq!(
                        g.to_bits(), w.to_bits(),
                        "int score bits: {} q {} row {}", k.name, q, r
                    );
                }
            }
        }
    }

    #[test]
    fn ties_resolve_to_lowest_index_on_every_backend(
        dim in dims(),
        n_queries in 1usize..=5,
        seed in any::<u64>(),
    ) {
        // Duplicated rows tie on every query; all backends must keep the
        // scalar scan's lowest-index winner.
        let mut rng = HvRng::from_seed(seed);
        let base = rng.binary_hv(dim);
        let rows = vec![base.clone(), base.clone(), base];
        let mem = ShardedClassMemory::from_rows(&rows).unwrap();
        let queries: Vec<BinaryHv> = (0..n_queries).map(|_| rng.binary_hv(dim)).collect();
        let refs: Vec<&BinaryHv> = queries.iter().collect();
        for k in kernel::available() {
            let got = mem.search_batch_binary_with(k, &refs).unwrap();
            for q in 0..n_queries {
                prop_assert_eq!(got.best(q), 0, "tie order: {} q {}", k.name, q);
            }
        }
    }
}

/// The paper-scale dimension from the acceptance criteria, pinned
/// explicitly (proptest only samples it).
#[test]
fn paper_scale_batch_search_matches_scalar_exactly() {
    for dim in [130usize, 10_000] {
        let mut rng = HvRng::from_seed(2022);
        let rows: Vec<BinaryHv> = (0..16).map(|_| rng.binary_hv(dim)).collect();
        let mem = ShardedClassMemory::from_rows(&rows).unwrap();
        let queries: Vec<BinaryHv> = (0..32).map(|_| rng.binary_hv(dim)).collect();
        let refs: Vec<&BinaryHv> = queries.iter().collect();
        let want = mem
            .search_batch_binary_with(kernel::scalar(), &refs)
            .unwrap();
        for k in kernel::available() {
            let got = mem.search_batch_binary_with(k, &refs).unwrap();
            assert_eq!(got, want, "backend {} diverged at D = {dim}", k.name);
        }
    }
}

/// The active (default-dispatched) backend is one of the available set
/// and drives the public search entry points to the same answers as the
/// scalar reference.
#[test]
fn active_backend_matches_scalar_through_public_api() {
    let dim = 1030;
    let mut rng = HvRng::from_seed(7);
    let rows: Vec<BinaryHv> = (0..8).map(|_| rng.binary_hv(dim)).collect();
    let mem = ShardedClassMemory::from_rows(&rows).unwrap();
    let queries: Vec<BinaryHv> = (0..16).map(|_| rng.binary_hv(dim)).collect();
    let refs: Vec<&BinaryHv> = queries.iter().collect();
    let via_active = mem.search_batch_binary(&refs).unwrap();
    let via_scalar = mem
        .search_batch_binary_with(kernel::scalar(), &refs)
        .unwrap();
    assert_eq!(via_active, via_scalar);
    assert!(kernel::available().iter().any(|k| k.name == kernel::name()));
}
