//! General permutations of hypervector dimensions.
//!
//! The HDC permutation operator `ρ` is usually a circular rotation (which
//! [`crate::BinaryHv::rotated`] implements directly on packed words), but
//! HDLock's design space also admits arbitrary dimension permutations.
//! [`Permutation`] is the table-based general form with the group
//! operations needed to reason about composed keys.

use serde::{Deserialize, Serialize};

use crate::binary::BinaryHv;
use crate::error::HvError;
use crate::rng::HvRng;

/// A bijection on `{0, …, D−1}` applied to hypervector dimensions.
///
/// Applying a permutation `π` produces `out[i] = in[π(i)]`; with
/// `Permutation::rotation(d, k)` this matches `ρ_k` (`out[i] = in[(i+k) % d]`).
///
/// # Examples
///
/// ```
/// use hypervec::{HvRng, Permutation};
///
/// let mut rng = HvRng::from_seed(3);
/// let hv = rng.binary_hv(256);
/// let rot = Permutation::rotation(256, 17);
/// assert_eq!(rot.apply(&hv), hv.rotated(17));
/// assert_eq!(rot.inverse().apply(&rot.apply(&hv)), hv);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Permutation {
    /// `table[i]` is the source index for destination `i`.
    table: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `dim` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn identity(dim: usize) -> Self {
        assert!(dim > 0, "permutation dimension must be positive");
        Permutation {
            table: (0..dim).collect(),
        }
    }

    /// The circular left rotation by `k`: `out[i] = in[(i + k) mod dim]`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn rotation(dim: usize, k: usize) -> Self {
        assert!(dim > 0, "permutation dimension must be positive");
        Permutation {
            table: (0..dim).map(|i| (i + k) % dim).collect(),
        }
    }

    /// A uniformly random permutation.
    #[must_use]
    pub fn random(rng: &mut HvRng, dim: usize) -> Self {
        Permutation {
            table: rng.shuffled_indices(dim),
        }
    }

    /// Validates and wraps an explicit source-index table.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyInput`] for an empty table, or
    /// [`HvError::IndexOutOfRange`] if the table is not a bijection on
    /// `0..len`.
    pub fn from_table(table: Vec<usize>) -> Result<Self, HvError> {
        if table.is_empty() {
            return Err(HvError::EmptyInput);
        }
        let n = table.len();
        let mut seen = vec![false; n];
        for &t in &table {
            if t >= n || seen[t] {
                return Err(HvError::IndexOutOfRange { index: t, len: n });
            }
            seen[t] = true;
        }
        Ok(Permutation { table })
    }

    /// Number of dimensions.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.table.len()
    }

    /// Applies the permutation to a hypervector.
    ///
    /// # Panics
    ///
    /// Panics if `hv.dim() != self.dim()`.
    #[must_use]
    pub fn apply(&self, hv: &BinaryHv) -> BinaryHv {
        assert_eq!(hv.dim(), self.dim(), "dimension mismatch in permutation");
        BinaryHv::from_fn(self.dim(), |i| hv.polarity(self.table[i]) < 0)
    }

    /// The inverse permutation.
    #[must_use]
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0usize; self.table.len()];
        for (dst, &src) in self.table.iter().enumerate() {
            inv[src] = dst;
        }
        Permutation { table: inv }
    }

    /// Composition `self ∘ other`: applying the result equals applying
    /// `other` first, then `self`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn compose(&self, other: &Self) -> Self {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in composition");
        Permutation {
            table: self.table.iter().map(|&i| other.table[i]).collect(),
        }
    }

    /// Source index feeding destination `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[must_use]
    pub fn source_of(&self, i: usize) -> usize {
        self.table[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let mut rng = HvRng::from_seed(1);
        let hv = rng.binary_hv(100);
        assert_eq!(Permutation::identity(100).apply(&hv), hv);
    }

    #[test]
    fn rotation_matches_packed_rotate() {
        let mut rng = HvRng::from_seed(2);
        let hv = rng.binary_hv(130);
        for k in [0, 1, 63, 64, 65, 129] {
            assert_eq!(
                Permutation::rotation(130, k).apply(&hv),
                hv.rotated(k),
                "k={k}"
            );
        }
    }

    #[test]
    fn inverse_undoes_apply() {
        let mut rng = HvRng::from_seed(3);
        let p = Permutation::random(&mut rng, 200);
        let hv = rng.binary_hv(200);
        assert_eq!(p.inverse().apply(&p.apply(&hv)), hv);
    }

    #[test]
    fn compose_order() {
        let mut rng = HvRng::from_seed(4);
        let p = Permutation::random(&mut rng, 64);
        let q = Permutation::random(&mut rng, 64);
        let hv = rng.binary_hv(64);
        // compose(p, q) applies q then p
        assert_eq!(p.compose(&q).apply(&hv), p.apply(&q.apply(&hv)));
    }

    #[test]
    fn rotations_form_a_group() {
        let a = Permutation::rotation(97, 30);
        let b = Permutation::rotation(97, 80);
        assert_eq!(a.compose(&b), Permutation::rotation(97, 110 % 97));
        assert_eq!(a.inverse(), Permutation::rotation(97, 97 - 30));
    }

    #[test]
    fn from_table_rejects_non_bijections() {
        assert!(Permutation::from_table(vec![]).is_err());
        assert!(Permutation::from_table(vec![0, 0]).is_err());
        assert!(Permutation::from_table(vec![0, 2]).is_err());
        assert!(Permutation::from_table(vec![1, 0, 2]).is_ok());
    }

    #[test]
    fn source_of_reports_table() {
        let p = Permutation::rotation(10, 3);
        assert_eq!(p.source_of(0), 3);
        assert_eq!(p.source_of(9), 2);
    }
}
