//! Integer (non-binary) hypervectors.
//!
//! An [`IntHv`] holds one `i32` per dimension. It is the carrier for
//! *non-binary* HDC encodings (paper Eq. 2), for class accumulators
//! during training (Eq. 4), and for intermediate attack quantities such
//! as `ValHV_1 − ValHV_M` (Eq. 13).

use serde::{Deserialize, Serialize};

use crate::binary::BinaryHv;
use crate::kernel;
use crate::rng::HvRng;

/// An integer hypervector in `Z^D`.
///
/// # Examples
///
/// ```
/// use hypervec::{BinaryHv, IntHv};
///
/// let a = BinaryHv::ones(8);
/// let mut acc = IntHv::zeros(8);
/// acc.add_binary(&a);
/// acc.add_binary(&a);
/// assert_eq!(acc.get(0), 2);
/// let signed = acc.sign_ties_positive();
/// assert_eq!(signed, a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IntHv {
    values: Vec<i32>,
}

impl IntHv {
    /// The all-zero integer hypervector.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn zeros(dim: usize) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        IntHv {
            values: vec![0; dim],
        }
    }

    /// Builds a hypervector whose `i`-th entry is `f(i)`.
    #[must_use]
    pub fn from_fn(dim: usize, f: impl FnMut(usize) -> i32) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        IntHv {
            values: (0..dim).map(f).collect(),
        }
    }

    /// Takes ownership of a value vector.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn from_values(values: Vec<i32>) -> Self {
        assert!(!values.is_empty(), "hypervector dimension must be positive");
        IntHv { values }
    }

    /// Widens bit-sliced bundle counters into bipolar sums: a bundle of
    /// `total` vectors of which `neg_counts[d]` were −1 at dimension `d`
    /// sums to `total − 2·neg_counts[d]` there.
    ///
    /// This is the bridge from
    /// [`BitSliceAccumulator`](crate::BitSliceAccumulator) back to the
    /// integer representation.
    ///
    /// # Panics
    ///
    /// Panics if `neg_counts` is empty or any count exceeds `total`.
    #[must_use]
    pub fn from_bundle_counts(total: usize, neg_counts: &[u32]) -> Self {
        assert!(
            !neg_counts.is_empty(),
            "hypervector dimension must be positive"
        );
        let total = i64::try_from(total).expect("bundle count fits i64");
        IntHv {
            values: neg_counts
                .iter()
                .map(|&c| {
                    let c = i64::from(c);
                    assert!(
                        c <= total,
                        "negative count {c} exceeds bundle total {total}"
                    );
                    i32::try_from(total - 2 * c).expect("bundle sum fits i32")
                })
                .collect(),
        }
    }

    /// Dimensionality `D`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// The value at dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> i32 {
        self.values[i]
    }

    /// Borrows all values.
    #[must_use]
    pub fn values(&self) -> &[i32] {
        &self.values
    }

    /// Adds a bipolar hypervector (entries ±1) into this accumulator.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add_binary(&mut self, hv: &BinaryHv) {
        self.add_binary_scaled(hv, 1);
    }

    /// Subtracts a bipolar hypervector from this accumulator.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn sub_binary(&mut self, hv: &BinaryHv) {
        self.add_binary_scaled(hv, -1);
    }

    /// Adds `weight × hv` (used by retraining with a learning rate).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add_binary_scaled(&mut self, hv: &BinaryHv, weight: i32) {
        assert_eq!(self.dim(), hv.dim(), "dimension mismatch in accumulate");
        let words = hv.bits().words();
        for (chunk_idx, chunk) in self.values.chunks_mut(64).enumerate() {
            let word = words[chunk_idx];
            for (bit, v) in chunk.iter_mut().enumerate() {
                // set bit ⇔ −1
                let sign = 1 - 2 * ((word >> bit) & 1) as i32;
                *v += weight * sign;
            }
        }
    }

    /// Adds the elementwise product `a × b` of two bipolar hypervectors
    /// into this accumulator without materializing the bound vector.
    ///
    /// This is the hot loop of record-based encoding
    /// (`Σ ValHV_{f_i} × FeaHV_i`, paper Eq. 2): one XOR per word plus an
    /// unpack, instead of an allocation per feature.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add_bound_pair(&mut self, a: &BinaryHv, b: &BinaryHv) {
        assert_eq!(self.dim(), a.dim(), "dimension mismatch in accumulate");
        assert_eq!(self.dim(), b.dim(), "dimension mismatch in accumulate");
        let wa = a.bits().words();
        let wb = b.bits().words();
        for (chunk_idx, chunk) in self.values.chunks_mut(64).enumerate() {
            let word = wa[chunk_idx] ^ wb[chunk_idx];
            for (bit, v) in chunk.iter_mut().enumerate() {
                let sign = 1 - 2 * ((word >> bit) & 1) as i32;
                *v += sign;
            }
        }
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add_assign_int(&mut self, other: &IntHv) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in add");
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn sub_assign_int(&mut self, other: &IntHv) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in sub");
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a -= b;
        }
    }

    /// Elementwise product with a bipolar vector: flips the sign of each
    /// dimension where `hv` is −1. This is the `ValHV × FeaHV` binding of
    /// the non-binary encoder.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn bind_binary(&self, hv: &BinaryHv) -> IntHv {
        assert_eq!(self.dim(), hv.dim(), "dimension mismatch in bind");
        IntHv::from_fn(self.dim(), |i| self.values[i] * i32::from(hv.polarity(i)))
    }

    /// Dot product (runs on the active [`kernel`] backend; exact for
    /// every backend because the sum is integral).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn dot(&self, other: &IntHv) -> i64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in dot");
        (kernel::active().dot_i32)(&self.values, &other.values)
    }

    /// Euclidean norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        (self.dot(self) as f64).sqrt()
    }

    /// Cosine similarity in `[−1, 1]`; the paper's non-binary similarity
    /// metric. Returns 0.0 if either vector is all-zero.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn cosine(&self, other: &IntHv) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) as f64 / denom
        }
    }

    /// Binarizes with `sign(·)`, breaking `sign(0)` ties with a seeded
    /// coin flip exactly as the paper prescribes (Eq. 3).
    #[must_use]
    pub fn sign_with(&self, rng: &mut HvRng) -> BinaryHv {
        BinaryHv::from_fn(self.dim(), |i| match self.values[i].signum() {
            1 => false,
            -1 => true,
            _ => rng.coin(),
        })
    }

    /// Binarizes with `sign(·)`, mapping zeros to +1 deterministically.
    ///
    /// This variant exists as an ablation of the random tie-break; for
    /// odd accumulation counts the two are identical because a sum of an
    /// odd number of ±1 terms can never be zero.
    #[must_use]
    pub fn sign_ties_positive(&self) -> BinaryHv {
        BinaryHv::from_fn(self.dim(), |i| self.values[i] < 0)
    }

    /// Number of dimensions holding exactly zero (potential ties).
    #[must_use]
    pub fn count_zeros(&self) -> usize {
        self.values.iter().filter(|&&v| v == 0).count()
    }

    /// Indices where `self` and `other` differ — the index set `I` the
    /// HDLock attack evaluates its criterion on (paper Sec. 4.2).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn differing_indices(&self, other: &IntHv) -> Vec<usize> {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dimension mismatch in differing_indices"
        );
        (0..self.dim())
            .filter(|&i| self.values[i] != other.values[i])
            .collect()
    }
}

impl std::ops::Add for &IntHv {
    type Output = IntHv;

    fn add(self, rhs: &IntHv) -> IntHv {
        let mut out = self.clone();
        out.add_assign_int(rhs);
        out
    }
}

impl std::ops::Sub for &IntHv {
    type Output = IntHv;

    fn sub(self, rhs: &IntHv) -> IntHv {
        let mut out = self.clone();
        out.sub_assign_int(rhs);
        out
    }
}

impl std::ops::Neg for &IntHv {
    type Output = IntHv;

    fn neg(self) -> IntHv {
        IntHv::from_fn(self.dim(), |i| -self.values[i])
    }
}

impl std::fmt::Debug for IntHv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let head: Vec<i32> = self.values.iter().take(8).copied().collect();
        let ellipsis = if self.dim() > 8 { ", …" } else { "" };
        write!(f, "IntHv(D={}: {head:?}{ellipsis})", self.dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HvRng;

    #[test]
    fn zeros_is_zero() {
        let z = IntHv::zeros(10);
        assert_eq!(z.values(), &[0; 10]);
        assert_eq!(z.count_zeros(), 10);
    }

    #[test]
    fn add_binary_matches_polarities() {
        let mut rng = HvRng::from_seed(1);
        let hv = rng.binary_hv(200);
        let mut acc = IntHv::zeros(200);
        acc.add_binary(&hv);
        for i in 0..200 {
            assert_eq!(acc.get(i), i32::from(hv.polarity(i)), "dim {i}");
        }
    }

    #[test]
    fn add_then_sub_cancels() {
        let mut rng = HvRng::from_seed(2);
        let hv = rng.binary_hv(333);
        let mut acc = IntHv::zeros(333);
        acc.add_binary(&hv);
        acc.sub_binary(&hv);
        assert_eq!(acc, IntHv::zeros(333));
    }

    #[test]
    fn scaled_accumulate() {
        let mut rng = HvRng::from_seed(3);
        let hv = rng.binary_hv(64);
        let mut acc = IntHv::zeros(64);
        acc.add_binary_scaled(&hv, 5);
        for i in 0..64 {
            assert_eq!(acc.get(i), 5 * i32::from(hv.polarity(i)));
        }
    }

    #[test]
    fn bind_binary_flips_signs() {
        let v = IntHv::from_fn(100, |i| i as i32);
        let mut rng = HvRng::from_seed(4);
        let hv = rng.binary_hv(100);
        let bound = v.bind_binary(&hv);
        for i in 0..100 {
            assert_eq!(bound.get(i), v.get(i) * i32::from(hv.polarity(i)));
        }
        // binding twice restores the original
        assert_eq!(bound.bind_binary(&hv), v);
    }

    #[test]
    fn from_bundle_counts_recovers_sums() {
        // 5 vectors; dimension d saw `d % 6` negatives.
        let counts: Vec<u32> = (0..12).map(|d| (d % 6) as u32).collect();
        let v = IntHv::from_bundle_counts(5, &counts);
        for d in 0..12 {
            assert_eq!(v.get(d), 5 - 2 * (d as i32 % 6));
        }
    }

    #[test]
    fn add_bound_pair_matches_explicit_bind() {
        let mut rng = HvRng::from_seed(21);
        let a = rng.binary_hv(300);
        let b = rng.binary_hv(300);
        let mut fused = IntHv::zeros(300);
        fused.add_bound_pair(&a, &b);
        let mut explicit = IntHv::zeros(300);
        explicit.add_binary(&a.bind(&b));
        assert_eq!(fused, explicit);
    }

    #[test]
    fn sign_of_positive_matches() {
        let v = IntHv::from_fn(50, |i| if i % 2 == 0 { 3 } else { -7 });
        let s = v.sign_ties_positive();
        for i in 0..50 {
            assert_eq!(i32::from(s.polarity(i)), if i % 2 == 0 { 1 } else { -1 });
        }
    }

    #[test]
    fn sign_random_ties_only_touch_zeros() {
        let v = IntHv::from_fn(100, |i| (i as i32 % 3) - 1); // −1, 0, 1 pattern
        let mut rng = HvRng::from_seed(5);
        let s = v.sign_with(&mut rng);
        for i in 0..100 {
            match v.get(i).signum() {
                1 => assert_eq!(s.polarity(i), 1),
                -1 => assert_eq!(s.polarity(i), -1),
                _ => {} // free
            }
        }
    }

    #[test]
    fn cosine_of_self_is_one() {
        let v = IntHv::from_fn(128, |i| (i as i32 % 5) - 2);
        assert!((v.cosine(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_opposite_is_minus_one() {
        let v = IntHv::from_fn(128, |i| (i as i32 % 7) - 3);
        let n = -&v;
        assert!((v.cosine(&n) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        let z = IntHv::zeros(16);
        let v = IntHv::from_fn(16, |i| i as i32 + 1);
        assert_eq!(z.cosine(&v), 0.0);
    }

    #[test]
    fn differing_indices_found() {
        let a = IntHv::from_fn(10, |i| i as i32);
        let mut b = a.clone();
        b.add_assign_int(&IntHv::from_fn(10, |i| i32::from(i == 3 || i == 7)));
        assert_eq!(a.differing_indices(&b), vec![3, 7]);
    }

    #[test]
    fn add_sub_operators() {
        let a = IntHv::from_fn(8, |i| i as i32);
        let b = IntHv::from_fn(8, |_| 2);
        assert_eq!((&a + &b).get(3), 5);
        assert_eq!((&a - &b).get(3), 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_mismatch_panics() {
        let a = IntHv::zeros(4);
        let b = IntHv::zeros(5);
        let _ = a.dot(&b);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", IntHv::zeros(3)).is_empty());
    }
}
