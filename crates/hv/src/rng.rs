//! Deterministic random source for reproducible hypervector experiments.
//!
//! Every stochastic choice in the workspace (hypervector generation,
//! `sign(0)` tie-breaking, key sampling, dataset synthesis) flows through
//! an [`HvRng`] so any experiment can be replayed bit-for-bit from a seed.
//!
//! The generator is a self-contained xoshiro256++ seeded through
//! splitmix64 — no external crates, so the stream is stable across
//! toolchains and the workspace builds fully offline.

use crate::bitvec::BitWords;
use crate::BinaryHv;

/// Seedable random source used throughout the HDLock reproduction.
///
/// # Examples
///
/// ```
/// use hypervec::HvRng;
///
/// let mut a = HvRng::from_seed(42);
/// let mut b = HvRng::from_seed(42);
/// assert_eq!(a.binary_hv(256), b.binary_hv(256));
/// ```
#[derive(Debug, Clone)]
pub struct HvRng {
    state: [u64; 4],
}

impl HvRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        // Expand the seed through splitmix64, as the xoshiro authors
        // recommend, so nearby seeds give unrelated streams.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        HvRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent substream.
    ///
    /// Forked streams let one logical seed drive several components
    /// (datasets, keys, tie-breaks) without their draws interleaving, so
    /// adding draws to one component does not perturb the others.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> Self {
        let base = self.next_u64();
        HvRng::from_seed(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit draw (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let s3b = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3b;
        s2 ^= t;
        self.state = [s0, s1, s2, s3b.rotate_left(45)];
        result
    }

    /// Next raw 32-bit draw.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Samples a uniformly random bipolar hypervector of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn binary_hv(&mut self, dim: usize) -> BinaryHv {
        let words = (0..dim.div_ceil(64)).map(|_| self.next_u64()).collect();
        BinaryHv::from_bits(BitWords::from_words(words, dim))
    }

    /// Samples `count` independent random hypervectors.
    ///
    /// Independent random hypervectors in high dimension are
    /// quasi-orthogonal: their pairwise normalized Hamming distance
    /// concentrates around 0.5 (paper Eq. 1a), which is exactly the
    /// property feature hypervectors and HDLock base pools rely on.
    #[must_use]
    pub fn orthogonal_pool(&mut self, dim: usize, count: usize) -> Vec<BinaryHv> {
        (0..count).map(|_| self.binary_hv(dim)).collect()
    }

    /// Samples a uniform integer in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[must_use]
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        // Lemire's unbiased multiply-shift rejection sampling.
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound && low < bound.wrapping_neg() {
                // Fast path once the draw is clearly unbiased.
                return (m >> 64) as usize;
            }
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    #[must_use]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a standard normal via Box–Muller.
    #[must_use]
    pub fn normal(&mut self) -> f64 {
        // u1 in (0, 1] so the logarithm is finite.
        let u1 = ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = self.unit_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns a random boolean (used for `sign(0)` tie-breaking).
    #[must_use]
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Returns `0..n` in a uniformly random order (Fisher–Yates).
    #[must_use]
    pub fn shuffled_indices(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.index(i + 1);
            v.swap(i, j);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = HvRng::from_seed(7);
        let mut b = HvRng::from_seed(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HvRng::from_seed(1);
        let mut b = HvRng::from_seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forked_streams_are_deterministic() {
        let mut root1 = HvRng::from_seed(99);
        let mut root2 = HvRng::from_seed(99);
        let mut f1 = root1.fork(3);
        let mut f2 = root2.fork(3);
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn random_hv_is_roughly_balanced() {
        let mut rng = HvRng::from_seed(5);
        let hv = rng.binary_hv(10_000);
        let ones = hv.count_negative();
        // Binomial(10000, 0.5): 5 sigma is 250.
        assert!((4750..=5250).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn pool_is_quasi_orthogonal() {
        let mut rng = HvRng::from_seed(11);
        let pool = rng.orthogonal_pool(10_000, 4);
        for i in 0..pool.len() {
            for j in (i + 1)..pool.len() {
                let d = pool[i].normalized_hamming(&pool[j]);
                assert!((d - 0.5).abs() < 0.03, "pair ({i},{j}) distance {d}");
            }
        }
    }

    #[test]
    fn index_stays_in_bounds_and_covers() {
        let mut rng = HvRng::from_seed(23);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.index(7)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear: {seen:?}"
        );
    }

    #[test]
    fn shuffled_indices_is_a_permutation() {
        let mut rng = HvRng::from_seed(13);
        let mut p = rng.shuffled_indices(100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = HvRng::from_seed(17);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = HvRng::from_seed(29);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // 13 zero bytes has probability 2^-104; any nonzero byte passes.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
