//! Unified SIMD kernel backend layer with runtime dispatch.
//!
//! Every hot bit-kernel in this crate — XOR-accumulate, popcount
//! reduction, the bit-sliced ripple-carry increment, the word-parallel
//! majority/threshold comparison, the Hamming-distance row scan of the
//! sharded search engine, and the integer dot product behind cosine
//! search — funnels through one [`Kernel`] dispatch table instead of
//! hand-written `u64` loops duplicated per call site. Three
//! interchangeable backends implement the table:
//!
//! * **`scalar`** — the original word-parallel `u64` code, extracted
//!   verbatim from the former per-file loops. This is the *reference*:
//!   every other backend must be bit-identical to it (enforced by
//!   `tests/kernel_equivalence.rs`).
//! * **`avx2`** — `std::arch` x86_64 intrinsics (256-bit XOR/AND, the
//!   vpshufb nibble-LUT popcount, widening 32→64-bit multiplies),
//!   compiled on every x86_64 build and installed only when
//!   `is_x86_feature_detected!("avx2")` says the CPU has it.
//! * **`portable`** — a `std::simd`-style chunked variant operating on
//!   `[u64; 4]` lanes in plain Rust, written so LLVM can autovectorize
//!   it for whatever vector ISA the target has. Always available.
//!
//! ## Dispatch rules
//!
//! The backend is selected **once**, at first use, into a process-wide
//! table ([`active`]): `avx2` when the CPU supports it, otherwise
//! `scalar`. The `HYPERVEC_KERNEL` environment variable overrides the
//! choice (`scalar`, `avx2`, or `portable`); naming a backend that is
//! unknown or not available on this machine **fails fast** with the
//! list of available backends rather than silently falling back, so a
//! CI matrix or an operator pinning a backend can trust what ran.
//!
//! ## Exactness contract
//!
//! All kernel arithmetic is integral (bit operations, popcounts, and
//! wrapping integer sums — integer addition commutes even modulo 2⁶⁴,
//! so lane-reassociated sums are *identical*, not merely close), and
//! every floating-point score downstream is derived from those integers
//! by the same expression. Backends are therefore interchangeable
//! bit-for-bit: scores, argmax winners and tie order never depend on
//! the backend.
//!
//! ## Adding a backend
//!
//! 1. Implement the function set as a new submodule and expose a
//!    `static KERNEL: Kernel`.
//! 2. Register it in [`available`] (with its detection guard) and in
//!    `by_name`.
//! 3. `tests/kernel_equivalence.rs` picks it up automatically via
//!    [`available`] — no new test code needed for bit-exactness.

mod portable;
mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

use std::sync::OnceLock;

/// Dispatch table of the primitive word-level operations the engine
/// needs. One instance per backend; selected once via [`active`].
///
/// The contract is equal slice lengths (this crate's wrappers assert
/// dimensions before dispatching). Mismatched lengths are always
/// memory-safe — every backend bounds its loops by the shortest slice
/// involved (or panics on a safe slice index) — but which elements get
/// processed is then backend-defined, so results across backends are
/// only guaranteed identical for equal-length inputs.
#[derive(Debug, Clone, Copy)]
pub struct Kernel {
    /// Backend name as reported by [`name`] and the serving layer.
    pub name: &'static str,
    /// `out[i] = a[i] ^ b[i]` (XOR-accumulate into a caller buffer).
    pub xor_into: fn(a: &[u64], b: &[u64], out: &mut [u64]),
    /// `a[i] ^= b[i]`.
    pub xor_assign: fn(a: &mut [u64], b: &[u64]),
    /// `Σ popcount(words[i])` — popcount reduction over packed planes.
    pub popcount: fn(words: &[u64]) -> u64,
    /// `Σ popcount(a[i] ^ b[i])` — fused XOR + popcount (Hamming).
    pub hamming: fn(a: &[u64], b: &[u64]) -> u64,
    /// One ripple-carry plane step of the bit-sliced accumulator:
    /// `carry_out = plane & carry; plane ^= carry; carry = carry_out`,
    /// returning whether any carry survives into the next plane.
    pub ripple_step: fn(plane: &mut [u64], carry: &mut [u64]) -> bool,
    /// One plane step of the word-parallel threshold comparison
    /// (most-significant plane first): with `t_bit` the threshold's bit
    /// at this plane, `gt |= eq & plane; eq &= !plane` when `t_bit` is
    /// 0, `eq &= plane` when it is 1.
    pub threshold_step: fn(plane: &[u64], t_bit: bool, gt: &mut [u64], eq: &mut [u64]),
    /// Hamming-distance row scan: `rows` holds `dist.len()` rows of
    /// `q_block.len()` words back to back; `dist[r] +=
    /// Σ popcount(q_block ^ rows[r])`. The batch-search hot loop.
    pub hamming_rows: fn(q_block: &[u64], rows: &[u64], dist: &mut [u32]),
    /// Strided variant of `hamming_rows` for the pruned top-k coarse
    /// pass: row `r` occupies `rows[r * stride ..]` but only its first
    /// `q_block.len()` words are scanned — a free word-prefix subsample
    /// of each block-major plane block. `stride == q_block.len()`
    /// degenerates to `hamming_rows`. Requires `stride >=
    /// q_block.len()`.
    pub hamming_rows_stride: fn(q_block: &[u64], rows: &[u64], stride: usize, dist: &mut [u32]),
    /// Wrapping `i64` dot product of two `i32` slices (cosine search).
    pub dot_i32: fn(a: &[i32], b: &[i32]) -> i64,
    /// Dot-product row scan, the integer twin of `hamming_rows_stride`:
    /// row `r` occupies `rows[r * stride ..]` and its first
    /// `q_block.len()` values are multiplied against the query block,
    /// accumulating `dots[r] += Σ q_block[i] · rows[r*stride + i]` with
    /// wrapping `i64` arithmetic (so any lane reassociation is exact).
    /// `stride == q_block.len()` scans contiguous rows. Requires
    /// `stride >= q_block.len()`.
    pub dot_rows_stride: fn(q_block: &[i32], rows: &[i32], stride: usize, dots: &mut [i64]),
    /// `i16` narrow variant of `dot_rows_stride` for rows whose values
    /// fit `[-32767, 32767]` (note: **not** −32768 — the AVX2 vpmaddwd
    /// pairwise i32 sums must not overflow). Used both by the lossless
    /// i16 sidecar fast path (exact when every value fits the range)
    /// and by the saturating quantized coarse pass of pruned int top-k.
    pub dot_i16_rows_stride: fn(q_block: &[i16], rows: &[i16], stride: usize, dots: &mut [i64]),
}

/// The selected process-wide kernel (see module docs for the rules).
///
/// # Panics
///
/// Panics on first use if `HYPERVEC_KERNEL` names an unknown or
/// unavailable backend — deliberately fail-fast, never a silent
/// fallback.
#[must_use]
pub fn active() -> &'static Kernel {
    static ACTIVE: OnceLock<&'static Kernel> = OnceLock::new();
    ACTIVE.get_or_init(
        || match select(std::env::var("HYPERVEC_KERNEL").ok().as_deref()) {
            Ok(k) => k,
            Err(msg) => panic!("{msg}"),
        },
    )
}

/// Name of the active backend (`"scalar"`, `"avx2"`, or `"portable"`).
#[must_use]
pub fn name() -> &'static str {
    active().name
}

/// Every backend available on this machine. `scalar` and `portable`
/// are always present; `avx2` leads the list when the CPU has it. The
/// *default dispatch* is avx2-else-scalar (see module docs), not
/// simply the first entry.
#[must_use]
pub fn available() -> Vec<&'static Kernel> {
    let mut out: Vec<&'static Kernel> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        out.push(&x86::KERNEL);
    }
    out.push(&portable::KERNEL);
    out.push(&scalar::KERNEL);
    out
}

/// Looks up an available backend by name (`None` when the name is
/// unknown or the backend cannot run on this machine).
#[must_use]
pub fn by_name(name: &str) -> Option<&'static Kernel> {
    available().into_iter().find(|k| k.name == name)
}

/// The scalar reference backend (always available; what every other
/// backend is tested bit-identical against).
#[must_use]
pub fn scalar() -> &'static Kernel {
    &scalar::KERNEL
}

/// Resolves an optional `HYPERVEC_KERNEL` override to a backend.
///
/// # Errors
///
/// Returns the fail-fast message (naming the available backends) when
/// the override is unknown or unavailable on this machine.
fn select(env_override: Option<&str>) -> Result<&'static Kernel, String> {
    // Documented default: avx2 when the CPU has it, otherwise the
    // scalar reference (portable stays opt-in until it is benchmarked
    // faster than scalar on a real non-AVX2 target).
    let fallback = || by_name("avx2").unwrap_or_else(scalar);
    match env_override.map(str::trim) {
        None | Some("") => Ok(fallback()),
        Some(requested) => {
            let requested = requested.to_ascii_lowercase();
            by_name(&requested).ok_or_else(|| {
                let names: Vec<&str> = available().iter().map(|k| k.name).collect();
                format!(
                    "HYPERVEC_KERNEL='{requested}' names an unknown or unavailable kernel \
                     backend; available on this machine: {}",
                    names.join(", ")
                )
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(available().iter().any(|k| k.name == "scalar"));
        assert!(available().iter().any(|k| k.name == "portable"));
        assert_eq!(scalar().name, "scalar");
    }

    #[test]
    fn select_default_is_avx2_or_scalar() {
        let want = if by_name("avx2").is_some() {
            "avx2"
        } else {
            "scalar"
        };
        assert_eq!(select(None).unwrap().name, want);
        assert_eq!(select(Some("  ")).unwrap().name, want);
    }

    #[test]
    fn select_honors_explicit_backends() {
        assert_eq!(select(Some("scalar")).unwrap().name, "scalar");
        assert_eq!(select(Some("portable")).unwrap().name, "portable");
        // Case- and whitespace-insensitive.
        assert_eq!(select(Some(" Scalar ")).unwrap().name, "scalar");
    }

    #[test]
    fn select_fails_fast_on_unknown_backend() {
        let err = select(Some("avx512")).unwrap_err();
        assert!(err.contains("avx512"), "{err}");
        assert!(err.contains("scalar"), "names available backends: {err}");
        assert!(err.contains("portable"), "names available backends: {err}");
    }

    #[test]
    fn active_runs_and_names_a_real_backend() {
        let k = active();
        assert!(available().iter().any(|a| a.name == k.name));
        assert_eq!(name(), k.name);
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("not-a-backend").is_none());
    }
}
