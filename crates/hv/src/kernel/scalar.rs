//! Scalar `u64` word-parallel backend — the reference implementation.
//!
//! These are the loops that used to live inline in `bitvec.rs`,
//! `bitslice.rs` and `search.rs`, extracted unchanged. Every other
//! backend must match them bit-for-bit.

use super::Kernel;

/// The scalar reference backend.
pub(super) static KERNEL: Kernel = Kernel {
    name: "scalar",
    xor_into,
    xor_assign,
    popcount,
    hamming,
    ripple_step,
    threshold_step,
    hamming_rows,
    hamming_rows_stride,
    dot_i32,
    dot_rows_stride,
    dot_i16_rows_stride,
};

fn xor_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    for (o, (x, y)) in out.iter_mut().zip(a.iter().zip(b)) {
        *o = x ^ y;
    }
}

fn xor_assign(a: &mut [u64], b: &[u64]) {
    for (x, y) in a.iter_mut().zip(b) {
        *x ^= y;
    }
}

fn popcount(words: &[u64]) -> u64 {
    words.iter().map(|w| u64::from(w.count_ones())).sum()
}

fn hamming(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| u64::from((x ^ y).count_ones()))
        .sum()
}

fn ripple_step(plane: &mut [u64], carry: &mut [u64]) -> bool {
    let mut live = false;
    for (pw, c) in plane.iter_mut().zip(carry.iter_mut()) {
        if *c == 0 {
            continue;
        }
        let carry_out = *pw & *c;
        *pw ^= *c;
        *c = carry_out;
        live |= carry_out != 0;
    }
    live
}

fn threshold_step(plane: &[u64], t_bit: bool, gt: &mut [u64], eq: &mut [u64]) {
    if t_bit {
        for (e, b) in eq.iter_mut().zip(plane) {
            *e &= b;
        }
    } else {
        for ((g, e), b) in gt.iter_mut().zip(eq.iter_mut()).zip(plane) {
            *g |= *e & b;
            *e &= !b;
        }
    }
}

fn hamming_rows(q_block: &[u64], rows: &[u64], dist: &mut [u32]) {
    let len = q_block.len();
    for (r, d) in dist.iter_mut().enumerate() {
        let row = &rows[r * len..(r + 1) * len];
        let mut acc = 0u32;
        for (a, w) in q_block.iter().zip(row) {
            acc += (a ^ w).count_ones();
        }
        *d += acc;
    }
}

fn hamming_rows_stride(q_block: &[u64], rows: &[u64], stride: usize, dist: &mut [u32]) {
    let len = q_block.len();
    for (r, d) in dist.iter_mut().enumerate() {
        let row = &rows[r * stride..r * stride + len];
        let mut acc = 0u32;
        for (a, w) in q_block.iter().zip(row) {
            acc += (a ^ w).count_ones();
        }
        *d += acc;
    }
}

fn dot_i32(a: &[i32], b: &[i32]) -> i64 {
    let mut dot = 0i64;
    for (&x, &y) in a.iter().zip(b) {
        dot = dot.wrapping_add(i64::from(x) * i64::from(y));
    }
    dot
}

fn dot_rows_stride(q_block: &[i32], rows: &[i32], stride: usize, dots: &mut [i64]) {
    let len = q_block.len();
    for (r, d) in dots.iter_mut().enumerate() {
        let row = &rows[r * stride..r * stride + len];
        let mut acc = 0i64;
        for (&a, &w) in q_block.iter().zip(row) {
            acc = acc.wrapping_add(i64::from(a) * i64::from(w));
        }
        *d = d.wrapping_add(acc);
    }
}

fn dot_i16_rows_stride(q_block: &[i16], rows: &[i16], stride: usize, dots: &mut [i64]) {
    let len = q_block.len();
    for (r, d) in dots.iter_mut().enumerate() {
        let row = &rows[r * stride..r * stride + len];
        let mut acc = 0i64;
        for (&a, &w) in q_block.iter().zip(row) {
            acc = acc.wrapping_add(i64::from(a) * i64::from(w));
        }
        *d = d.wrapping_add(acc);
    }
}
