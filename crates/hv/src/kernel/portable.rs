//! Portable chunked backend (`std::simd`-style, in stable Rust).
//!
//! `std::simd` is still nightly-only, so this backend expresses the
//! same shape — fixed-width lanes, straight-line lane arithmetic, a
//! scalar tail — on plain `[u64; LANES]` arrays. The loops are written
//! so LLVM's autovectorizer can map each lane block onto whatever
//! vector ISA the target offers (SSE2, NEON, RVV, …), giving a fast
//! path on machines where the hand-written AVX2 backend does not apply.
//!
//! Bit-exactness with the scalar reference is structural: every
//! operation is integral and lane reassociation of wrapping integer
//! sums is exact (see the module docs in [`super`]).

use super::Kernel;

/// Words processed per unrolled lane block.
const LANES: usize = 4;

/// The portable chunked backend.
pub(super) static KERNEL: Kernel = Kernel {
    name: "portable",
    xor_into,
    xor_assign,
    popcount,
    hamming,
    ripple_step,
    threshold_step,
    hamming_rows,
    hamming_rows_stride,
    dot_i32,
    dot_rows_stride,
    dot_i16_rows_stride,
};

fn xor_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    let n = out.len();
    let (a_blocks, a_tail) = a[..n].split_at(n - n % LANES);
    let (b_blocks, b_tail) = b[..n].split_at(a_blocks.len());
    let (o_blocks, o_tail) = out.split_at_mut(a_blocks.len());
    for ((o, x), y) in o_blocks
        .chunks_exact_mut(LANES)
        .zip(a_blocks.chunks_exact(LANES))
        .zip(b_blocks.chunks_exact(LANES))
    {
        for l in 0..LANES {
            o[l] = x[l] ^ y[l];
        }
    }
    for ((o, x), y) in o_tail.iter_mut().zip(a_tail).zip(b_tail) {
        *o = x ^ y;
    }
}

fn xor_assign(a: &mut [u64], b: &[u64]) {
    let n = a.len();
    let (a_blocks, a_tail) = a.split_at_mut(n - n % LANES);
    let (b_blocks, b_tail) = b[..n].split_at(a_blocks.len());
    for (x, y) in a_blocks
        .chunks_exact_mut(LANES)
        .zip(b_blocks.chunks_exact(LANES))
    {
        for l in 0..LANES {
            x[l] ^= y[l];
        }
    }
    for (x, y) in a_tail.iter_mut().zip(b_tail) {
        *x ^= y;
    }
}

fn popcount(words: &[u64]) -> u64 {
    let mut lanes = [0u64; LANES];
    let blocks = words.chunks_exact(LANES);
    let tail = blocks.remainder();
    for block in blocks {
        for l in 0..LANES {
            lanes[l] += u64::from(block[l].count_ones());
        }
    }
    let mut sum: u64 = lanes.iter().sum();
    for w in tail {
        sum += u64::from(w.count_ones());
    }
    sum
}

fn hamming(a: &[u64], b: &[u64]) -> u64 {
    let n = a.len().min(b.len());
    let mut lanes = [0u64; LANES];
    let a_blocks = a[..n].chunks_exact(LANES);
    let b_blocks = b[..n].chunks_exact(LANES);
    let a_tail = a_blocks.remainder();
    let b_tail = b_blocks.remainder();
    for (x, y) in a_blocks.zip(b_blocks) {
        for l in 0..LANES {
            lanes[l] += u64::from((x[l] ^ y[l]).count_ones());
        }
    }
    let mut sum: u64 = lanes.iter().sum();
    for (x, y) in a_tail.iter().zip(b_tail) {
        sum += u64::from((x ^ y).count_ones());
    }
    sum
}

fn ripple_step(plane: &mut [u64], carry: &mut [u64]) -> bool {
    let n = plane.len();
    let (p_blocks, p_tail) = plane.split_at_mut(n - n % LANES);
    let (c_blocks, c_tail) = carry[..n].split_at_mut(p_blocks.len());
    let mut any = 0u64;
    for (p, c) in p_blocks
        .chunks_exact_mut(LANES)
        .zip(c_blocks.chunks_exact_mut(LANES))
    {
        for l in 0..LANES {
            let carry_out = p[l] & c[l];
            p[l] ^= c[l];
            c[l] = carry_out;
            any |= carry_out;
        }
    }
    for (p, c) in p_tail.iter_mut().zip(c_tail.iter_mut()) {
        let carry_out = *p & *c;
        *p ^= *c;
        *c = carry_out;
        any |= carry_out;
    }
    any != 0
}

fn threshold_step(plane: &[u64], t_bit: bool, gt: &mut [u64], eq: &mut [u64]) {
    let n = eq.len();
    if t_bit {
        let (e_blocks, e_tail) = eq.split_at_mut(n - n % LANES);
        let (b_blocks, b_tail) = plane[..n].split_at(e_blocks.len());
        for (e, b) in e_blocks
            .chunks_exact_mut(LANES)
            .zip(b_blocks.chunks_exact(LANES))
        {
            for l in 0..LANES {
                e[l] &= b[l];
            }
        }
        for (e, b) in e_tail.iter_mut().zip(b_tail) {
            *e &= b;
        }
    } else {
        let (g_blocks, g_tail) = gt.split_at_mut(n - n % LANES);
        let (e_blocks, e_tail) = eq.split_at_mut(g_blocks.len());
        let (b_blocks, b_tail) = plane[..n].split_at(g_blocks.len());
        for ((g, e), b) in g_blocks
            .chunks_exact_mut(LANES)
            .zip(e_blocks.chunks_exact_mut(LANES))
            .zip(b_blocks.chunks_exact(LANES))
        {
            for l in 0..LANES {
                g[l] |= e[l] & b[l];
                e[l] &= !b[l];
            }
        }
        for ((g, e), b) in g_tail.iter_mut().zip(e_tail.iter_mut()).zip(b_tail) {
            *g |= *e & b;
            *e &= !b;
        }
    }
}

fn hamming_rows(q_block: &[u64], rows: &[u64], dist: &mut [u32]) {
    let len = q_block.len();
    for (r, d) in dist.iter_mut().enumerate() {
        *d += hamming(q_block, &rows[r * len..(r + 1) * len]) as u32;
    }
}

fn hamming_rows_stride(q_block: &[u64], rows: &[u64], stride: usize, dist: &mut [u32]) {
    let len = q_block.len();
    for (r, d) in dist.iter_mut().enumerate() {
        *d += hamming(q_block, &rows[r * stride..r * stride + len]) as u32;
    }
}

fn dot_i32(a: &[i32], b: &[i32]) -> i64 {
    let n = a.len().min(b.len());
    let mut lanes = [0i64; LANES];
    let a_blocks = a[..n].chunks_exact(LANES);
    let b_blocks = b[..n].chunks_exact(LANES);
    let a_tail = a_blocks.remainder();
    let b_tail = b_blocks.remainder();
    for (x, y) in a_blocks.zip(b_blocks) {
        for l in 0..LANES {
            lanes[l] = lanes[l].wrapping_add(i64::from(x[l]) * i64::from(y[l]));
        }
    }
    let mut dot = lanes.iter().fold(0i64, |acc, &l| acc.wrapping_add(l));
    for (&x, &y) in a_tail.iter().zip(b_tail) {
        dot = dot.wrapping_add(i64::from(x) * i64::from(y));
    }
    dot
}

fn dot_rows_stride(q_block: &[i32], rows: &[i32], stride: usize, dots: &mut [i64]) {
    let len = q_block.len();
    for (r, d) in dots.iter_mut().enumerate() {
        *d = d.wrapping_add(dot_i32(q_block, &rows[r * stride..r * stride + len]));
    }
}

fn dot_i16_row(a: &[i16], b: &[i16]) -> i64 {
    let n = a.len().min(b.len());
    let mut lanes = [0i64; LANES];
    let a_blocks = a[..n].chunks_exact(LANES);
    let b_blocks = b[..n].chunks_exact(LANES);
    let a_tail = a_blocks.remainder();
    let b_tail = b_blocks.remainder();
    for (x, y) in a_blocks.zip(b_blocks) {
        for l in 0..LANES {
            lanes[l] = lanes[l].wrapping_add(i64::from(x[l]) * i64::from(y[l]));
        }
    }
    let mut dot = lanes.iter().fold(0i64, |acc, &l| acc.wrapping_add(l));
    for (&x, &y) in a_tail.iter().zip(b_tail) {
        dot = dot.wrapping_add(i64::from(x) * i64::from(y));
    }
    dot
}

fn dot_i16_rows_stride(q_block: &[i16], rows: &[i16], stride: usize, dots: &mut [i64]) {
    let len = q_block.len();
    for (r, d) in dots.iter_mut().enumerate() {
        *d = d.wrapping_add(dot_i16_row(q_block, &rows[r * stride..r * stride + len]));
    }
}
