//! AVX2 backend (`std::arch` x86_64 intrinsics).
//!
//! 256-bit lanes carry four `u64` words (or eight `i32` values) per
//! operation: XOR/AND/OR on `__m256i`, popcount via the vpshufb
//! nibble-LUT + `vpsadbw` reduction, and the widening
//! `vpmuldq` 32→64-bit multiply for integer dot products. Tails
//! shorter than a full vector run the scalar code, so results are
//! defined for every slice length.
//!
//! # Safety
//!
//! This module's `KERNEL` table is handed out by [`super::available`]
//! **only after** `is_x86_feature_detected!("avx2")` has confirmed the
//! CPU supports AVX2, which is the sole precondition of the
//! `#[target_feature(enable = "avx2")]` functions below. All pointer
//! accesses are unaligned loads/stores within slice bounds.

#![allow(unsafe_code)]

use std::arch::x86_64::{
    __m256i, _mm256_abs_epi16, _mm256_add_epi32, _mm256_add_epi64, _mm256_add_epi8,
    _mm256_and_si256, _mm256_extract_epi64, _mm256_loadu_si256, _mm256_madd_epi16,
    _mm256_max_epu16, _mm256_mul_epi32, _mm256_or_si256, _mm256_permute2x128_si256,
    _mm256_sad_epu8, _mm256_set1_epi8, _mm256_setr_epi8, _mm256_setzero_si256, _mm256_shuffle_epi8,
    _mm256_srai_epi32, _mm256_srli_epi16, _mm256_srli_epi64, _mm256_storeu_si256,
    _mm256_testz_si256, _mm256_unpackhi_epi32, _mm256_unpackhi_epi64, _mm256_unpacklo_epi32,
    _mm256_unpacklo_epi64, _mm256_xor_si256,
};

use super::Kernel;

/// `u64` words per 256-bit vector.
const WORDS: usize = 4;
/// `i32` values per 256-bit vector.
const INTS: usize = 8;
/// `i16` values per 256-bit vector.
const SHORTS: usize = 16;

/// The AVX2 backend. Only reachable through [`super::available`], which
/// performs the CPU-feature check this table's functions require.
pub(super) static KERNEL: Kernel = Kernel {
    name: "avx2",
    xor_into,
    xor_assign,
    popcount,
    hamming,
    ripple_step,
    threshold_step,
    hamming_rows,
    hamming_rows_stride,
    dot_i32,
    dot_rows_stride,
    dot_i16_rows_stride,
};

fn xor_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    // SAFETY: AVX2 availability is guaranteed by the dispatch layer.
    unsafe { xor_into_avx2(a, b, out) }
}

fn xor_assign(a: &mut [u64], b: &[u64]) {
    // SAFETY: AVX2 availability is guaranteed by the dispatch layer.
    unsafe { xor_assign_avx2(a, b) }
}

fn popcount(words: &[u64]) -> u64 {
    // SAFETY: AVX2 availability is guaranteed by the dispatch layer.
    unsafe { popcount_avx2(words) }
}

fn hamming(a: &[u64], b: &[u64]) -> u64 {
    // SAFETY: AVX2 availability is guaranteed by the dispatch layer.
    unsafe { hamming_avx2(a, b) }
}

fn ripple_step(plane: &mut [u64], carry: &mut [u64]) -> bool {
    // SAFETY: AVX2 availability is guaranteed by the dispatch layer.
    unsafe { ripple_step_avx2(plane, carry) }
}

fn threshold_step(plane: &[u64], t_bit: bool, gt: &mut [u64], eq: &mut [u64]) {
    // SAFETY: AVX2 availability is guaranteed by the dispatch layer.
    unsafe { threshold_step_avx2(plane, t_bit, gt, eq) }
}

fn hamming_rows(q_block: &[u64], rows: &[u64], dist: &mut [u32]) {
    // SAFETY: AVX2 availability is guaranteed by the dispatch layer.
    unsafe { hamming_rows_avx2(q_block, rows, dist) }
}

fn hamming_rows_stride(q_block: &[u64], rows: &[u64], stride: usize, dist: &mut [u32]) {
    // SAFETY: AVX2 availability is guaranteed by the dispatch layer.
    unsafe { hamming_rows_stride_avx2(q_block, rows, stride, dist) }
}

fn dot_i32(a: &[i32], b: &[i32]) -> i64 {
    // SAFETY: AVX2 availability is guaranteed by the dispatch layer.
    unsafe { dot_i32_avx2(a, b) }
}

fn dot_rows_stride(q_block: &[i32], rows: &[i32], stride: usize, dots: &mut [i64]) {
    // SAFETY: AVX2 availability is guaranteed by the dispatch layer.
    unsafe { dot_rows_stride_avx2(q_block, rows, stride, dots) }
}

fn dot_i16_rows_stride(q_block: &[i16], rows: &[i16], stride: usize, dots: &mut [i64]) {
    // SAFETY: AVX2 availability is guaranteed by the dispatch layer.
    unsafe { dot_i16_rows_stride_avx2(q_block, rows, stride, dots) }
}

/// Per-byte popcount of a 256-bit vector via the nibble lookup table,
/// reduced to four per-64-bit-lane sums by `vpsadbw`.
#[target_feature(enable = "avx2")]
unsafe fn popcnt256(v: __m256i) -> __m256i {
    #[rustfmt::skip]
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_mask = _mm256_set1_epi8(0x0f);
    let lo = _mm256_and_si256(v, low_mask);
    let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low_mask);
    let counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
    _mm256_sad_epu8(counts, _mm256_setzero_si256())
}

/// Horizontal sum of the four `u64` lanes.
#[target_feature(enable = "avx2")]
unsafe fn sum_lanes_u64(v: __m256i) -> u64 {
    (_mm256_extract_epi64::<0>(v) as u64)
        .wrapping_add(_mm256_extract_epi64::<1>(v) as u64)
        .wrapping_add(_mm256_extract_epi64::<2>(v) as u64)
        .wrapping_add(_mm256_extract_epi64::<3>(v) as u64)
}

#[target_feature(enable = "avx2")]
unsafe fn xor_into_avx2(a: &[u64], b: &[u64], out: &mut [u64]) {
    let n = out.len().min(a.len()).min(b.len());
    let blocks = n / WORDS;
    for i in 0..blocks {
        let x = _mm256_loadu_si256(a.as_ptr().add(i * WORDS).cast());
        let y = _mm256_loadu_si256(b.as_ptr().add(i * WORDS).cast());
        _mm256_storeu_si256(
            out.as_mut_ptr().add(i * WORDS).cast(),
            _mm256_xor_si256(x, y),
        );
    }
    for i in blocks * WORDS..n {
        out[i] = a[i] ^ b[i];
    }
}

#[target_feature(enable = "avx2")]
unsafe fn xor_assign_avx2(a: &mut [u64], b: &[u64]) {
    let n = a.len().min(b.len());
    let blocks = n / WORDS;
    for i in 0..blocks {
        let x = _mm256_loadu_si256(a.as_ptr().add(i * WORDS).cast());
        let y = _mm256_loadu_si256(b.as_ptr().add(i * WORDS).cast());
        _mm256_storeu_si256(a.as_mut_ptr().add(i * WORDS).cast(), _mm256_xor_si256(x, y));
    }
    for i in blocks * WORDS..n {
        a[i] ^= b[i];
    }
}

#[target_feature(enable = "avx2")]
unsafe fn popcount_avx2(words: &[u64]) -> u64 {
    let n = words.len();
    let blocks = n / WORDS;
    let mut acc = _mm256_setzero_si256();
    for i in 0..blocks {
        let v = _mm256_loadu_si256(words.as_ptr().add(i * WORDS).cast());
        acc = _mm256_add_epi64(acc, popcnt256(v));
    }
    let mut sum = sum_lanes_u64(acc);
    for w in &words[blocks * WORDS..] {
        sum += u64::from(w.count_ones());
    }
    sum
}

#[target_feature(enable = "avx2")]
unsafe fn hamming_avx2(a: &[u64], b: &[u64]) -> u64 {
    let n = a.len().min(b.len());
    let blocks = n / WORDS;
    let mut acc = _mm256_setzero_si256();
    for i in 0..blocks {
        let x = _mm256_loadu_si256(a.as_ptr().add(i * WORDS).cast());
        let y = _mm256_loadu_si256(b.as_ptr().add(i * WORDS).cast());
        acc = _mm256_add_epi64(acc, popcnt256(_mm256_xor_si256(x, y)));
    }
    let mut sum = sum_lanes_u64(acc);
    for i in blocks * WORDS..n {
        sum += u64::from((a[i] ^ b[i]).count_ones());
    }
    sum
}

#[target_feature(enable = "avx2")]
unsafe fn ripple_step_avx2(plane: &mut [u64], carry: &mut [u64]) -> bool {
    let n = plane.len().min(carry.len());
    let blocks = n / WORDS;
    let mut any = _mm256_setzero_si256();
    for i in 0..blocks {
        let p = _mm256_loadu_si256(plane.as_ptr().add(i * WORDS).cast());
        let c = _mm256_loadu_si256(carry.as_ptr().add(i * WORDS).cast());
        let carry_out = _mm256_and_si256(p, c);
        _mm256_storeu_si256(
            plane.as_mut_ptr().add(i * WORDS).cast(),
            _mm256_xor_si256(p, c),
        );
        _mm256_storeu_si256(carry.as_mut_ptr().add(i * WORDS).cast(), carry_out);
        any = _mm256_or_si256(any, carry_out);
    }
    let mut live = _mm256_testz_si256(any, any) == 0;
    for i in blocks * WORDS..n {
        let carry_out = plane[i] & carry[i];
        plane[i] ^= carry[i];
        carry[i] = carry_out;
        live |= carry_out != 0;
    }
    live
}

#[target_feature(enable = "avx2")]
unsafe fn threshold_step_avx2(plane: &[u64], t_bit: bool, gt: &mut [u64], eq: &mut [u64]) {
    let n = eq.len().min(gt.len()).min(plane.len());
    let blocks = n / WORDS;
    if t_bit {
        for i in 0..blocks {
            let e = _mm256_loadu_si256(eq.as_ptr().add(i * WORDS).cast());
            let b = _mm256_loadu_si256(plane.as_ptr().add(i * WORDS).cast());
            _mm256_storeu_si256(
                eq.as_mut_ptr().add(i * WORDS).cast(),
                _mm256_and_si256(e, b),
            );
        }
        for i in blocks * WORDS..n {
            eq[i] &= plane[i];
        }
    } else {
        for i in 0..blocks {
            let g = _mm256_loadu_si256(gt.as_ptr().add(i * WORDS).cast());
            let e = _mm256_loadu_si256(eq.as_ptr().add(i * WORDS).cast());
            let b = _mm256_loadu_si256(plane.as_ptr().add(i * WORDS).cast());
            let masked = _mm256_and_si256(e, b);
            _mm256_storeu_si256(
                gt.as_mut_ptr().add(i * WORDS).cast(),
                _mm256_or_si256(g, masked),
            );
            _mm256_storeu_si256(
                eq.as_mut_ptr().add(i * WORDS).cast(),
                _mm256_xor_si256(e, masked),
            );
        }
        for i in blocks * WORDS..n {
            gt[i] |= eq[i] & plane[i];
            eq[i] &= !plane[i];
        }
    }
}

#[target_feature(enable = "avx2")]
unsafe fn hamming_rows_avx2(q_block: &[u64], rows: &[u64], dist: &mut [u32]) {
    let len = q_block.len();
    for (r, d) in dist.iter_mut().enumerate() {
        *d += hamming_avx2(q_block, &rows[r * len..(r + 1) * len]) as u32;
    }
}

#[target_feature(enable = "avx2")]
unsafe fn hamming_rows_stride_avx2(q_block: &[u64], rows: &[u64], stride: usize, dist: &mut [u32]) {
    // The strided scan is the pruned top-k coarse pass: short prefixes
    // (tens of words) over many rows, so per-row overhead — not the
    // popcount itself — is what shows up. Rows go two at a time so each
    // query-word load is shared and the two popcount chains overlap;
    // the sums stay plain wrapping adds of the same per-word popcounts,
    // so the result is bit-identical to the one-row path.
    let len = q_block.len();
    let blocks = len / WORDS;
    let n = dist.len();
    let mut r = 0usize;
    while r + 4 <= n {
        let bases = [
            r * stride,
            (r + 1) * stride,
            (r + 2) * stride,
            (r + 3) * stride,
        ];
        let mut acc = [_mm256_setzero_si256(); 4];
        for i in 0..blocks {
            let q = _mm256_loadu_si256(q_block.as_ptr().add(i * WORDS).cast());
            for (lane, &base) in acc.iter_mut().zip(&bases) {
                let x = _mm256_loadu_si256(rows.as_ptr().add(base + i * WORDS).cast());
                *lane = _mm256_add_epi64(*lane, popcnt256(_mm256_xor_si256(q, x)));
            }
        }
        let sums = hsum4_u64(acc[0], acc[1], acc[2], acc[3]);
        let mut s = [0u64; 4];
        _mm256_storeu_si256(s.as_mut_ptr().cast(), sums);
        for i in blocks * WORDS..len {
            let qw = q_block[i];
            for (sum, &base) in s.iter_mut().zip(&bases) {
                *sum += u64::from((qw ^ rows[base + i]).count_ones());
            }
        }
        for (d, &sum) in dist[r..r + 4].iter_mut().zip(&s) {
            *d += sum as u32;
        }
        r += 4;
    }
    while r < n {
        dist[r] += hamming_avx2(q_block, &rows[r * stride..r * stride + len]) as u32;
        r += 1;
    }
}

/// Per-row horizontal sums of four 4×`u64`-lane accumulators at once:
/// returns `[Σa, Σb, Σc, Σd]` — a 4×4 lane transpose-and-add, cheaper
/// than four independent extract-based reductions.
#[target_feature(enable = "avx2")]
unsafe fn hsum4_u64(a: __m256i, b: __m256i, c: __m256i, d: __m256i) -> __m256i {
    let t0 = _mm256_add_epi64(_mm256_unpacklo_epi64(a, b), _mm256_unpackhi_epi64(a, b));
    let t1 = _mm256_add_epi64(_mm256_unpacklo_epi64(c, d), _mm256_unpackhi_epi64(c, d));
    let lo = _mm256_permute2x128_si256(t0, t1, 0x20);
    let hi = _mm256_permute2x128_si256(t0, t1, 0x31);
    _mm256_add_epi64(lo, hi)
}

/// Unroll factor of the widened dot accumulation: 4 vectors (32 `i32`
/// values) per iteration, each feeding its own accumulator register.
const DOT_UNROLL: usize = 4;

#[target_feature(enable = "avx2")]
unsafe fn dot_i32_avx2(a: &[i32], b: &[i32]) -> i64 {
    // vpmaddwd would halve the multiply count but silently truncates
    // inputs outside i16 — the exactness contract (wrapping i64 dot for
    // arbitrary i32 accumulators) rules it out. Instead the vpmuldq
    // even/odd widening multiplies are unrolled over DOT_UNROLL
    // independent accumulators so the epi64 adds pipeline instead of
    // serializing on one register; wrapping integer addition commutes,
    // so the reassociated sum is bit-identical to the scalar reference.
    let n = a.len().min(b.len());
    let step = INTS * DOT_UNROLL;
    let wide_blocks = n / step;
    let mut acc = [_mm256_setzero_si256(); DOT_UNROLL];
    for i in 0..wide_blocks {
        for (u, lane) in acc.iter_mut().enumerate() {
            let off = i * step + u * INTS;
            let x = _mm256_loadu_si256(a.as_ptr().add(off).cast());
            let y = _mm256_loadu_si256(b.as_ptr().add(off).cast());
            let even = _mm256_mul_epi32(x, y);
            let odd = _mm256_mul_epi32(_mm256_srli_epi64::<32>(x), _mm256_srli_epi64::<32>(y));
            *lane = _mm256_add_epi64(*lane, _mm256_add_epi64(even, odd));
        }
    }
    let mut tail_acc = _mm256_setzero_si256();
    let blocks = n / INTS;
    for i in wide_blocks * DOT_UNROLL..blocks {
        let x = _mm256_loadu_si256(a.as_ptr().add(i * INTS).cast());
        let y = _mm256_loadu_si256(b.as_ptr().add(i * INTS).cast());
        let even = _mm256_mul_epi32(x, y);
        let odd = _mm256_mul_epi32(_mm256_srli_epi64::<32>(x), _mm256_srli_epi64::<32>(y));
        tail_acc = _mm256_add_epi64(tail_acc, _mm256_add_epi64(even, odd));
    }
    for lane in acc {
        tail_acc = _mm256_add_epi64(tail_acc, lane);
    }
    let mut dot = sum_lanes_u64(tail_acc) as i64;
    for i in blocks * INTS..n {
        dot = dot.wrapping_add(i64::from(a[i]) * i64::from(b[i]));
    }
    dot
}

#[target_feature(enable = "avx2")]
unsafe fn dot_rows_stride_avx2(q_block: &[i32], rows: &[i32], stride: usize, dots: &mut [i64]) {
    // The int twin of `hamming_rows_stride_avx2`: rows go four at a
    // time so each query-vector load (and its odd-lane shift) is shared
    // across the four vpmuldq even/odd widening multiply chains.
    // Wrapping i64 addition commutes, so the reassociated per-row sums
    // are bit-identical to the scalar reference.
    let len = q_block.len();
    let blocks = len / INTS;
    let n = dots.len();
    let mut r = 0usize;
    while r + 4 <= n {
        let bases = [
            r * stride,
            (r + 1) * stride,
            (r + 2) * stride,
            (r + 3) * stride,
        ];
        let mut acc = [_mm256_setzero_si256(); 4];
        for i in 0..blocks {
            let q = _mm256_loadu_si256(q_block.as_ptr().add(i * INTS).cast());
            let q_odd = _mm256_srli_epi64::<32>(q);
            for (lane, &base) in acc.iter_mut().zip(&bases) {
                let x = _mm256_loadu_si256(rows.as_ptr().add(base + i * INTS).cast());
                let even = _mm256_mul_epi32(q, x);
                let odd = _mm256_mul_epi32(q_odd, _mm256_srli_epi64::<32>(x));
                *lane = _mm256_add_epi64(*lane, _mm256_add_epi64(even, odd));
            }
        }
        let sums = hsum4_u64(acc[0], acc[1], acc[2], acc[3]);
        let mut s = [0u64; 4];
        _mm256_storeu_si256(s.as_mut_ptr().cast(), sums);
        for i in blocks * INTS..len {
            let qv = i64::from(q_block[i]);
            for (sum, &base) in s.iter_mut().zip(&bases) {
                *sum = sum.wrapping_add((qv * i64::from(rows[base + i])) as u64);
            }
        }
        for (d, &sum) in dots[r..r + 4].iter_mut().zip(&s) {
            *d = d.wrapping_add(sum as i64);
        }
        r += 4;
    }
    while r < n {
        let dot = dot_i32_avx2(q_block, &rows[r * stride..r * stride + len]);
        dots[r] = dots[r].wrapping_add(dot);
        r += 1;
    }
}

/// Sign-extends the eight `i32` lanes of a vpmaddwd result into two
/// 4×`i64` vectors and adds both into the accumulator. The unpack
/// interleaving permutes which lane each value lands in, but wrapping
/// addition commutes, so the total is unaffected.
#[target_feature(enable = "avx2")]
unsafe fn add_widened_i32x8(acc: __m256i, m: __m256i) -> __m256i {
    let sign = _mm256_srai_epi32::<31>(m);
    let lo = _mm256_unpacklo_epi32(m, sign);
    let hi = _mm256_unpackhi_epi32(m, sign);
    _mm256_add_epi64(acc, _mm256_add_epi64(lo, hi))
}

/// Dimensions (multiple of [`SHORTS`]) whose vpmaddwd results can
/// accumulate in i32 lanes before one widening into i64, given the
/// query side `q`: every madd lane is bounded by `2 · max|q| · 32767`
/// (the other operand honors the documented ±32767 kernel contract).
/// Bipolar and small-valued queries — the common HDC case — widen once
/// per row instead of once per madd. The group sums never overflow, so
/// the reassociated total stays bit-identical to the scalar reference.
#[target_feature(enable = "avx2")]
unsafe fn madd_group_dims(q: &[i16]) -> usize {
    let blocks = q.len() / SHORTS;
    let mut m = _mm256_setzero_si256();
    for i in 0..blocks {
        let x = _mm256_loadu_si256(q.as_ptr().add(i * SHORTS).cast());
        // abs_epi16(-32768) wraps to 0x8000, but max_epu16 reads that
        // bit pattern as 32768 — exactly the magnitude we want.
        m = _mm256_max_epu16(m, _mm256_abs_epi16(x));
    }
    let mut lanes = [0u16; SHORTS];
    _mm256_storeu_si256(lanes.as_mut_ptr().cast(), m);
    let mut max_q = 1i64;
    for &v in &lanes {
        max_q = max_q.max(i64::from(v));
    }
    for &v in &q[blocks * SHORTS..] {
        max_q = max_q.max(i64::from(v).abs());
    }
    (i64::from(i32::MAX) / (2 * max_q * 32767)).max(1) as usize * SHORTS
}

#[target_feature(enable = "avx2")]
unsafe fn dot_i16_avx2(a: &[i16], b: &[i16]) -> i64 {
    let n = a.len().min(b.len());
    let len_simd = n - n % SHORTS;
    let group = madd_group_dims(&a[..len_simd]);
    let mut acc = _mm256_setzero_si256();
    let mut i = 0usize;
    while i < len_simd {
        let group_end = (i + group).min(len_simd);
        let mut acc32 = _mm256_setzero_si256();
        while i < group_end {
            let x = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let y = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(x, y));
            i += SHORTS;
        }
        acc = add_widened_i32x8(acc, acc32);
    }
    let mut dot = sum_lanes_u64(acc) as i64;
    for i in len_simd..n {
        dot = dot.wrapping_add(i64::from(a[i]) * i64::from(b[i]));
    }
    dot
}

#[target_feature(enable = "avx2")]
unsafe fn dot_i16_rows_stride_avx2(q_block: &[i16], rows: &[i16], stride: usize, dots: &mut [i64]) {
    // vpmaddwd multiplies 16 i16 pairs and sums adjacent products into
    // eight i32 lanes per instruction — the reason the i16 sidecar path
    // exists. The kernel contract bounds inputs to [-32767, 32767], so
    // each pairwise sum is at most 2·32767² < 2³¹ and the i32 lanes
    // cannot overflow; [`madd_group_dims`] chooses how many of those
    // results accumulate in i32 before each sign-extension into the i64
    // accumulators. Four rows share each query load, as in the other
    // strided scans.
    let len = q_block.len();
    let len_simd = len - len % SHORTS;
    let group = madd_group_dims(q_block);
    let n = dots.len();
    let mut r = 0usize;
    while r + 4 <= n {
        let bases = [
            r * stride,
            (r + 1) * stride,
            (r + 2) * stride,
            (r + 3) * stride,
        ];
        let mut acc = [_mm256_setzero_si256(); 4];
        let mut i = 0usize;
        while i < len_simd {
            let group_end = (i + group).min(len_simd);
            let mut acc32 = [_mm256_setzero_si256(); 4];
            while i < group_end {
                let q = _mm256_loadu_si256(q_block.as_ptr().add(i).cast());
                for (lane, &base) in acc32.iter_mut().zip(&bases) {
                    let x = _mm256_loadu_si256(rows.as_ptr().add(base + i).cast());
                    *lane = _mm256_add_epi32(*lane, _mm256_madd_epi16(q, x));
                }
                i += SHORTS;
            }
            for (wide, narrow) in acc.iter_mut().zip(&acc32) {
                *wide = add_widened_i32x8(*wide, *narrow);
            }
        }
        let sums = hsum4_u64(acc[0], acc[1], acc[2], acc[3]);
        let mut s = [0u64; 4];
        _mm256_storeu_si256(s.as_mut_ptr().cast(), sums);
        for i in len_simd..len {
            let qv = i64::from(q_block[i]);
            for (sum, &base) in s.iter_mut().zip(&bases) {
                *sum = sum.wrapping_add((qv * i64::from(rows[base + i])) as u64);
            }
        }
        for (d, &sum) in dots[r..r + 4].iter_mut().zip(&s) {
            *d = d.wrapping_add(sum as i64);
        }
        r += 4;
    }
    while r < n {
        let dot = dot_i16_avx2(q_block, &rows[r * stride..r * stride + len]);
        dots[r] = dots[r].wrapping_add(dot);
        r += 1;
    }
}
