//! Error type shared by fallible `hypervec` constructors and queries.

use std::error::Error;
use std::fmt;

/// Errors produced by `hypervec` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HvError {
    /// Two hypervectors had different dimensionalities.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// A level-hypervector family needs at least two levels.
    TooFewLevels {
        /// Number of levels requested.
        requested: usize,
    },
    /// The requested dimensionality cannot host the requested structure
    /// (e.g. more levels than half the dimension).
    DimensionTooSmall {
        /// Dimension supplied.
        dim: usize,
        /// Minimum dimension required.
        required: usize,
    },
    /// An operation that needs at least one element got none.
    EmptyInput,
    /// An index was outside the valid range.
    IndexOutOfRange {
        /// Offending index.
        index: usize,
        /// Number of valid entries.
        len: usize,
    },
    /// A row inside a multi-row container had the wrong dimension. The
    /// row index names the offender so bulk constructors
    /// ([`ItemMemory::from_rows`](crate::ItemMemory::from_rows),
    /// [`ShardedClassMemory::from_rows`](crate::ShardedClassMemory::from_rows))
    /// produce actionable errors.
    RowDimensionMismatch {
        /// Index of the offending row.
        row: usize,
        /// Dimension expected by the container.
        expected: usize,
        /// Dimension of the offending row.
        found: usize,
    },
}

impl fmt::Display for HvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            HvError::TooFewLevels { requested } => {
                write!(
                    f,
                    "level family needs at least 2 levels, requested {requested}"
                )
            }
            HvError::DimensionTooSmall { dim, required } => {
                write!(f, "dimension {dim} too small, need at least {required}")
            }
            HvError::EmptyInput => write!(f, "operation requires at least one element"),
            HvError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            HvError::RowDimensionMismatch {
                row,
                expected,
                found,
            } => {
                write!(
                    f,
                    "row {row} has dimension {found}, container expects {expected}"
                )
            }
        }
    }
}

impl Error for HvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = HvError::DimensionMismatch {
            expected: 10,
            found: 4,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 10, found 4");
        let e = HvError::TooFewLevels { requested: 1 };
        assert!(e.to_string().contains("at least 2"));
        let e = HvError::EmptyInput;
        assert!(!e.to_string().is_empty());
        let e = HvError::RowDimensionMismatch {
            row: 3,
            expected: 128,
            found: 64,
        };
        assert_eq!(
            e.to_string(),
            "row 3 has dimension 64, container expects 128"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HvError>();
    }
}
