//! Chunked fork-join parallelism over scoped threads.
//!
//! The batch encoding engine parallelizes at *chunk* granularity: each
//! worker owns a contiguous index range and its own scratch state (a
//! [`BitSliceAccumulator`](crate::BitSliceAccumulator), derivation
//! buffers, …), so the hot loop allocates nothing and shares nothing.
//! This module provides that split on plain `std::thread::scope` —
//! no external thread-pool dependency, deterministic output order.
//!
//! The worker count defaults to the machine's available parallelism and
//! can be pinned with the `HYPERVEC_THREADS` environment variable
//! (benchmarks use it to report single- vs multi-thread throughput).
//!
//! Setting `HYPERVEC_PIN=1` additionally pins worker `w` of each
//! fork-join to CPU `w mod n_cpus` (best-effort `sched_setaffinity` on
//! Linux, a silent no-op elsewhere), so encode and search shards stay
//! on their cores — and, on multi-socket machines, on their memory
//! nodes — instead of migrating mid-batch.

/// The machine's available parallelism, cached:
/// `available_parallelism` reads cgroup quota files on Linux — far too
/// expensive to query on every small batch.
fn available_cores() -> usize {
    static AVAILABLE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *AVAILABLE
        .get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// Maximum worker threads: `HYPERVEC_THREADS` if set and positive,
/// otherwise the machine's available parallelism.
#[must_use]
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("HYPERVEC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    available_cores()
}

/// Whether `HYPERVEC_PIN=1` asked for workers to be pinned to cores.
fn pin_workers() -> bool {
    static PIN: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *PIN.get_or_init(|| {
        std::env::var("HYPERVEC_PIN")
            .is_ok_and(|v| matches!(v.trim(), "1" | "true" | "TRUE" | "True"))
    })
}

/// Best-effort pin of the calling thread to one CPU. Failures (cgroup
/// masks, offline CPUs, unsupported platforms) are silently ignored —
/// pinning is a performance hint, never a correctness requirement.
fn pin_current_thread(core: usize) {
    #[cfg(target_os = "linux")]
    {
        // Minimal libc shim: Linux guarantees the symbol, and `pid = 0`
        // targets the calling thread.
        extern "C" {
            fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
        }
        /// 1024-bit CPU mask, the kernel's default `cpu_set_t` size.
        const MASK_WORDS: usize = 16;
        if core >= MASK_WORDS * 64 {
            // Never alias an out-of-range core onto a low CPU; skipping
            // keeps the thread unpinned, which is the documented
            // best-effort behavior.
            return;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[core / 64] |= 1u64 << (core % 64);
        // SAFETY: the mask pointer is valid for `MASK_WORDS * 8` bytes
        // and the syscall only reads it.
        unsafe {
            let _ = sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr());
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = core;
    }
}

/// Maps each chunk of `0..n_items` through `f` on its own worker and
/// concatenates the per-chunk outputs in index order.
///
/// `f` receives a contiguous index range and returns the outputs for
/// exactly that range, so results are position-stable regardless of the
/// worker count. Chunks never shrink below `min_chunk` items; with one
/// worker (or few items) everything runs inline on the caller's thread.
pub fn par_chunk_map<T, F>(n_items: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    let min_chunk = min_chunk.max(1);
    let workers = max_threads().min(n_items.div_ceil(min_chunk)).max(1);
    if workers == 1 || n_items == 0 {
        return f(0..n_items);
    }
    // Split into `workers` near-equal contiguous ranges.
    let base = n_items / workers;
    let extra = n_items % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        ranges.push(start..start + len);
        start += len;
    }
    let pin = pin_workers();
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(w, r)| {
                scope.spawn(move || {
                    if pin {
                        pin_current_thread(w % available_cores());
                    }
                    f(r)
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n_items);
        for handle in handles {
            out.extend(handle.join().expect("parallel chunk worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_order_is_stable() {
        let out = par_chunk_map(1000, 1, |r| r.map(|i| i * 2).collect());
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = par_chunk_map(0, 8, |r| r.collect());
        assert!(out.is_empty());
    }

    #[test]
    fn small_inputs_run_inline() {
        // n_items < min_chunk forces the single-worker path.
        let out = par_chunk_map(3, 64, |r| r.map(|i| i + 1).collect());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn pinning_is_a_safe_no_op_for_any_core() {
        // Best-effort contract: pinning must never panic or corrupt
        // results. Cores beyond the mask are skipped (never aliased
        // onto a low CPU); cores beyond the machine make the syscall
        // fail, which is ignored.
        pin_current_thread(0);
        pin_current_thread(1023);
        pin_current_thread(4096);
        let out = par_chunk_map(100, 1, |r| r.map(|i| i + 1).collect());
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 100);
    }
}
