//! Shared `(feature, level)` bound-pair cache for record-style encoders.
//!
//! Record-based encoding adds `FeaHV_i × ValHV_{f_i}` for every feature
//! (paper Eq. 2). Batch encoders amortize the bind by precomputing all
//! `N × M` bound pairs once; this helper owns that lazily-built cache
//! and the row-accumulation loop, so the standard and the locked
//! encoder share one implementation of the hot path (and a tie-policy
//! or layout change can never make them diverge).

use std::sync::OnceLock;

use crate::binary::BinaryHv;
use crate::bitslice::BitSliceAccumulator;
use crate::level::LevelHvs;

/// Lazily built cache of `FeaHV_i × ValHV_v` bound pairs, keyed
/// `i·M + v`, plus the bit-sliced row-accumulation loop that consumes
/// it (falling back to fused XOR accumulation while cold).
#[derive(Debug, Default)]
pub struct BoundPairCache {
    cache: OnceLock<Vec<BinaryHv>>,
}

impl Clone for BoundPairCache {
    /// Clones the cache contents (a clone of an encoder keeps its
    /// warmed state).
    fn clone(&self) -> Self {
        let out = BoundPairCache::new();
        if let Some(cache) = self.cache.get() {
            let _ = out.cache.set(cache.clone());
        }
        out
    }
}

impl BoundPairCache {
    /// Creates an empty (cold) cache.
    #[must_use]
    pub fn new() -> Self {
        BoundPairCache {
            cache: OnceLock::new(),
        }
    }

    /// Whether the cache has been built.
    #[must_use]
    pub fn is_warm(&self) -> bool {
        self.cache.get().is_some()
    }

    /// Builds the `N × M` bound pairs once; later calls are free.
    pub fn warm(&self, features: &[BinaryHv], values: &LevelHvs) {
        let _ = self.cache.get_or_init(|| {
            let m = values.m();
            let mut cache = Vec::with_capacity(features.len() * m);
            for fea in features {
                for v in 0..m {
                    cache.push(fea.bind(values.level(v)));
                }
            }
            cache
        });
    }

    /// Warms the cache only when a batch of `batch_len` rows amortizes
    /// the `N × M` build cost (heuristic: at least `M` rows).
    pub fn warm_for_batch(&self, features: &[BinaryHv], values: &LevelHvs, batch_len: usize) {
        if batch_len >= values.m() {
            self.warm(features, values);
        }
    }

    /// Accumulates one quantized row into a (cleared) accumulator:
    /// pre-bound adds when warm, fused XOR adds when cold. Bit-exact
    /// either way.
    ///
    /// # Panics
    ///
    /// Panics if a level index is out of range or dimensions disagree.
    pub fn accumulate_row(
        &self,
        acc: &mut BitSliceAccumulator,
        features: &[BinaryHv],
        values: &LevelHvs,
        levels: &[u16],
    ) {
        if let Some(cache) = self.cache.get() {
            let m = values.m();
            for (i, &lv) in levels.iter().enumerate() {
                acc.add(&cache[i * m + usize::from(lv)]);
            }
        } else {
            for (i, &lv) in levels.iter().enumerate() {
                acc.add_bound_pair(values.level(usize::from(lv)), &features[i]);
            }
        }
    }

    /// Cache-oblivious variant of [`BoundPairCache::accumulate_row`]:
    /// for every feature it strides through **all** `M` cached bound
    /// pairs in fixed order and selects the requested level with a
    /// branchless all-ones/all-zeros mask, so the memory access pattern
    /// — which cache lines are touched, in which order — is independent
    /// of the query's level values. This is the fixed-work hot path of
    /// the hardened serving mode: an attacker timing encodes can no
    /// longer learn which `(feature, level)` pairs were recently used.
    ///
    /// Warms the table eagerly (idempotent) so there is never a
    /// warm/cold branch, and is bit-exact with the data-dependent path:
    /// OR-ing the masked entries reproduces `cache[i·M + lv]` exactly.
    ///
    /// `select` is a caller-owned scratch buffer (resized to `⌈D/64⌉`)
    /// so per-worker encode loops stay zero-alloc across rows.
    ///
    /// # Panics
    ///
    /// Panics if a level index is out of range or dimensions disagree.
    pub fn accumulate_row_oblivious(
        &self,
        acc: &mut BitSliceAccumulator,
        features: &[BinaryHv],
        values: &LevelHvs,
        levels: &[u16],
        select: &mut Vec<u64>,
    ) {
        self.warm(features, values);
        let cache = self.cache.get().expect("warm() built the table");
        let m = values.m();
        let n_words = acc.dim().div_ceil(64);
        select.resize(n_words, 0);
        for (i, &lv) in levels.iter().enumerate() {
            assert!(
                usize::from(lv) < m,
                "level index {lv} out of range (M = {m})"
            );
            select.iter_mut().for_each(|w| *w = 0);
            for v in 0..m {
                // All-ones iff v == lv: `x | -x` has its top bit set for
                // every nonzero x, so the shifted bit is 1 exactly when
                // the XOR difference is nonzero — no data-dependent
                // branch anywhere in the selection.
                let eq = (v as u64) ^ u64::from(lv);
                let mask = ((eq | eq.wrapping_neg()) >> 63).wrapping_sub(1);
                for (s, &w) in select.iter_mut().zip(cache[i * m + v].bits().words()) {
                    *s |= w & mask;
                }
            }
            acc.add_words(select);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::HvRng;

    #[test]
    fn warm_and_cold_paths_are_bit_identical() {
        let mut rng = HvRng::from_seed(1);
        let features = rng.orthogonal_pool(300, 5);
        let values = LevelHvs::generate(&mut rng, 300, 4).unwrap();
        let levels: Vec<u16> = vec![0, 3, 1, 2, 3];

        let cold = BoundPairCache::new();
        let mut acc_cold = BitSliceAccumulator::new(300);
        cold.accumulate_row(&mut acc_cold, &features, &values, &levels);
        assert!(!cold.is_warm());

        let warm = BoundPairCache::new();
        warm.warm(&features, &values);
        assert!(warm.is_warm());
        let mut acc_warm = BitSliceAccumulator::new(300);
        warm.accumulate_row(&mut acc_warm, &features, &values, &levels);

        assert_eq!(acc_cold.to_int(), acc_warm.to_int());
    }

    #[test]
    fn warm_for_batch_respects_threshold() {
        let mut rng = HvRng::from_seed(2);
        let features = rng.orthogonal_pool(64, 3);
        let values = LevelHvs::generate(&mut rng, 64, 4).unwrap();
        let cache = BoundPairCache::new();
        cache.warm_for_batch(&features, &values, 3);
        assert!(!cache.is_warm(), "3 rows < M = 4 should stay cold");
        cache.warm_for_batch(&features, &values, 4);
        assert!(cache.is_warm());
    }

    #[test]
    fn oblivious_accumulate_is_bit_identical_and_warms() {
        let mut rng = HvRng::from_seed(4);
        let features = rng.orthogonal_pool(300, 5);
        let values = LevelHvs::generate(&mut rng, 300, 4).unwrap();

        let data_dependent = BoundPairCache::new();
        data_dependent.warm(&features, &values);
        let oblivious = BoundPairCache::new();
        assert!(!oblivious.is_warm());

        let mut select = Vec::new();
        for levels in [[0u16, 3, 1, 2, 3], [3, 3, 3, 3, 3], [0, 0, 0, 0, 0]] {
            let mut acc_dd = BitSliceAccumulator::new(300);
            data_dependent.accumulate_row(&mut acc_dd, &features, &values, &levels);
            let mut acc_ob = BitSliceAccumulator::new(300);
            oblivious.accumulate_row_oblivious(
                &mut acc_ob,
                &features,
                &values,
                &levels,
                &mut select,
            );
            assert_eq!(acc_dd.to_int(), acc_ob.to_int(), "levels {levels:?}");
            assert_eq!(
                acc_dd.majority_ties_positive(),
                acc_ob.majority_ties_positive()
            );
        }
        assert!(oblivious.is_warm(), "oblivious path warms eagerly");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oblivious_accumulate_rejects_bad_level() {
        let mut rng = HvRng::from_seed(5);
        let features = rng.orthogonal_pool(64, 2);
        let values = LevelHvs::generate(&mut rng, 64, 4).unwrap();
        let cache = BoundPairCache::new();
        let mut acc = BitSliceAccumulator::new(64);
        cache.accumulate_row_oblivious(&mut acc, &features, &values, &[0, 4], &mut Vec::new());
    }

    #[test]
    fn clone_preserves_warm_state() {
        let mut rng = HvRng::from_seed(3);
        let features = rng.orthogonal_pool(64, 2);
        let values = LevelHvs::generate(&mut rng, 64, 2).unwrap();
        let cache = BoundPairCache::new();
        cache.warm(&features, &values);
        assert!(cache.clone().is_warm());
        assert!(!BoundPairCache::new().clone().is_warm());
    }
}
