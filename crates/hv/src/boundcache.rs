//! Shared `(feature, level)` bound-pair cache for record-style encoders.
//!
//! Record-based encoding adds `FeaHV_i × ValHV_{f_i}` for every feature
//! (paper Eq. 2). Batch encoders amortize the bind by precomputing all
//! `N × M` bound pairs once; this helper owns that lazily-built cache
//! and the row-accumulation loop, so the standard and the locked
//! encoder share one implementation of the hot path (and a tie-policy
//! or layout change can never make them diverge).

use std::sync::OnceLock;

use crate::binary::BinaryHv;
use crate::bitslice::BitSliceAccumulator;
use crate::level::LevelHvs;

/// Lazily built cache of `FeaHV_i × ValHV_v` bound pairs, keyed
/// `i·M + v`, plus the bit-sliced row-accumulation loop that consumes
/// it (falling back to fused XOR accumulation while cold).
#[derive(Debug, Default)]
pub struct BoundPairCache {
    cache: OnceLock<Vec<BinaryHv>>,
}

impl Clone for BoundPairCache {
    /// Clones the cache contents (a clone of an encoder keeps its
    /// warmed state).
    fn clone(&self) -> Self {
        let out = BoundPairCache::new();
        if let Some(cache) = self.cache.get() {
            let _ = out.cache.set(cache.clone());
        }
        out
    }
}

impl BoundPairCache {
    /// Creates an empty (cold) cache.
    #[must_use]
    pub fn new() -> Self {
        BoundPairCache {
            cache: OnceLock::new(),
        }
    }

    /// Whether the cache has been built.
    #[must_use]
    pub fn is_warm(&self) -> bool {
        self.cache.get().is_some()
    }

    /// Builds the `N × M` bound pairs once; later calls are free.
    pub fn warm(&self, features: &[BinaryHv], values: &LevelHvs) {
        let _ = self.cache.get_or_init(|| {
            let m = values.m();
            let mut cache = Vec::with_capacity(features.len() * m);
            for fea in features {
                for v in 0..m {
                    cache.push(fea.bind(values.level(v)));
                }
            }
            cache
        });
    }

    /// Warms the cache only when a batch of `batch_len` rows amortizes
    /// the `N × M` build cost (heuristic: at least `M` rows).
    pub fn warm_for_batch(&self, features: &[BinaryHv], values: &LevelHvs, batch_len: usize) {
        if batch_len >= values.m() {
            self.warm(features, values);
        }
    }

    /// Accumulates one quantized row into a (cleared) accumulator:
    /// pre-bound adds when warm, fused XOR adds when cold. Bit-exact
    /// either way.
    ///
    /// # Panics
    ///
    /// Panics if a level index is out of range or dimensions disagree.
    pub fn accumulate_row(
        &self,
        acc: &mut BitSliceAccumulator,
        features: &[BinaryHv],
        values: &LevelHvs,
        levels: &[u16],
    ) {
        if let Some(cache) = self.cache.get() {
            let m = values.m();
            for (i, &lv) in levels.iter().enumerate() {
                acc.add(&cache[i * m + usize::from(lv)]);
            }
        } else {
            for (i, &lv) in levels.iter().enumerate() {
                acc.add_bound_pair(values.level(usize::from(lv)), &features[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::HvRng;

    #[test]
    fn warm_and_cold_paths_are_bit_identical() {
        let mut rng = HvRng::from_seed(1);
        let features = rng.orthogonal_pool(300, 5);
        let values = LevelHvs::generate(&mut rng, 300, 4).unwrap();
        let levels: Vec<u16> = vec![0, 3, 1, 2, 3];

        let cold = BoundPairCache::new();
        let mut acc_cold = BitSliceAccumulator::new(300);
        cold.accumulate_row(&mut acc_cold, &features, &values, &levels);
        assert!(!cold.is_warm());

        let warm = BoundPairCache::new();
        warm.warm(&features, &values);
        assert!(warm.is_warm());
        let mut acc_warm = BitSliceAccumulator::new(300);
        warm.accumulate_row(&mut acc_warm, &features, &values, &levels);

        assert_eq!(acc_cold.to_int(), acc_warm.to_int());
    }

    #[test]
    fn warm_for_batch_respects_threshold() {
        let mut rng = HvRng::from_seed(2);
        let features = rng.orthogonal_pool(64, 3);
        let values = LevelHvs::generate(&mut rng, 64, 4).unwrap();
        let cache = BoundPairCache::new();
        cache.warm_for_batch(&features, &values, 3);
        assert!(!cache.is_warm(), "3 rows < M = 4 should stay cold");
        cache.warm_for_batch(&features, &values, 4);
        assert!(cache.is_warm());
    }

    #[test]
    fn clone_preserves_warm_state() {
        let mut rng = HvRng::from_seed(3);
        let features = rng.orthogonal_pool(64, 2);
        let values = LevelHvs::generate(&mut rng, 64, 2).unwrap();
        let cache = BoundPairCache::new();
        cache.warm(&features, &values);
        assert!(cache.clone().is_warm());
        assert!(!BoundPairCache::new().clone().is_warm());
    }
}
