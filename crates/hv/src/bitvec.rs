//! Low-level bit storage backing [`BinaryHv`](crate::BinaryHv).
//!
//! A [`BitWords`] is a fixed-length sequence of bits packed into `u64`
//! words. It supports the primitive operations hyperdimensional computing
//! needs to be fast: word-wise XOR, popcount, and circular rotation of an
//! arbitrary (not necessarily word-aligned) bit length. The bulk
//! operations (XOR, popcount, Hamming) dispatch through
//! [`kernel`], so they run on the active SIMD backend.

use serde::{Deserialize, Serialize};

use crate::error::HvError;
use crate::kernel;

/// Fixed-length packed bit vector.
///
/// Bits beyond `len` in the last word are always kept zero; every method
/// preserves that invariant so popcounts never see garbage. The
/// invariant also survives deserialization: untrusted input is
/// re-validated and re-masked.
///
/// # Examples
///
/// ```
/// use hypervec::bitvec::BitWords;
///
/// let mut b = BitWords::zeros(130);
/// b.set(0, true);
/// b.set(129, true);
/// assert_eq!(b.count_ones(), 2);
/// assert!(b.get(129));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "RawBitWords", into = "RawBitWords")]
pub struct BitWords {
    words: Vec<u64>,
    len: usize,
}

/// Wire format of [`BitWords`]; converted through validation.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RawBitWords {
    words: Vec<u64>,
    len: usize,
}

impl From<BitWords> for RawBitWords {
    fn from(b: BitWords) -> Self {
        RawBitWords {
            words: b.words,
            len: b.len,
        }
    }
}

impl TryFrom<RawBitWords> for BitWords {
    type Error = String;

    fn try_from(raw: RawBitWords) -> Result<Self, Self::Error> {
        if raw.len == 0 {
            return Err("bit vector length must be positive".into());
        }
        if raw.words.len() != raw.len.div_ceil(64) {
            return Err(format!(
                "bit vector of {} bits needs {} words, got {}",
                raw.len,
                raw.len.div_ceil(64),
                raw.words.len()
            ));
        }
        let mut out = BitWords {
            words: raw.words,
            len: raw.len,
        };
        out.mask_tail();
        Ok(out)
    }
}

impl BitWords {
    /// Creates an all-zero bit vector of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`; zero-dimensional hypervectors are meaningless.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        assert!(len > 0, "bit vector length must be positive");
        BitWords {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bit vector whose `i`-th bit is `f(i)`.
    #[must_use]
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut out = Self::zeros(len);
        for i in 0..len {
            if f(i) {
                out.set(i, true);
            }
        }
        out
    }

    /// Creates a bit vector from raw words, masking any excess bits.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than `len.div_ceil(64)` or `len == 0`.
    #[must_use]
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        assert!(len > 0, "bit vector length must be positive");
        let need = len.div_ceil(64);
        assert!(
            words.len() >= need,
            "need {need} words for {len} bits, got {}",
            words.len()
        );
        words.truncate(need);
        let mut out = BitWords { words, len };
        out.mask_tail();
        out
    }

    /// Fallible sibling of [`BitWords::from_words`] for untrusted input
    /// (e.g. binary snapshot deserialization): instead of panicking it
    /// reports a word-count disagreement as
    /// [`HvError::DimensionMismatch`] (expected/found in *words*). Tail
    /// bits beyond `len` are masked, preserving the invariant.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyInput`] for `len == 0` and
    /// [`HvError::DimensionMismatch`] when `words.len()` is not exactly
    /// `len.div_ceil(64)`.
    pub fn try_from_words(words: Vec<u64>, len: usize) -> Result<Self, HvError> {
        if len == 0 {
            return Err(HvError::EmptyInput);
        }
        let need = len.div_ceil(64);
        if words.len() != need {
            return Err(HvError::DimensionMismatch {
                expected: need,
                found: words.len(),
            });
        }
        let mut out = BitWords { words, len };
        out.mask_tail();
        Ok(out)
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`: the constructor rejects zero-length vectors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrows the packed words (tail bits are zero).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for {} bits",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range for {} bits",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range for {} bits",
            self.len
        );
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        (kernel::active().popcount)(&self.words) as usize
    }

    /// XORs `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "length mismatch in xor");
        (kernel::active().xor_assign)(&mut self.words, &other.words);
    }

    /// Returns `self XOR other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn xor(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.xor_assign(other);
        out
    }

    /// Writes `self XOR other` into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if any of the three lengths differ.
    pub fn xor_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(self.len, other.len, "length mismatch in xor");
        assert_eq!(self.len, out.len, "length mismatch in xor output");
        (kernel::active().xor_into)(&self.words, &other.words, &mut out.words);
    }

    /// Overwrites `self` with a copy of `other` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "length mismatch in copy");
        self.words.copy_from_slice(&other.words);
    }

    /// Clears every bit, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of positions where `self` and `other` differ, without
    /// allocating an intermediate vector.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[must_use]
    pub fn count_diff(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "length mismatch in count_diff");
        (kernel::active().hamming)(&self.words, &other.words) as usize
    }

    /// Inverts every bit in place.
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Extracts 64 consecutive bits starting at bit `start`, wrapping
    /// around the end of the vector (circular read).
    ///
    /// Bit `j` of the result is bit `(start + j) mod len` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= self.len()`.
    #[must_use]
    pub fn extract64(&self, start: usize) -> u64 {
        assert!(start < self.len, "start {start} out of range");
        let mut out = 0u64;
        let mut filled = 0usize;
        let mut pos = start;
        while filled < 64 {
            let avail_to_wrap = self.len - pos;
            let word = pos / 64;
            let bit = pos % 64;
            let avail_in_word = 64 - bit;
            let take = avail_in_word.min(avail_to_wrap).min(64 - filled);
            let mask = if take == 64 {
                u64::MAX
            } else {
                (1u64 << take) - 1
            };
            let chunk = (self.words[word] >> bit) & mask;
            out |= chunk << filled;
            filled += take;
            pos += take;
            if pos == self.len {
                pos = 0;
            }
        }
        out
    }

    /// Returns the circular left rotation by `k` bits: bit `i` of the
    /// result is bit `(i + k) mod len` of `self`.
    ///
    /// This matches the HDC permutation `ρ_k(HV) = {HV[k..D-1], HV[0..k-1]}`.
    #[must_use]
    pub fn rotated(&self, k: usize) -> Self {
        let mut out = Self::zeros(self.len);
        self.rotated_into(k, &mut out);
        out
    }

    /// Writes the circular left rotation by `k` bits into `out` without
    /// allocating — the zero-alloc variant backing key derivation's
    /// scratch-buffer reuse.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn rotated_into(&self, k: usize, out: &mut Self) {
        assert_eq!(self.len, out.len, "length mismatch in rotate output");
        let k = k % self.len;
        if k == 0 {
            out.copy_from(self);
            return;
        }
        for wi in 0..out.words.len() {
            let start = (wi * 64 + k) % self.len;
            out.words[wi] = self.extract64(start);
        }
        out.mask_tail();
    }

    /// Zeroes the bits beyond `len` in the last word.
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << rem) - 1;
        }
    }

    /// Iterator over all bits, in index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            bits: self,
            next: 0,
        }
    }
}

impl std::fmt::Debug for BitWords {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let head: String = (0..self.len.min(16))
            .map(|i| if self.get(i) { '1' } else { '0' })
            .collect();
        let ellipsis = if self.len > 16 { "…" } else { "" };
        write!(f, "BitWords({} bits: {head}{ellipsis})", self.len)
    }
}

/// Iterator over the bits of a [`BitWords`], produced by [`BitWords::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    bits: &'a BitWords,
    next: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.next >= self.bits.len() {
            return None;
        }
        let v = self.bits.get(self.next);
        self.next += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.bits.len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_ones() {
        let b = BitWords::zeros(1000);
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.len(), 1000);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_rejected() {
        let _ = BitWords::zeros(0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitWords::zeros(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            b.set(i, true);
            assert!(b.get(i), "bit {i}");
        }
        assert_eq!(b.count_ones(), 8);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 7);
    }

    #[test]
    fn flip_toggles() {
        let mut b = BitWords::zeros(70);
        b.flip(69);
        assert!(b.get(69));
        b.flip(69);
        assert!(!b.get(69));
    }

    #[test]
    fn from_fn_matches_get() {
        let b = BitWords::from_fn(200, |i| i % 3 == 0);
        for i in 0..200 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn from_words_masks_tail() {
        let b = BitWords::from_words(vec![u64::MAX, u64::MAX], 70);
        assert_eq!(b.count_ones(), 70);
    }

    #[test]
    fn try_from_words_validates_and_masks() {
        let b = BitWords::try_from_words(vec![u64::MAX, u64::MAX], 70).unwrap();
        assert_eq!(b.count_ones(), 70);
        assert_eq!(
            BitWords::try_from_words(vec![0], 70).unwrap_err(),
            HvError::DimensionMismatch {
                expected: 2,
                found: 1
            }
        );
        // from_words tolerates surplus words; the fallible path rejects
        // them (a snapshot with surplus words is corrupt, not sloppy).
        assert_eq!(
            BitWords::try_from_words(vec![0, 0, 0], 70).unwrap_err(),
            HvError::DimensionMismatch {
                expected: 2,
                found: 3
            }
        );
        assert_eq!(
            BitWords::try_from_words(vec![], 0).unwrap_err(),
            HvError::EmptyInput
        );
    }

    #[test]
    fn xor_is_elementwise() {
        let a = BitWords::from_fn(100, |i| i % 2 == 0);
        let b = BitWords::from_fn(100, |i| i % 4 == 0);
        let c = a.xor(&b);
        for i in 0..100 {
            assert_eq!(c.get(i), (i % 2 == 0) != (i % 4 == 0), "bit {i}");
        }
    }

    #[test]
    fn count_diff_equals_xor_popcount() {
        let a = BitWords::from_fn(333, |i| (i * 7) % 5 < 2);
        let b = BitWords::from_fn(333, |i| (i * 3) % 7 < 3);
        assert_eq!(a.count_diff(&b), a.xor(&b).count_ones());
    }

    #[test]
    fn negate_flips_all_within_len() {
        let mut b = BitWords::from_fn(70, |i| i < 10);
        b.negate();
        assert_eq!(b.count_ones(), 60);
        assert!(!b.get(0));
        assert!(b.get(69));
    }

    #[test]
    fn extract64_straddles_words() {
        let b = BitWords::from_fn(256, |i| i % 2 == 0);
        // Starting at bit 1 the alternating pattern reads as 0101…, i.e.
        // even result bits land on odd source bits (zeros).
        assert_eq!(b.extract64(1), 0xAAAA_AAAA_AAAA_AAAA);
        assert_eq!(b.extract64(2), 0x5555_5555_5555_5555);
    }

    #[test]
    fn extract64_matches_naive() {
        let b = BitWords::from_fn(100, |i| (i * 13 + 5) % 7 < 3);
        for start in 0..100 {
            let w = b.extract64(start);
            for j in 0..64 {
                let expect = b.get((start + j) % 100);
                assert_eq!((w >> j) & 1 == 1, expect, "start {start} bit {j}");
            }
        }
    }

    #[test]
    fn rotate_matches_naive_all_shifts() {
        let d = 130;
        let b = BitWords::from_fn(d, |i| (i * 17 + 3) % 11 < 5);
        for k in 0..d {
            let r = b.rotated(k);
            for i in 0..d {
                assert_eq!(r.get(i), b.get((i + k) % d), "k={k} i={i}");
            }
        }
    }

    #[test]
    fn xor_into_matches_xor() {
        let a = BitWords::from_fn(130, |i| i % 3 == 0);
        let b = BitWords::from_fn(130, |i| i % 5 == 0);
        let mut out = BitWords::zeros(130);
        a.xor_into(&b, &mut out);
        assert_eq!(out, a.xor(&b));
    }

    #[test]
    fn rotated_into_matches_rotated() {
        let a = BitWords::from_fn(130, |i| (i * 7) % 3 == 0);
        let mut out = BitWords::zeros(130);
        for k in [0, 1, 63, 64, 65, 129] {
            a.rotated_into(k, &mut out);
            assert_eq!(out, a.rotated(k), "k = {k}");
        }
    }

    #[test]
    fn copy_from_and_clear() {
        let a = BitWords::from_fn(70, |i| i % 2 == 0);
        let mut b = BitWords::zeros(70);
        b.copy_from(&a);
        assert_eq!(b, a);
        b.clear();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn rotate_by_len_is_identity() {
        let b = BitWords::from_fn(97, |i| i % 2 == 1);
        assert_eq!(b.rotated(97), b);
        assert_eq!(b.rotated(0), b);
    }

    #[test]
    fn rotate_composes() {
        let b = BitWords::from_fn(200, |i| (i * 31) % 13 < 6);
        assert_eq!(b.rotated(30).rotated(50), b.rotated(80));
    }

    #[test]
    fn iter_yields_all_bits() {
        let b = BitWords::from_fn(77, |i| i % 5 == 0);
        let collected: Vec<bool> = b.iter().collect();
        assert_eq!(collected.len(), 77);
        for (i, v) in collected.iter().enumerate() {
            assert_eq!(*v, i % 5 == 0);
        }
    }

    #[test]
    fn debug_is_nonempty() {
        let b = BitWords::zeros(8);
        assert!(!format!("{b:?}").is_empty());
    }
}
