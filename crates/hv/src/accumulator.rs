//! Bundling accumulator for majority-vote superposition.
//!
//! HDC *bundles* a set of bipolar hypervectors by elementwise addition
//! followed by `sign(·)`. A [`BundleAccumulator`] keeps the per-dimension
//! counters so vectors can be added **and removed** incrementally, which
//! is what class hypervector training and QuantHD-style retraining do.

use serde::{Deserialize, Serialize};

use crate::binary::BinaryHv;
use crate::dense::IntHv;
use crate::rng::HvRng;

/// Incremental bundler over bipolar hypervectors.
///
/// # Examples
///
/// ```
/// use hypervec::{BinaryHv, BundleAccumulator, HvRng};
///
/// let mut rng = HvRng::from_seed(9);
/// let a = rng.binary_hv(1000);
/// let mut acc = BundleAccumulator::new(1000);
/// acc.add(&a);
/// acc.add(&a);
/// acc.add(&rng.binary_hv(1000));
/// // the majority follows the repeated vector
/// assert!(acc.majority_ties_positive().hamming(&a) < 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BundleAccumulator {
    sums: IntHv,
    count: usize,
}

impl BundleAccumulator {
    /// Creates an empty accumulator of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        BundleAccumulator {
            sums: IntHv::zeros(dim),
            count: 0,
        }
    }

    /// Dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.sums.dim()
    }

    /// Number of vectors added minus vectors removed.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds a hypervector to the bundle.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add(&mut self, hv: &BinaryHv) {
        self.sums.add_binary(hv);
        self.count += 1;
    }

    /// Removes a previously-added hypervector from the bundle.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ or the accumulator is empty.
    pub fn remove(&mut self, hv: &BinaryHv) {
        assert!(self.count > 0, "cannot remove from an empty bundle");
        self.sums.sub_binary(hv);
        self.count -= 1;
    }

    /// Adds the bound pair `a × b` without materializing the product,
    /// mirroring [`IntHv::add_bound_pair`]. Prefer
    /// [`crate::BitSliceAccumulator`] when bundling many pairs — it does
    /// the same update word-parallel.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add_bound_pair(&mut self, a: &BinaryHv, b: &BinaryHv) {
        self.sums.add_bound_pair(a, b);
        self.count += 1;
    }

    /// Adds a non-binary (integer) encoding into the bundle, as non-binary
    /// class training does (paper Eq. 4).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add_int(&mut self, hv: &IntHv) {
        self.sums.add_assign_int(hv);
        self.count += 1;
    }

    /// Subtracts a non-binary encoding from the bundle.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ or the accumulator is empty.
    pub fn remove_int(&mut self, hv: &IntHv) {
        assert!(self.count > 0, "cannot remove from an empty bundle");
        self.sums.sub_assign_int(hv);
        self.count -= 1;
    }

    /// Borrows the raw per-dimension sums.
    #[must_use]
    pub fn sums(&self) -> &IntHv {
        &self.sums
    }

    /// Adds `weight × hv` to the sums **without** changing the bundle
    /// count — the retraining update of QuantHD-style HDC training
    /// (misclassified samples nudge two class accumulators).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn adjust_binary(&mut self, hv: &BinaryHv, weight: i32) {
        self.sums.add_binary_scaled(hv, weight);
    }

    /// Adds `weight × hv` (integer hypervector) to the sums without
    /// changing the bundle count.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn adjust_int(&mut self, hv: &IntHv, weight: i32) {
        let scaled = IntHv::from_fn(hv.dim(), |i| hv.get(i) * weight);
        self.sums.add_assign_int(&scaled);
    }

    /// Majority vote with random `sign(0)` tie-break.
    #[must_use]
    pub fn majority_with(&self, rng: &mut HvRng) -> BinaryHv {
        self.sums.sign_with(rng)
    }

    /// Majority vote mapping ties to +1 (deterministic ablation).
    #[must_use]
    pub fn majority_ties_positive(&self) -> BinaryHv {
        self.sums.sign_ties_positive()
    }
}

impl Extend<BinaryHv> for BundleAccumulator {
    fn extend<T: IntoIterator<Item = BinaryHv>>(&mut self, iter: T) {
        for hv in iter {
            self.add(&hv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_majority_is_all_ties() {
        let acc = BundleAccumulator::new(32);
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.majority_ties_positive(), BinaryHv::ones(32));
    }

    #[test]
    fn single_vector_majority_is_itself() {
        let mut rng = HvRng::from_seed(1);
        let hv = rng.binary_hv(500);
        let mut acc = BundleAccumulator::new(500);
        acc.add(&hv);
        assert_eq!(acc.majority_ties_positive(), hv);
        assert_eq!(acc.majority_with(&mut rng), hv);
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut rng = HvRng::from_seed(2);
        let a = rng.binary_hv(100);
        let b = rng.binary_hv(100);
        let mut acc = BundleAccumulator::new(100);
        acc.add(&a);
        acc.add(&b);
        acc.remove(&b);
        assert_eq!(acc.count(), 1);
        assert_eq!(acc.majority_ties_positive(), a);
    }

    #[test]
    fn majority_of_three_is_elementwise() {
        let mut rng = HvRng::from_seed(3);
        let vs: Vec<BinaryHv> = (0..3).map(|_| rng.binary_hv(200)).collect();
        let mut acc = BundleAccumulator::new(200);
        for v in &vs {
            acc.add(v);
        }
        let maj = acc.majority_ties_positive();
        for i in 0..200 {
            let s: i32 = vs.iter().map(|v| i32::from(v.polarity(i))).sum();
            assert_eq!(i32::from(maj.polarity(i)), s.signum(), "dim {i}");
        }
    }

    #[test]
    fn odd_count_has_no_ties() {
        let mut rng = HvRng::from_seed(4);
        let mut acc = BundleAccumulator::new(1000);
        for _ in 0..7 {
            acc.add(&rng.binary_hv(1000));
        }
        assert_eq!(acc.sums().count_zeros(), 0);
        // thus both tie-break policies agree
        assert_eq!(acc.majority_ties_positive(), acc.majority_with(&mut rng));
    }

    #[test]
    #[should_panic(expected = "empty bundle")]
    fn remove_from_empty_panics() {
        let mut acc = BundleAccumulator::new(8);
        let hv = BinaryHv::ones(8);
        acc.remove(&hv);
    }

    #[test]
    fn extend_adds_all() {
        let mut rng = HvRng::from_seed(5);
        let vs: Vec<BinaryHv> = (0..5).map(|_| rng.binary_hv(64)).collect();
        let mut acc = BundleAccumulator::new(64);
        acc.extend(vs);
        assert_eq!(acc.count(), 5);
    }

    #[test]
    fn adjust_changes_sums_not_count() {
        let mut rng = HvRng::from_seed(7);
        let hv = rng.binary_hv(64);
        let mut acc = BundleAccumulator::new(64);
        acc.add(&hv);
        acc.adjust_binary(&hv, 3);
        assert_eq!(acc.count(), 1);
        for i in 0..64 {
            assert_eq!(acc.sums().get(i), 4 * i32::from(hv.polarity(i)));
        }
        acc.adjust_int(&hv.to_int(), -4);
        assert_eq!(acc.sums(), &IntHv::zeros(64));
    }

    #[test]
    fn add_bound_pair_counts_and_sums() {
        let mut rng = HvRng::from_seed(8);
        let a = rng.binary_hv(96);
        let b = rng.binary_hv(96);
        let mut fused = BundleAccumulator::new(96);
        fused.add_bound_pair(&a, &b);
        let mut explicit = BundleAccumulator::new(96);
        explicit.add(&a.bind(&b));
        assert_eq!(fused, explicit);
        assert_eq!(fused.count(), 1);
    }

    #[test]
    fn int_accumulation_matches_binary() {
        let mut rng = HvRng::from_seed(6);
        let hv = rng.binary_hv(128);
        let mut a = BundleAccumulator::new(128);
        let mut b = BundleAccumulator::new(128);
        a.add(&hv);
        b.add_int(&hv.to_int());
        assert_eq!(a, b);
        b.remove_int(&hv.to_int());
        assert_eq!(b.count(), 0);
    }
}
