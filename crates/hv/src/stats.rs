//! Process-wide kernel scan counters.
//!
//! Always-on relaxed atomics ticked once per block sweep (never per
//! row), so the cost is one `fetch_add` amortized over thousands of
//! row dot products. The serving stack's metrics plane reads these to
//! report how many class-memory rows the kernels have scanned, split
//! by similarity domain (binary Hamming vs integer dot).

use std::sync::atomic::{AtomicU64, Ordering};

static HAMMING_ROWS: AtomicU64 = AtomicU64::new(0);
static DOT_ROWS: AtomicU64 = AtomicU64::new(0);

/// Records `n` row-scans through a Hamming row kernel.
#[inline]
pub fn record_hamming_rows(n: u64) {
    HAMMING_ROWS.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` row-scans through an integer dot row kernel.
#[inline]
pub fn record_dot_rows(n: u64) {
    DOT_ROWS.fetch_add(n, Ordering::Relaxed);
}

/// Total binary rows scanned by Hamming kernels since process start.
#[must_use]
pub fn hamming_rows() -> u64 {
    HAMMING_ROWS.load(Ordering::Relaxed)
}

/// Total integer rows scanned by dot kernels since process start.
#[must_use]
pub fn dot_rows() -> u64 {
    DOT_ROWS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let h0 = hamming_rows();
        let d0 = dot_rows();
        record_hamming_rows(5);
        record_dot_rows(7);
        assert!(hamming_rows() >= h0 + 5);
        assert!(dot_rows() >= d0 + 7);
    }
}
