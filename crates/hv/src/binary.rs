//! Bipolar (binary) hypervectors.
//!
//! A [`BinaryHv`] is a vector in `{+1, −1}^D` stored one bit per
//! dimension: a **set bit encodes −1**, a clear bit encodes +1. Under
//! this encoding the bipolar elementwise product is a word-wise XOR and
//! the Hamming distance is a popcount, which is what makes HDC fast on
//! commodity hardware and FPGAs.

use serde::{Deserialize, Serialize};

use crate::bitvec::BitWords;
use crate::dense::IntHv;

/// A bipolar hypervector in `{+1, −1}^D`, bit-packed.
///
/// # Examples
///
/// Binding (elementwise multiplication) is self-inverse:
///
/// ```
/// use hypervec::{BinaryHv, HvRng};
///
/// let mut rng = HvRng::from_seed(1);
/// let a = rng.binary_hv(1000);
/// let b = rng.binary_hv(1000);
/// let bound = a.bind(&b);
/// assert_eq!(bound.bind(&b), a);
/// assert_eq!(a.hamming(&a), 0);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BinaryHv {
    bits: BitWords,
}

impl BinaryHv {
    /// The all-`+1` hypervector of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn ones(dim: usize) -> Self {
        BinaryHv {
            bits: BitWords::zeros(dim),
        }
    }

    /// Builds a hypervector from a sign predicate: `f(i) == true` means
    /// dimension `i` is −1.
    #[must_use]
    pub fn from_fn(dim: usize, f: impl FnMut(usize) -> bool) -> Self {
        BinaryHv {
            bits: BitWords::from_fn(dim, f),
        }
    }

    /// Wraps raw bit storage (set bit ⇔ −1).
    #[must_use]
    pub fn from_bits(bits: BitWords) -> Self {
        BinaryHv { bits }
    }

    /// Builds from bipolar values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains anything other than ±1.
    #[must_use]
    pub fn from_polarities(values: &[i8]) -> Self {
        assert!(!values.is_empty(), "polarity slice must be non-empty");
        BinaryHv {
            bits: BitWords::from_fn(values.len(), |i| match values[i] {
                1 => false,
                -1 => true,
                v => panic!("polarity must be ±1, got {v} at index {i}"),
            }),
        }
    }

    /// Dimensionality `D`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.bits.len()
    }

    /// The bipolar value (+1 or −1) at dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    #[inline]
    #[must_use]
    pub fn polarity(&self, i: usize) -> i8 {
        if self.bits.get(i) {
            -1
        } else {
            1
        }
    }

    /// Flips the sign of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn flip(&mut self, i: usize) {
        self.bits.flip(i);
    }

    /// Number of −1 entries.
    #[must_use]
    pub fn count_negative(&self) -> usize {
        self.bits.count_ones()
    }

    /// Borrows the underlying bit storage.
    #[must_use]
    pub fn bits(&self) -> &BitWords {
        &self.bits
    }

    /// Elementwise bipolar product (the HDC *bind* operation, XOR on the
    /// bit representation).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn bind(&self, other: &Self) -> Self {
        BinaryHv {
            bits: self.bits.xor(&other.bits),
        }
    }

    /// In-place bind.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn bind_assign(&mut self, other: &Self) {
        self.bits.xor_assign(&other.bits);
    }

    /// Writes `self × other` into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn bind_into(&self, other: &Self, out: &mut Self) {
        self.bits.xor_into(&other.bits, &mut out.bits);
    }

    /// Overwrites `self` with a copy of `other` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn copy_from(&mut self, other: &Self) {
        self.bits.copy_from(&other.bits);
    }

    /// Resets every dimension to +1 (the bind identity), keeping the
    /// allocation — used to seed key-derivation scratch buffers.
    pub fn reset_to_ones(&mut self) {
        self.bits.clear();
    }

    /// Elementwise negation (multiplication by −1).
    #[must_use]
    pub fn negated(&self) -> Self {
        let mut bits = self.bits.clone();
        bits.negate();
        BinaryHv { bits }
    }

    /// Circular left rotation by `k` dimensions — the HDC permutation
    /// `ρ_k` of the paper (Sec. 2).
    #[must_use]
    pub fn rotated(&self, k: usize) -> Self {
        BinaryHv {
            bits: self.bits.rotated(k),
        }
    }

    /// Writes the rotation `ρ_k(self)` into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn rotated_into(&self, k: usize, out: &mut Self) {
        self.bits.rotated_into(k, &mut out.bits);
    }

    /// Hamming distance: number of dimensions where the two vectors
    /// disagree.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn hamming(&self, other: &Self) -> usize {
        self.bits.count_diff(&other.bits)
    }

    /// Hamming distance divided by the dimension, in `[0, 1]`.
    ///
    /// Orthogonal hypervectors sit at ≈ 0.5 (paper Eq. 1a).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn normalized_hamming(&self, other: &Self) -> f64 {
        self.hamming(other) as f64 / self.dim() as f64
    }

    /// Bipolar dot product: `D − 2·hamming`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn dot(&self, other: &Self) -> i64 {
        self.dim() as i64 - 2 * self.hamming(other) as i64
    }

    /// Cosine similarity between two bipolar vectors (their norms are
    /// both `√D`), in `[−1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn cosine(&self, other: &Self) -> f64 {
        self.dot(other) as f64 / self.dim() as f64
    }

    /// Widens to an integer hypervector with entries ±1.
    #[must_use]
    pub fn to_int(&self) -> IntHv {
        IntHv::from_fn(self.dim(), |i| i32::from(self.polarity(i)))
    }

    /// Iterator over bipolar values.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = i8> + '_ {
        self.bits.iter().map(|b| if b { -1i8 } else { 1i8 })
    }
}

impl std::ops::Mul for &BinaryHv {
    type Output = BinaryHv;

    /// Elementwise bipolar product; alias of [`BinaryHv::bind`].
    fn mul(self, rhs: &BinaryHv) -> BinaryHv {
        self.bind(rhs)
    }
}

impl std::ops::Neg for &BinaryHv {
    type Output = BinaryHv;

    fn neg(self) -> BinaryHv {
        self.negated()
    }
}

impl std::fmt::Debug for BinaryHv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let head: String = self
            .iter()
            .take(12)
            .map(|p| if p > 0 { '+' } else { '-' })
            .collect();
        let ellipsis = if self.dim() > 12 { "…" } else { "" };
        write!(f, "BinaryHv(D={}: {head}{ellipsis})", self.dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HvRng;

    fn rhv(seed: u64, d: usize) -> BinaryHv {
        HvRng::from_seed(seed).binary_hv(d)
    }

    #[test]
    fn ones_is_all_positive() {
        let hv = BinaryHv::ones(100);
        assert!(hv.iter().all(|p| p == 1));
        assert_eq!(hv.count_negative(), 0);
    }

    #[test]
    fn polarity_matches_from_polarities() {
        let vals: Vec<i8> = (0..67).map(|i| if i % 3 == 0 { -1 } else { 1 }).collect();
        let hv = BinaryHv::from_polarities(&vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(hv.polarity(i), v, "dim {i}");
        }
    }

    #[test]
    #[should_panic(expected = "polarity must be ±1")]
    fn from_polarities_rejects_zero() {
        let _ = BinaryHv::from_polarities(&[1, 0, -1]);
    }

    #[test]
    fn bind_is_elementwise_product() {
        let a = rhv(1, 257);
        let b = rhv(2, 257);
        let c = a.bind(&b);
        for i in 0..257 {
            assert_eq!(
                i32::from(c.polarity(i)),
                i32::from(a.polarity(i)) * i32::from(b.polarity(i))
            );
        }
    }

    #[test]
    fn bind_self_is_identity_vector() {
        let a = rhv(3, 500);
        let id = a.bind(&a);
        assert_eq!(id, BinaryHv::ones(500));
    }

    #[test]
    fn mul_operator_matches_bind() {
        let a = rhv(4, 128);
        let b = rhv(5, 128);
        assert_eq!(&a * &b, a.bind(&b));
    }

    #[test]
    fn negation_doubles_distance_to_half() {
        let a = rhv(6, 1000);
        let n = a.negated();
        assert_eq!(a.hamming(&n), 1000);
        assert_eq!((-&a), n);
    }

    #[test]
    fn into_variants_match_allocating_ops() {
        let a = rhv(20, 257);
        let b = rhv(21, 257);
        let mut out = BinaryHv::ones(257);
        a.bind_into(&b, &mut out);
        assert_eq!(out, a.bind(&b));
        a.rotated_into(100, &mut out);
        assert_eq!(out, a.rotated(100));
        out.copy_from(&b);
        assert_eq!(out, b);
        out.reset_to_ones();
        assert_eq!(out, BinaryHv::ones(257));
    }

    #[test]
    fn rotation_preserves_population() {
        let a = rhv(7, 1000);
        let r = a.rotated(137);
        assert_eq!(a.count_negative(), r.count_negative());
    }

    #[test]
    fn rotation_decorrelates() {
        let a = rhv(8, 10_000);
        let r = a.rotated(1);
        let d = a.normalized_hamming(&r);
        assert!((d - 0.5).abs() < 0.05, "distance {d}");
    }

    #[test]
    fn dot_and_cosine_consistent() {
        let a = rhv(9, 2048);
        let b = rhv(10, 2048);
        let naive: i64 = (0..2048)
            .map(|i| i64::from(a.polarity(i)) * i64::from(b.polarity(i)))
            .sum();
        assert_eq!(a.dot(&b), naive);
        assert!((a.cosine(&b) - naive as f64 / 2048.0).abs() < 1e-12);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_is_symmetric_and_triangle() {
        let a = rhv(11, 300);
        let b = rhv(12, 300);
        let c = rhv(13, 300);
        assert_eq!(a.hamming(&b), b.hamming(&a));
        assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
    }

    #[test]
    fn to_int_roundtrip_values() {
        let a = rhv(14, 99);
        let int = a.to_int();
        for i in 0..99 {
            assert_eq!(int.get(i), i32::from(a.polarity(i)));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bind_dimension_mismatch_panics() {
        let a = rhv(15, 64);
        let b = rhv(16, 65);
        let _ = a.bind(&b);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", BinaryHv::ones(4)).is_empty());
    }
}
