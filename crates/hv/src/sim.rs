//! Similarity metrics shared by inference and attacks.
//!
//! Binary HDC compares hypervectors by Hamming distance; non-binary HDC
//! by cosine similarity (paper Sec. 2, Inference). [`Similarity`] lets
//! callers select the metric at runtime while keeping one code path.
//! Both metrics bottom out in [`kernel`](crate::kernel) primitives
//! (fused XOR-popcount for Hamming, the integer dot product for
//! cosine), so comparisons run on the active SIMD backend and are
//! bit-identical across backends.

use crate::binary::BinaryHv;
use crate::dense::IntHv;
use crate::error::HvError;

/// Which similarity metric a comparison should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Similarity {
    /// Normalized Hamming distance converted to a similarity
    /// (`1 − 2·hamming/D`, equal to bipolar cosine). Used by binary HDC.
    #[default]
    Hamming,
    /// Cosine of the angle between integer hypervectors. Used by
    /// non-binary HDC.
    Cosine,
}

impl Similarity {
    /// Similarity between two bipolar hypervectors, in `[−1, 1]`
    /// (higher is more similar for both metrics).
    ///
    /// Both arms intentionally compute the same quantity: for bipolar
    /// vectors the two metrics are *exactly* equivalent, not merely
    /// correlated. Each disagreeing dimension contributes `−1` to the
    /// dot product and each agreeing one `+1`, so
    /// `dot = D − 2·hamming`, both norms are `√D`, and therefore
    ///
    /// ```text
    /// cosine = dot / D = 1 − 2·hamming / D
    /// ```
    ///
    /// The fused popcount search kernel
    /// ([`ShardedClassMemory`](crate::ShardedClassMemory)) relies on
    /// this identity to serve Hamming *and* cosine requests from one
    /// integer distance; `binary_hamming_cosine_identity` in the tests
    /// pins it bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn binary(&self, a: &BinaryHv, b: &BinaryHv) -> f64 {
        match self {
            // Normalized Hamming reported on the similarity scale:
            // 1 − 2·h/D, which *is* the bipolar cosine (see above).
            Similarity::Hamming => a.cosine(b),
            Similarity::Cosine => a.cosine(b),
        }
    }

    /// Similarity between two integer hypervectors.
    ///
    /// For [`Similarity::Hamming`] the vectors are compared through their
    /// signs (ties counted as +1); for [`Similarity::Cosine`] the full
    /// magnitudes are used.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn int(&self, a: &IntHv, b: &IntHv) -> f64 {
        match self {
            Similarity::Hamming => a.sign_ties_positive().cosine(&b.sign_ties_positive()),
            Similarity::Cosine => a.cosine(b),
        }
    }
}

/// Index of the maximum value in `scores`, lowest index on ties.
///
/// # Errors
///
/// Returns [`HvError::EmptyInput`] on an empty slice.
pub fn argmax(scores: &[f64]) -> Result<usize, HvError> {
    if scores.is_empty() {
        return Err(HvError::EmptyInput);
    }
    let mut best = 0usize;
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if s > scores[best] {
            best = i;
        }
    }
    Ok(best)
}

/// Index of the minimum value in `scores`, lowest index on ties.
///
/// # Errors
///
/// Returns [`HvError::EmptyInput`] on an empty slice.
pub fn argmin(scores: &[f64]) -> Result<usize, HvError> {
    if scores.is_empty() {
        return Err(HvError::EmptyInput);
    }
    let mut best = 0usize;
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if s < scores[best] {
            best = i;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HvRng;

    #[test]
    fn binary_similarity_is_cosine() {
        let mut rng = HvRng::from_seed(1);
        let a = rng.binary_hv(1000);
        let b = rng.binary_hv(1000);
        let s = Similarity::Hamming.binary(&a, &b);
        assert!((s - a.cosine(&b)).abs() < 1e-12);
        assert!((Similarity::Hamming.binary(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn binary_hamming_cosine_identity() {
        // Pin the bipolar identity `1 − 2·hamming/D == cosine` the fused
        // popcount kernel depends on, bit-for-bit, at a non-word-aligned
        // dimension and at the extremes.
        let d = 130usize;
        let mut rng = HvRng::from_seed(42);
        let a = rng.binary_hv(d);
        let b = rng.binary_hv(d);
        let h = a.hamming(&b);
        // The form the kernel computes from a popcount distance is
        // bit-identical to the cosine path …
        let from_hamming = (d as i64 - 2 * h as i64) as f64 / d as f64;
        assert_eq!(from_hamming.to_bits(), a.cosine(&b).to_bits());
        // … and it equals the textbook `1 − 2·h/D` up to rounding.
        let algebraic = 1.0 - 2.0 * (h as f64) / (d as f64);
        assert!((from_hamming - algebraic).abs() < 1e-15);
        assert_eq!(Similarity::Hamming.binary(&a, &b), from_hamming);
        assert_eq!(Similarity::Cosine.binary(&a, &b), from_hamming);
        // Extremes: identical vectors and full negation.
        assert_eq!(Similarity::Hamming.binary(&a, &a), 1.0);
        assert_eq!(Similarity::Hamming.binary(&a, &a.negated()), -1.0);
    }

    #[test]
    fn int_cosine_uses_magnitudes() {
        let a = IntHv::from_values(vec![3, 0, 4]);
        let b = IntHv::from_values(vec![3, 0, 4]);
        assert!((Similarity::Cosine.int(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn int_hamming_uses_signs_only() {
        let a = IntHv::from_values(vec![100, -1, 2, -50]);
        let b = IntHv::from_values(vec![1, -100, 50, -2]);
        assert!((Similarity::Hamming.int(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_and_argmin() {
        let v = [0.1, 0.9, 0.9, -3.0];
        assert_eq!(argmax(&v).unwrap(), 1);
        assert_eq!(argmin(&v).unwrap(), 3);
        assert!(argmax(&[]).is_err());
        assert!(argmin(&[]).is_err());
    }

    #[test]
    fn default_is_hamming() {
        assert_eq!(Similarity::default(), Similarity::Hamming);
    }
}
