//! Sharded, word-parallel associative search over a set of class rows.
//!
//! Inference, the attack oracle's scoring loop and the serving path all
//! reduce to the same kernel: compare a query hypervector against every
//! row of a class memory and take the best match. The one-row-at-a-time
//! scan ([`ItemMemory::nearest`](crate::ItemMemory::nearest),
//! `classify_binary_hv`) touches each packed row once per query with no
//! reuse; [`ShardedClassMemory`] restructures the rows for batch
//! throughput:
//!
//! * **Packed planes** — binary rows are stored as contiguous `u64`
//!   words, *block-major*: the words of a dimension block are laid out
//!   row after row, so scanning all `C` rows over one block is a linear
//!   walk through a few KiB.
//! * **Dimension blocking** — blocks of [`BLOCK_WORDS`] words keep the
//!   row data for one block cache-resident while a whole chunk of
//!   queries streams over it; distances accumulate in a per-worker
//!   `queries × rows` matrix.
//! * **Sharding** — batches shard across queries on
//!   [`par`] scoped threads (each worker owns its distance
//!   matrix); single-query searches over very large row counts shard
//!   across rows instead and merge deterministically.
//!
//! Every kernel is **bit-identical** with the scalar reference scan:
//! binary distances are exact popcounts, integer scores reproduce
//! [`IntHv::cosine`](crate::IntHv::cosine) operation-for-operation
//! (same i64 dot, same `√·` and multiplication order), and ties resolve
//! to the lowest row index exactly like the scalar argmin/argmax loops.

use crate::binary::BinaryHv;
use crate::dense::IntHv;
use crate::error::HvError;
use crate::kernel::{self, Kernel};
use crate::par;

/// Words per dimension block: 64 words = 4096 dimensions = 512 B per
/// row per block, so even ~100 classes stay L2-resident per block.
pub const BLOCK_WORDS: usize = 64;

/// Dimensions per integer plane block: 1024 × 4 B = 4 KiB per row per
/// block in the i32 planes (2 KiB in the i16 sidecar), the int twin of
/// [`BLOCK_WORDS`]. The pruned coarse pass consumes whole leading
/// blocks, so this is also the granularity of probe truncation.
pub const INT_BLOCK_DIMS: usize = 1024;

/// Largest magnitude representable in the i16 sidecar planes. One short
/// of `i16::MIN` on the negative side: the AVX2 `vpmaddwd` kernel sums
/// two products into an i32 lane, and `2 · 32767²` fits i32 while
/// `2 · 32768²` does not.
pub(crate) const I16_LIMIT: i32 = 32767;

/// Row count above which a single-query search shards across rows.
const ROW_SHARD_MIN: usize = 4096;

/// Minimum queries per worker chunk in the batch kernels.
const QUERY_CHUNK: usize = 4;

/// Queries per cache tile in the int batch kernel. The int path is
/// memory-bound on query bytes (a 10k-dim i32 query is 40 KiB); tiling
/// lets the norm dot pull each query from RAM once and the narrowing +
/// strided sweep consume it while still cached, instead of streaming
/// the whole chunk's queries through three separate phases.
const INT_QUERY_TILE: usize = 8;

/// Truncates `values` into the i16 sidecar domain, reporting whether
/// the narrowing was lossless (every value within `±I16_LIMIT`). The
/// clamp round-trip compiles to pminsd/pmaxsd + a flat OR reduction, so
/// the check vectorizes alongside the truncating store.
fn narrow_into(values: &[i32], out: &mut [i16]) -> bool {
    let mut escaped = 0i32;
    for (o, &v) in out.iter_mut().zip(values) {
        escaped |= v ^ v.clamp(-I16_LIMIT, I16_LIMIT);
        *o = v as i16;
    }
    escaped == 0
}

/// A class memory packed for batched associative search.
///
/// Binary rows are always present (pushed via [`Self::from_rows`] /
/// [`Self::push`]); integer rows for cosine search are attached with
/// [`Self::set_int_rows`]. Rows can be refreshed in place
/// ([`Self::update_row`], [`Self::update_int_row`]) so a training loop
/// can keep a packed mirror in sync without rebuilding it.
///
/// # Examples
///
/// ```
/// use hypervec::{HvRng, ShardedClassMemory};
///
/// let mut rng = HvRng::from_seed(7);
/// let rows: Vec<_> = (0..4).map(|_| rng.binary_hv(10_000)).collect();
/// let mem = ShardedClassMemory::from_rows(&rows)?;
/// let queries: Vec<&_> = rows.iter().collect();
/// let hits = mem.search_batch_binary(&queries)?;
/// assert_eq!(hits.best_rows(), &[0, 1, 2, 3]);
/// # Ok::<(), hypervec::HvError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedClassMemory {
    dim: usize,
    words_per_row: usize,
    n_rows: usize,
    /// Block `b` covers words `[b·BLOCK_WORDS, …)` of every row; within
    /// a block the words are row-major (`row · block_len + word`).
    bin_blocks: Vec<Vec<u64>>,
    /// Integer rows as dimension-blocked planes mirroring `bin_blocks`:
    /// block `b` covers dimensions `[b·INT_BLOCK_DIMS, …)` of every row,
    /// row-major within the block (`row · block_len + offset`). Empty
    /// until [`Self::set_int_rows`].
    int_blocks: Vec<Vec<i32>>,
    /// i16 sidecar of `int_blocks` (same layout), every value clamped to
    /// `[-I16_LIMIT, I16_LIMIT]`. When `int_fits_i16` the clamp never
    /// fired and this plane is a lossless narrowing; it always serves as
    /// the saturating quantized coarse plane of pruned top-k.
    int_i16_blocks: Vec<Vec<i16>>,
    /// Whether every stored integer value fits the i16 sidecar exactly
    /// (monotone false under in-place row updates).
    int_fits_i16: bool,
    /// Euclidean norm of each integer row, precomputed for cosine.
    int_norms: Vec<f64>,
}

/// Result of a batch search: top-1 row and the full score vector for
/// every query, in query order.
///
/// Scores are always "higher is more similar": the bipolar cosine
/// `(D − 2·hamming)/D` for binary queries, cosine similarity for
/// integer queries.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSearchResult {
    best: Vec<usize>,
    /// Flattened query-major `len × n_rows` score matrix — one
    /// allocation for the whole batch instead of one `Vec` per query.
    scores: Vec<f64>,
    n_rows: usize,
}

impl BatchSearchResult {
    /// Number of queries searched.
    #[must_use]
    pub fn len(&self) -> usize {
        self.best.len()
    }

    /// Whether the batch was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }

    /// Best-matching row for query `q` (lowest index on ties).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn best(&self, q: usize) -> usize {
        self.best[q]
    }

    /// Best-matching row per query, in query order.
    #[must_use]
    pub fn best_rows(&self) -> &[usize] {
        &self.best
    }

    /// Full per-row score vector for query `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn scores(&self, q: usize) -> &[f64] {
        &self.scores[q * self.n_rows..(q + 1) * self.n_rows]
    }

    /// Consumes the result, keeping only the top-1 row per query.
    #[must_use]
    pub fn into_best_rows(self) -> Vec<usize> {
        self.best
    }
}

/// Per-worker-chunk intermediate produced by the kernels: top-1 rows
/// and the flattened score rows for a contiguous query range.
struct ChunkHits {
    best: Vec<usize>,
    scores: Vec<f64>,
}

fn assemble(chunks: Vec<ChunkHits>, n_rows: usize, n_queries: usize) -> BatchSearchResult {
    let mut best = Vec::with_capacity(n_queries);
    let mut scores = Vec::with_capacity(n_queries * n_rows);
    for c in chunks {
        best.extend(c.best);
        scores.extend(c.scores);
    }
    BatchSearchResult {
        best,
        scores,
        n_rows,
    }
}

impl ShardedClassMemory {
    /// Creates an empty memory for rows of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "class memory dimension must be positive");
        let words_per_row = dim.div_ceil(64);
        let n_blocks = words_per_row.div_ceil(BLOCK_WORDS);
        ShardedClassMemory {
            dim,
            words_per_row,
            n_rows: 0,
            bin_blocks: vec![Vec::new(); n_blocks],
            int_blocks: Vec::new(),
            int_i16_blocks: Vec::new(),
            int_fits_i16: false,
            int_norms: Vec::new(),
        }
    }

    /// Packs existing rows.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyInput`] when `rows` is empty, or
    /// [`HvError::RowDimensionMismatch`] naming the first row whose
    /// dimension disagrees with row 0.
    pub fn from_rows(rows: &[BinaryHv]) -> Result<Self, HvError> {
        let first = rows.first().ok_or(HvError::EmptyInput)?;
        let mut mem = Self::new(first.dim());
        mem.reserve(rows.len());
        for row in rows {
            mem.push(row)?;
        }
        Ok(mem)
    }

    /// Reserves plane capacity for `additional` more rows, so bulk
    /// ingest (million-row corpora) appends without repeatedly
    /// reallocating the per-block word vectors.
    pub fn reserve(&mut self, additional: usize) {
        for (b, block) in self.bin_blocks.iter_mut().enumerate() {
            let start = b * BLOCK_WORDS;
            let end = (start + BLOCK_WORDS).min(self.words_per_row);
            block.reserve(additional * (end - start));
        }
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::RowDimensionMismatch`] (carrying the index the
    /// row would have had) if the row's dimension disagrees.
    pub fn push(&mut self, row: &BinaryHv) -> Result<(), HvError> {
        if row.dim() != self.dim {
            return Err(HvError::RowDimensionMismatch {
                row: self.n_rows,
                expected: self.dim,
                found: row.dim(),
            });
        }
        let words = row.bits().words();
        for (b, block) in self.bin_blocks.iter_mut().enumerate() {
            let start = b * BLOCK_WORDS;
            let end = (start + BLOCK_WORDS).min(self.words_per_row);
            block.extend_from_slice(&words[start..end]);
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Overwrites binary row `j` in place (training keeps the packed
    /// mirror in sync after an accumulator update).
    ///
    /// # Errors
    ///
    /// Returns [`HvError::IndexOutOfRange`] for a bad index or
    /// [`HvError::RowDimensionMismatch`] for a bad dimension.
    pub fn update_row(&mut self, j: usize, row: &BinaryHv) -> Result<(), HvError> {
        if j >= self.n_rows {
            return Err(HvError::IndexOutOfRange {
                index: j,
                len: self.n_rows,
            });
        }
        if row.dim() != self.dim {
            return Err(HvError::RowDimensionMismatch {
                row: j,
                expected: self.dim,
                found: row.dim(),
            });
        }
        let words = row.bits().words();
        for (b, block) in self.bin_blocks.iter_mut().enumerate() {
            let start = b * BLOCK_WORDS;
            let end = (start + BLOCK_WORDS).min(self.words_per_row);
            let len = end - start;
            block[j * len..(j + 1) * len].copy_from_slice(&words[start..end]);
        }
        Ok(())
    }

    /// Attaches (or replaces) the integer rows backing cosine search.
    /// Must supply exactly one row per binary row.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::DimensionMismatch`] if the row *count*
    /// disagrees with the binary rows, or
    /// [`HvError::RowDimensionMismatch`] naming the offending row on a
    /// dimension disagreement.
    pub fn set_int_rows(&mut self, rows: &[IntHv]) -> Result<(), HvError> {
        if rows.len() != self.n_rows {
            return Err(HvError::DimensionMismatch {
                expected: self.n_rows,
                found: rows.len(),
            });
        }
        for (j, row) in rows.iter().enumerate() {
            if row.dim() != self.dim {
                return Err(HvError::RowDimensionMismatch {
                    row: j,
                    expected: self.dim,
                    found: row.dim(),
                });
            }
        }
        let n_blocks = self.dim.div_ceil(INT_BLOCK_DIMS);
        self.int_blocks = vec![Vec::new(); n_blocks];
        self.int_i16_blocks = vec![Vec::new(); n_blocks];
        self.int_fits_i16 = true;
        for (b, (block, narrow)) in self
            .int_blocks
            .iter_mut()
            .zip(self.int_i16_blocks.iter_mut())
            .enumerate()
        {
            let start = b * INT_BLOCK_DIMS;
            let end = (start + INT_BLOCK_DIMS).min(self.dim);
            block.reserve(rows.len() * (end - start));
            narrow.reserve(rows.len() * (end - start));
            for row in rows {
                let vals = &row.values()[start..end];
                block.extend_from_slice(vals);
                for &v in vals {
                    self.int_fits_i16 &= (-I16_LIMIT..=I16_LIMIT).contains(&v);
                    narrow.push(v.clamp(-I16_LIMIT, I16_LIMIT) as i16);
                }
            }
        }
        self.int_norms.clear();
        self.int_norms.extend(rows.iter().map(IntHv::norm));
        Ok(())
    }

    /// Overwrites integer row `j` in place, refreshing its norm.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::IndexOutOfRange`] if `j` is out of range (or
    /// no integer rows are attached), or
    /// [`HvError::RowDimensionMismatch`] for a bad dimension.
    pub fn update_int_row(&mut self, j: usize, row: &IntHv) -> Result<(), HvError> {
        if j >= self.int_norms.len() {
            return Err(HvError::IndexOutOfRange {
                index: j,
                len: self.int_norms.len(),
            });
        }
        if row.dim() != self.dim {
            return Err(HvError::RowDimensionMismatch {
                row: j,
                expected: self.dim,
                found: row.dim(),
            });
        }
        for (b, (block, narrow)) in self
            .int_blocks
            .iter_mut()
            .zip(self.int_i16_blocks.iter_mut())
            .enumerate()
        {
            let start = b * INT_BLOCK_DIMS;
            let end = (start + INT_BLOCK_DIMS).min(self.dim);
            let len = end - start;
            let vals = &row.values()[start..end];
            block[j * len..(j + 1) * len].copy_from_slice(vals);
            for (n, &v) in narrow[j * len..(j + 1) * len].iter_mut().zip(vals) {
                self.int_fits_i16 &= (-I16_LIMIT..=I16_LIMIT).contains(&v);
                *n = v.clamp(-I16_LIMIT, I16_LIMIT) as i16;
            }
        }
        self.int_norms[j] = row.norm();
        Ok(())
    }

    /// Hypervector dimension `D`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows `C`.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Whether integer rows are attached (cosine search available).
    #[must_use]
    pub fn has_int_rows(&self) -> bool {
        !self.int_norms.is_empty()
    }

    /// The packed binary plane blocks (block-major; see the field docs).
    /// Crate-internal: the top-k module scans these directly.
    pub(crate) fn bin_blocks(&self) -> &[Vec<u64>] {
        &self.bin_blocks
    }

    /// Packed words per row (`⌈dim / 64⌉`).
    pub(crate) fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The blocked integer planes (block-major; see the field docs).
    /// Crate-internal: the top-k module scans these directly.
    pub(crate) fn int_blocks(&self) -> &[Vec<i32>] {
        &self.int_blocks
    }

    /// The i16 sidecar planes (same layout as [`Self::int_blocks`]).
    pub(crate) fn int_i16_blocks(&self) -> &[Vec<i16>] {
        &self.int_i16_blocks
    }

    /// Whether the i16 sidecar is a lossless narrowing of the i32
    /// planes (no clamp fired).
    pub(crate) fn int_fits_i16(&self) -> bool {
        self.int_fits_i16
    }

    /// `(start_dim, block_len)` of integer plane block `b`.
    pub(crate) fn int_block_range(&self, b: usize) -> (usize, usize) {
        let start = b * INT_BLOCK_DIMS;
        let end = (start + INT_BLOCK_DIMS).min(self.dim);
        (start, end - start)
    }

    /// Narrows a query to the i16 sidecar domain when that narrowing is
    /// lossless (every value within `±I16_LIMIT`); `None` otherwise.
    pub(crate) fn narrow_query_i16(values: &[i32]) -> Option<Vec<i16>> {
        let mut narrowed = vec![0i16; values.len()];
        narrow_into(values, &mut narrowed).then_some(narrowed)
    }

    pub(crate) fn check_query_dim(&self, dim: usize) -> Result<(), HvError> {
        if dim != self.dim {
            return Err(HvError::DimensionMismatch {
                expected: self.dim,
                found: dim,
            });
        }
        Ok(())
    }

    /// Hamming distances from `q_words` to every row, accumulated into
    /// `dist` (must be zeroed, length `n_rows`) via `k`'s row-scan
    /// kernel.
    pub(crate) fn hamming_into(&self, k: &Kernel, q_words: &[u64], dist: &mut [u32]) {
        for (b, block) in self.bin_blocks.iter().enumerate() {
            let start = b * BLOCK_WORDS;
            let end = (start + BLOCK_WORDS).min(self.words_per_row);
            (k.hamming_rows)(&q_words[start..end], block, dist);
        }
        crate::stats::record_hamming_rows(dist.len() as u64);
    }

    /// Bipolar-cosine score of a Hamming distance — identical floating-
    /// point sequence to [`BinaryHv::cosine`] (`dot / D` with
    /// `dot = D − 2·h`).
    pub(crate) fn binary_score(&self, hamming: u32) -> f64 {
        (self.dim as i64 - 2 * i64::from(hamming)) as f64 / self.dim as f64
    }

    /// Top-1 search for one binary query: `(row, hamming)` with ties to
    /// the lowest index — bit-identical to the scalar per-row scan.
    /// Shards across rows when the memory is large enough to benefit.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyInput`] when the memory has no rows, or
    /// [`HvError::DimensionMismatch`] on dimension disagreement.
    pub fn search_binary(&self, query: &BinaryHv) -> Result<(usize, usize), HvError> {
        if self.n_rows == 0 {
            return Err(HvError::EmptyInput);
        }
        self.check_query_dim(query.dim())?;
        let k = kernel::active();
        let q_words = query.bits().words();
        if self.n_rows < ROW_SHARD_MIN {
            let mut dist = vec![0u32; self.n_rows];
            self.hamming_into(k, q_words, &mut dist);
            let mut best = (0usize, u32::MAX);
            for (r, &d) in dist.iter().enumerate() {
                if d < best.1 {
                    best = (r, d);
                }
            }
            return Ok((best.0, best.1 as usize));
        }
        // Row-sharded: each worker scans a contiguous row range and the
        // per-chunk minima merge by (distance, index) — deterministic.
        let minima: Vec<(u32, usize)> = par::par_chunk_map(self.n_rows, 256, |range| {
            let mut best: Option<(u32, usize)> = None;
            for r in range {
                let mut d = 0u32;
                for (b, block) in self.bin_blocks.iter().enumerate() {
                    let start = b * BLOCK_WORDS;
                    let end = (start + BLOCK_WORDS).min(self.words_per_row);
                    let len = end - start;
                    let row = &block[r * len..(r + 1) * len];
                    d += (k.hamming)(&q_words[start..end], row) as u32;
                }
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, r));
                }
            }
            best.into_iter().collect()
        });
        let (d, r) = minima
            .into_iter()
            .min()
            .expect("non-empty memory yields at least one chunk minimum");
        Ok((r, d as usize))
    }

    /// Batched binary search: top-1 row and full score vector for every
    /// query, sharded across queries with per-worker distance matrices.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyInput`] when the memory has no rows, or
    /// [`HvError::DimensionMismatch`] if any query disagrees on
    /// dimension.
    pub fn search_batch_binary(&self, queries: &[&BinaryHv]) -> Result<BatchSearchResult, HvError> {
        self.search_batch_binary_with(kernel::active(), queries)
    }

    /// [`Self::search_batch_binary`] on an explicit kernel backend —
    /// bit-identical results for every backend; benchmarks and the
    /// equivalence tests use this to compare backends head to head.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::search_batch_binary`].
    pub fn search_batch_binary_with(
        &self,
        k: &Kernel,
        queries: &[&BinaryHv],
    ) -> Result<BatchSearchResult, HvError> {
        if self.n_rows == 0 {
            return Err(HvError::EmptyInput);
        }
        for q in queries {
            self.check_query_dim(q.dim())?;
        }
        let n_rows = self.n_rows;
        let hits = par::par_chunk_map(queries.len(), QUERY_CHUNK, |range| {
            // One distance matrix per worker; block-major accumulation
            // keeps each row block hot across the whole query chunk.
            let chunk = range.len();
            let mut dist = vec![0u32; chunk * n_rows];
            for (b, block) in self.bin_blocks.iter().enumerate() {
                let start = b * BLOCK_WORDS;
                let end = (start + BLOCK_WORDS).min(self.words_per_row);
                for (qi, q) in range.clone().enumerate() {
                    let q_block = &queries[q].bits().words()[start..end];
                    let drow = &mut dist[qi * n_rows..(qi + 1) * n_rows];
                    (k.hamming_rows)(q_block, block, drow);
                }
            }
            crate::stats::record_hamming_rows((chunk * n_rows) as u64);
            let mut best_rows = Vec::with_capacity(chunk);
            let mut scores = Vec::with_capacity(chunk * n_rows);
            for qi in 0..chunk {
                let drow = &dist[qi * n_rows..(qi + 1) * n_rows];
                let mut best = (0usize, u32::MAX);
                for (r, &d) in drow.iter().enumerate() {
                    if d < best.1 {
                        best = (r, d);
                    }
                }
                best_rows.push(best.0);
                scores.extend(drow.iter().map(|&d| self.binary_score(d)));
            }
            vec![ChunkHits {
                best: best_rows,
                scores,
            }]
        });
        Ok(assemble(hits, n_rows, queries.len()))
    }

    /// Exact i64 dot of integer row `r` against query values,
    /// accumulated block by block over the blocked planes. Wrapping
    /// integer addition commutes, so the blocked sum is bit-identical
    /// to the contiguous-row reduction.
    pub(crate) fn int_row_dot(&self, k: &Kernel, r: usize, q_values: &[i32]) -> i64 {
        let mut dot = 0i64;
        for (b, block) in self.int_blocks.iter().enumerate() {
            let (start, len) = self.int_block_range(b);
            let row = &block[r * len..(r + 1) * len];
            dot = dot.wrapping_add((k.dot_i32)(row, &q_values[start..start + len]));
        }
        dot
    }

    /// Cosine score from a precomputed exact dot — identical floating-
    /// point sequence to [`IntHv::cosine`] (`dot / (‖row‖·‖q‖)`, 0.0 on
    /// a zero denominator).
    pub(crate) fn int_score_of_dot(&self, r: usize, dot: i64, q_norm: f64) -> f64 {
        let denom = self.int_norms[r] * q_norm;
        if denom == 0.0 {
            0.0
        } else {
            dot as f64 / denom
        }
    }

    /// Cosine score of integer row `r` against a query — identical
    /// floating-point sequence to `row.cosine(query)` (the dot is an
    /// exact integer regardless of backend).
    pub(crate) fn int_score(&self, k: &Kernel, r: usize, query: &IntHv, q_norm: f64) -> f64 {
        let dot = self.int_row_dot(k, r, query.values());
        self.int_score_of_dot(r, dot, q_norm)
    }

    /// Top-1 cosine search for one integer query: `(row, score)` with
    /// ties to the lowest index.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyInput`] when no integer rows are
    /// attached, or [`HvError::DimensionMismatch`] on dimension
    /// disagreement.
    pub fn search_int(&self, query: &IntHv) -> Result<(usize, f64), HvError> {
        if !self.has_int_rows() {
            return Err(HvError::EmptyInput);
        }
        self.check_query_dim(query.dim())?;
        let k = kernel::active();
        let q_norm = query.norm();
        let mut best = (0usize, f64::NEG_INFINITY);
        for r in 0..self.n_rows {
            let s = self.int_score(k, r, query, q_norm);
            if s > best.1 {
                best = (r, s);
            }
        }
        Ok(best)
    }

    /// Batched cosine search over the attached integer rows, sharded
    /// across queries.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyInput`] when no integer rows are
    /// attached, or [`HvError::DimensionMismatch`] if any query
    /// disagrees on dimension.
    pub fn search_batch_int(&self, queries: &[&IntHv]) -> Result<BatchSearchResult, HvError> {
        self.search_batch_int_with(kernel::active(), queries)
    }

    /// [`Self::search_batch_int`] on an explicit kernel backend —
    /// bit-identical results for every backend.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::search_batch_int`].
    pub fn search_batch_int_with(
        &self,
        k: &Kernel,
        queries: &[&IntHv],
    ) -> Result<BatchSearchResult, HvError> {
        if !self.has_int_rows() {
            return Err(HvError::EmptyInput);
        }
        for q in queries {
            self.check_query_dim(q.dim())?;
        }
        let n_rows = self.n_rows;
        let hits = par::par_chunk_map(queries.len(), QUERY_CHUNK, |range| {
            // Queries go through in tiles of [`INT_QUERY_TILE`]: a 40 KiB
            // i32 query is streamed from memory exactly once (the norm
            // dot), then its lossless i16 narrowing — when the memory's
            // clamp never fired and the query fits — is written and
            // consumed while the data is still cache-hot. The vpmaddwd
            // sidecar products are identical to the i32 ones, so the
            // dots (and every float score derived from them) are
            // bit-for-bit the same on either plane. Within a tile the
            // sweep is block-major, keeping each row block hot across
            // the tile's queries.
            let chunk = range.len();
            let tile_cap = chunk.min(INT_QUERY_TILE);
            let mut best_rows = Vec::with_capacity(chunk);
            let mut scores = Vec::with_capacity(chunk * n_rows);
            let mut dots = vec![0i64; tile_cap * n_rows];
            let mut narrowed = vec![0i16; tile_cap * self.dim];
            let mut fits = vec![false; tile_cap];
            let mut q_norms = vec![0f64; tile_cap];
            let mut tile_start = range.start;
            while tile_start < range.end {
                let tile = (range.end - tile_start).min(INT_QUERY_TILE);
                for ti in 0..tile {
                    let vals = queries[tile_start + ti].values();
                    let fit = self.int_fits_i16
                        && narrow_into(vals, &mut narrowed[ti * self.dim..(ti + 1) * self.dim]);
                    fits[ti] = fit;
                    // The narrowing pass just streamed the query in, so
                    // the norm dot runs over whichever copy is cache-hot.
                    // A lossless i16 self-dot is the same exact integer
                    // as the i32 one — the same float sequence as
                    // `IntHv::norm` either way.
                    q_norms[ti] = if fit {
                        let nq = &narrowed[ti * self.dim..(ti + 1) * self.dim];
                        let mut self_dot = [0i64];
                        (k.dot_i16_rows_stride)(nq, nq, self.dim, &mut self_dot);
                        (self_dot[0] as f64).sqrt()
                    } else {
                        ((k.dot_i32)(vals, vals) as f64).sqrt()
                    };
                }
                dots[..tile * n_rows].fill(0);
                for (b, block) in self.int_blocks.iter().enumerate() {
                    let (start, len) = self.int_block_range(b);
                    for ti in 0..tile {
                        let drow = &mut dots[ti * n_rows..(ti + 1) * n_rows];
                        if fits[ti] {
                            let q_block =
                                &narrowed[ti * self.dim + start..ti * self.dim + start + len];
                            (k.dot_i16_rows_stride)(q_block, &self.int_i16_blocks[b], len, drow);
                        } else {
                            let q_block = &queries[tile_start + ti].values()[start..start + len];
                            (k.dot_rows_stride)(q_block, block, len, drow);
                        }
                    }
                }
                crate::stats::record_dot_rows((tile * n_rows) as u64);
                for ti in 0..tile {
                    let drow = &dots[ti * n_rows..(ti + 1) * n_rows];
                    let mut best = (0usize, f64::NEG_INFINITY);
                    for (r, &dot) in drow.iter().enumerate() {
                        let s = self.int_score_of_dot(r, dot, q_norms[ti]);
                        if s > best.1 {
                            best = (r, s);
                        }
                        scores.push(s);
                    }
                    best_rows.push(best.0);
                }
                tile_start += tile;
            }
            vec![ChunkHits {
                best: best_rows,
                scores,
            }]
        });
        Ok(assemble(hits, n_rows, queries.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HvRng;

    fn rows(seed: u64, count: usize, dim: usize) -> Vec<BinaryHv> {
        let mut rng = HvRng::from_seed(seed);
        (0..count).map(|_| rng.binary_hv(dim)).collect()
    }

    /// Scalar reference scan (the pre-refactor inference loop).
    fn scalar_nearest(rows: &[BinaryHv], q: &BinaryHv) -> (usize, usize) {
        let mut best = (0usize, usize::MAX);
        for (j, r) in rows.iter().enumerate() {
            let d = r.hamming(q);
            if d < best.1 {
                best = (j, d);
            }
        }
        best
    }

    #[test]
    fn from_rows_rejects_empty_and_mixed_dims() {
        assert_eq!(
            ShardedClassMemory::from_rows(&[]).unwrap_err(),
            HvError::EmptyInput
        );
        let mut rng = HvRng::from_seed(1);
        let bad = vec![rng.binary_hv(64), rng.binary_hv(64), rng.binary_hv(65)];
        assert_eq!(
            ShardedClassMemory::from_rows(&bad).unwrap_err(),
            HvError::RowDimensionMismatch {
                row: 2,
                expected: 64,
                found: 65
            }
        );
    }

    #[test]
    fn push_error_names_the_row_index() {
        let mut rng = HvRng::from_seed(2);
        let mut mem = ShardedClassMemory::new(130);
        mem.push(&rng.binary_hv(130)).unwrap();
        mem.push(&rng.binary_hv(130)).unwrap();
        assert_eq!(
            mem.push(&rng.binary_hv(128)).unwrap_err(),
            HvError::RowDimensionMismatch {
                row: 2,
                expected: 130,
                found: 128
            }
        );
        assert_eq!(mem.n_rows(), 2);
    }

    #[test]
    fn set_int_rows_validates_count_and_dims() {
        let bins = rows(3, 3, 100);
        let mut mem = ShardedClassMemory::from_rows(&bins).unwrap();
        assert_eq!(
            mem.set_int_rows(&[IntHv::zeros(100)]).unwrap_err(),
            HvError::DimensionMismatch {
                expected: 3,
                found: 1
            }
        );
        let bad = vec![IntHv::zeros(100), IntHv::zeros(99), IntHv::zeros(100)];
        assert_eq!(
            mem.set_int_rows(&bad).unwrap_err(),
            HvError::RowDimensionMismatch {
                row: 1,
                expected: 100,
                found: 99
            }
        );
        assert!(!mem.has_int_rows());
        let good = vec![IntHv::zeros(100), IntHv::zeros(100), IntHv::zeros(100)];
        mem.set_int_rows(&good).unwrap();
        assert!(mem.has_int_rows());
    }

    #[test]
    fn batch_binary_matches_scalar_scan_non_aligned_dim() {
        for dim in [130usize, 1000, 4096] {
            let class_rows = rows(4, 9, dim);
            let mem = ShardedClassMemory::from_rows(&class_rows).unwrap();
            let queries = rows(5, 17, dim);
            let refs: Vec<&BinaryHv> = queries.iter().collect();
            let hits = mem.search_batch_binary(&refs).unwrap();
            for (q, query) in queries.iter().enumerate() {
                let (want, want_d) = scalar_nearest(&class_rows, query);
                assert_eq!(hits.best(q), want, "dim {dim} query {q}");
                assert_eq!(mem.search_binary(query).unwrap(), (want, want_d));
                for (r, row) in class_rows.iter().enumerate() {
                    let want_score = row.cosine(query);
                    assert_eq!(
                        hits.scores(q)[r].to_bits(),
                        want_score.to_bits(),
                        "dim {dim} query {q} row {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_int_matches_scalar_cosine() {
        let dim = 257;
        let bins = rows(6, 5, dim);
        let ints: Vec<IntHv> = bins
            .iter()
            .map(|b| {
                let mut acc = b.to_int();
                acc.add_binary(b);
                acc
            })
            .collect();
        let mut mem = ShardedClassMemory::from_rows(&bins).unwrap();
        mem.set_int_rows(&ints).unwrap();
        let queries: Vec<IntHv> = rows(7, 11, dim).iter().map(BinaryHv::to_int).collect();
        let refs: Vec<&IntHv> = queries.iter().collect();
        let hits = mem.search_batch_int(&refs).unwrap();
        for (q, query) in queries.iter().enumerate() {
            let mut best = (0usize, f64::NEG_INFINITY);
            for (r, row) in ints.iter().enumerate() {
                let s = row.cosine(query);
                assert_eq!(hits.scores(q)[r].to_bits(), s.to_bits(), "q {q} r {r}");
                if s > best.1 {
                    best = (r, s);
                }
            }
            assert_eq!(hits.best(q), best.0, "query {q}");
            let (one_r, one_s) = mem.search_int(query).unwrap();
            assert_eq!((one_r, one_s.to_bits()), (best.0, best.1.to_bits()));
        }
    }

    #[test]
    fn ties_resolve_to_lowest_index() {
        // Duplicate rows: every query ties between them; the scalar scan
        // keeps the first, so must the kernels.
        let base = rows(8, 1, 192).remove(0);
        let dup = vec![base.clone(), base.clone(), base.clone()];
        let mem = ShardedClassMemory::from_rows(&dup).unwrap();
        let queries = rows(9, 5, 192);
        let refs: Vec<&BinaryHv> = queries.iter().collect();
        let hits = mem.search_batch_binary(&refs).unwrap();
        for q in 0..queries.len() {
            assert_eq!(hits.best(q), 0);
        }
    }

    #[test]
    fn update_row_changes_search_results() {
        let mut class_rows = rows(10, 4, 300);
        let mut mem = ShardedClassMemory::from_rows(&class_rows).unwrap();
        let query = class_rows[3].clone();
        assert_eq!(mem.search_binary(&query).unwrap().0, 3);
        // Move row 1 onto the query: it now wins (lower index).
        mem.update_row(1, &query).unwrap();
        class_rows[1] = query.clone();
        assert_eq!(mem.search_binary(&query).unwrap(), (1, 0));
        assert_eq!(
            mem.update_row(9, &query).unwrap_err(),
            HvError::IndexOutOfRange { index: 9, len: 4 }
        );
    }

    #[test]
    fn update_int_row_refreshes_norm() {
        let bins = rows(11, 2, 64);
        let mut mem = ShardedClassMemory::from_rows(&bins).unwrap();
        mem.set_int_rows(&[IntHv::zeros(64), IntHv::zeros(64)])
            .unwrap();
        let target = bins[1].to_int();
        mem.update_int_row(1, &target).unwrap();
        let (r, s) = mem.search_int(&target).unwrap();
        assert_eq!(r, 1);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn searches_on_empty_memory_error() {
        let mem = ShardedClassMemory::new(64);
        let mut rng = HvRng::from_seed(12);
        let q = rng.binary_hv(64);
        assert_eq!(mem.search_binary(&q).unwrap_err(), HvError::EmptyInput);
        assert_eq!(
            mem.search_batch_binary(&[&q]).unwrap_err(),
            HvError::EmptyInput
        );
        assert_eq!(
            mem.search_batch_int(&[&q.to_int()]).unwrap_err(),
            HvError::EmptyInput
        );
    }

    #[test]
    fn query_dimension_is_checked() {
        let mem = ShardedClassMemory::from_rows(&rows(13, 2, 128)).unwrap();
        let mut rng = HvRng::from_seed(14);
        let q = rng.binary_hv(130);
        assert_eq!(
            mem.search_binary(&q).unwrap_err(),
            HvError::DimensionMismatch {
                expected: 128,
                found: 130
            }
        );
    }

    #[test]
    fn row_sharded_single_query_matches_scalar() {
        // Enough rows to trip the row-sharded path.
        let dim = 130;
        let mut rng = HvRng::from_seed(15);
        let class_rows: Vec<BinaryHv> =
            (0..ROW_SHARD_MIN + 7).map(|_| rng.binary_hv(dim)).collect();
        let mem = ShardedClassMemory::from_rows(&class_rows).unwrap();
        let q = class_rows[ROW_SHARD_MIN + 3].clone();
        assert_eq!(
            mem.search_binary(&q).unwrap(),
            scalar_nearest(&class_rows, &q)
        );
    }

    #[test]
    fn empty_query_batch_is_fine() {
        let mem = ShardedClassMemory::from_rows(&rows(16, 2, 64)).unwrap();
        let hits = mem.search_batch_binary(&[]).unwrap();
        assert!(hits.is_empty());
        assert_eq!(hits.len(), 0);
    }
}
