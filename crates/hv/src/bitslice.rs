//! Word-parallel bundling via bit-sliced (carry-save) counters.
//!
//! [`BundleAccumulator`](crate::BundleAccumulator) keeps one `i32` per
//! dimension, so adding a hypervector costs `D` scalar adds. A
//! [`BitSliceAccumulator`] instead keeps the per-dimension counter
//! *transposed*: counter bit `p` of all `D` dimensions lives in one
//! packed `u64` plane, and adding a hypervector is a ripple-carry
//! increment over planes — `AND` + `XOR` on whole 64-dimension words.
//! An add touches plane `p` only when the carry survives that far, so
//! the amortized cost is ~2 word operations per 64 dimensions instead
//! of 64 scalar adds: the word-parallel speedup the HDLock encoding
//! fast path is built on.
//!
//! ## Layout
//!
//! `planes[p][w]` holds bit `p` of the bundle counters for dimensions
//! `64·w .. 64·w+63`. The counter value for dimension `d` is
//! `c_d = Σ_p bit(planes[p][d/64], d%64) << p` — the number of added
//! vectors whose dimension `d` was −1 (set bit ⇔ −1, as everywhere in
//! this crate). The bipolar sum is then `count − 2·c_d`, recovered by
//! [`BitSliceAccumulator::to_int`] or thresholded directly by the
//! majority methods without ever materializing integers.
//!
//! ## Tie policy
//!
//! Exactly mirrors [`IntHv`] binarization:
//! [`BitSliceAccumulator::majority_ties_positive`] maps a zero sum to
//! +1, and [`BitSliceAccumulator::majority_with`] consumes one
//! `rng.coin()` per tied dimension **in ascending dimension order**, so
//! both are bit-exact drop-ins for the scalar path (property-tested in
//! `tests/bitslice_equivalence.rs`).

use crate::binary::BinaryHv;
use crate::bitvec::BitWords;
use crate::dense::IntHv;
use crate::kernel;
use crate::rng::HvRng;

/// Word-parallel bundling accumulator over bit-sliced counter planes.
///
/// # Examples
///
/// ```
/// use hypervec::{BitSliceAccumulator, BundleAccumulator, HvRng};
///
/// let mut rng = HvRng::from_seed(3);
/// let hvs: Vec<_> = (0..9).map(|_| rng.binary_hv(1000)).collect();
///
/// let mut fast = BitSliceAccumulator::new(1000);
/// let mut reference = BundleAccumulator::new(1000);
/// for hv in &hvs {
///     fast.add(hv);
///     reference.add(hv);
/// }
/// assert_eq!(fast.majority_ties_positive(), reference.majority_ties_positive());
/// assert_eq!(fast.to_int(), *reference.sums());
/// ```
#[derive(Debug, Clone)]
pub struct BitSliceAccumulator {
    dim: usize,
    n_words: usize,
    /// Counter bit-planes, least-significant first.
    planes: Vec<Vec<u64>>,
    /// Carry scratch buffer reused across adds (zero-alloc hot path).
    scratch: Vec<u64>,
    /// Number of vectors added.
    count: usize,
}

impl BitSliceAccumulator {
    /// Creates an empty accumulator of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "accumulator dimension must be positive");
        let n_words = dim.div_ceil(64);
        BitSliceAccumulator {
            dim,
            n_words,
            planes: Vec::new(),
            scratch: vec![0; n_words],
            count: 0,
        }
    }

    /// Dimensionality `D`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors added since creation or [`Self::clear`].
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of counter bit-planes currently allocated
    /// (`⌈log2(count+1)⌉` once counts reach the top plane).
    #[must_use]
    pub fn n_planes(&self) -> usize {
        self.planes.len()
    }

    /// Resets to the empty bundle, keeping allocations for reuse.
    ///
    /// This is the scratch-buffer contract of the batch encoders: one
    /// accumulator per worker thread, `clear()` between samples, no
    /// per-sample allocation once the plane stack has grown.
    pub fn clear(&mut self) {
        for plane in &mut self.planes {
            plane.iter_mut().for_each(|w| *w = 0);
        }
        self.count = 0;
    }

    /// Adds a hypervector to the bundle.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add(&mut self, hv: &BinaryHv) {
        assert_eq!(self.dim, hv.dim(), "dimension mismatch in bit-sliced add");
        self.scratch.copy_from_slice(hv.bits().words());
        self.ripple_scratch();
    }

    /// Adds a hypervector given as raw packed words — the entry point
    /// for callers that assembled the vector word-by-word (the
    /// cache-oblivious hardened encode path builds its branchless
    /// masked selection in a scratch buffer and feeds it here). Bits at
    /// positions ≥ `dim` in the last word are ignored.
    ///
    /// Bit-exact with [`BitSliceAccumulator::add`] of the same bits.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from `⌈dim/64⌉`.
    pub fn add_words(&mut self, words: &[u64]) {
        assert_eq!(
            self.n_words,
            words.len(),
            "word-count mismatch in bit-sliced add"
        );
        self.scratch.copy_from_slice(words);
        let tail = self.dim % 64;
        if tail != 0 {
            self.scratch[self.n_words - 1] &= (1u64 << tail) - 1;
        }
        self.ripple_scratch();
    }

    /// Adds the bound pair `a × b` without materializing the product —
    /// one XOR per word feeding the ripple directly (the record-encoding
    /// hot loop, paper Eq. 2).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add_bound_pair(&mut self, a: &BinaryHv, b: &BinaryHv) {
        assert_eq!(self.dim, a.dim(), "dimension mismatch in bit-sliced add");
        assert_eq!(self.dim, b.dim(), "dimension mismatch in bit-sliced add");
        let wa = a.bits().words();
        let wb = b.bits().words();
        (kernel::active().xor_into)(wa, wb, &mut self.scratch);
        self.ripple_scratch();
    }

    /// Ripple-carry increments every dimension whose bit is set in
    /// `scratch`, consuming the scratch buffer as the carry vector.
    fn ripple_scratch(&mut self) {
        self.count += 1;
        let k = kernel::active();
        let scratch = &mut self.scratch;
        let mut p = 0;
        loop {
            if p == self.planes.len() {
                // Remaining carries overflow into a fresh plane; adding a
                // carry to an all-zero plane can itself not carry again.
                if scratch.iter().any(|&c| c != 0) {
                    self.planes.push(scratch.clone());
                }
                return;
            }
            if !(k.ripple_step)(&mut self.planes[p], scratch) {
                return;
            }
            p += 1;
        }
    }

    /// Per-dimension counts of −1 contributions (`c_d`).
    #[must_use]
    pub fn counts(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.dim];
        for (p, plane) in self.planes.iter().enumerate() {
            let weight = 1u32 << p;
            for (w, &word) in plane.iter().enumerate() {
                let mut m = word;
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    out[w * 64 + b] += weight;
                    m &= m - 1;
                }
            }
        }
        out
    }

    /// Widens to the integer bundle sums, identical to accumulating the
    /// same vectors through [`crate::BundleAccumulator`].
    #[must_use]
    pub fn to_int(&self) -> IntHv {
        IntHv::from_bundle_counts(self.count, &self.counts())
    }

    /// Word-parallel comparison of every counter against `threshold`:
    /// per-dimension `(c_d > threshold, c_d == threshold)` masks.
    fn threshold_masks(&self, threshold: u64) -> (Vec<u64>, Vec<u64>) {
        let t_bits = (u64::BITS - threshold.leading_zeros()) as usize;
        let p_max = self.planes.len().max(t_bits);
        let k = kernel::active();
        let mut gt = vec![0u64; self.n_words];
        let mut eq = vec![u64::MAX; self.n_words];
        for p in (0..p_max).rev() {
            let t_bit = (threshold >> p) & 1 == 1;
            match self.planes.get(p) {
                Some(plane) => (k.threshold_step)(plane, t_bit, &mut gt, &mut eq),
                // Missing plane ⇒ counter bit is 0 everywhere: with the
                // threshold bit set no counter can still be equal; with
                // it clear the step is a no-op.
                None => {
                    if t_bit {
                        eq.iter_mut().for_each(|w| *w = 0);
                    }
                }
            }
        }
        // Dimensions beyond `dim` in the last word carry no meaning.
        let tail = self.dim % 64;
        if tail != 0 {
            let mask = (1u64 << tail) - 1;
            gt[self.n_words - 1] &= mask;
            eq[self.n_words - 1] &= mask;
        }
        (gt, eq)
    }

    /// Majority vote mapping ties to +1, bit-exact with
    /// `self.to_int().sign_ties_positive()` but computed entirely on
    /// packed words: the sum `count − 2·c_d` is negative iff
    /// `c_d > ⌊count/2⌋`.
    #[must_use]
    pub fn majority_ties_positive(&self) -> BinaryHv {
        let (gt, _) = self.threshold_masks((self.count / 2) as u64);
        BinaryHv::from_bits(BitWords::from_words(gt, self.dim))
    }

    /// Majority vote with random `sign(0)` tie-break, bit-exact with
    /// `self.to_int().sign_with(rng)`: one `rng.coin()` is consumed per
    /// tied dimension, in ascending dimension order.
    #[must_use]
    pub fn majority_with(&self, rng: &mut HvRng) -> BinaryHv {
        let (mut gt, eq) = self.threshold_masks((self.count / 2) as u64);
        if self.count.is_multiple_of(2) {
            // Ties (sum exactly zero) are possible only for even counts.
            for (w, &ties) in eq.iter().enumerate() {
                let mut m = ties;
                while m != 0 {
                    let b = m.trailing_zeros();
                    if rng.coin() {
                        gt[w] |= 1u64 << b;
                    }
                    m &= m - 1;
                }
            }
        }
        BinaryHv::from_bits(BitWords::from_words(gt, self.dim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BundleAccumulator;

    fn reference_pair(dim: usize, n: usize, seed: u64) -> (BitSliceAccumulator, BundleAccumulator) {
        let mut rng = HvRng::from_seed(seed);
        let mut fast = BitSliceAccumulator::new(dim);
        let mut slow = BundleAccumulator::new(dim);
        for _ in 0..n {
            let hv = rng.binary_hv(dim);
            fast.add(&hv);
            slow.add(&hv);
        }
        (fast, slow)
    }

    #[test]
    fn empty_matches_bundle_accumulator() {
        let acc = BitSliceAccumulator::new(70);
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.to_int(), IntHv::zeros(70));
        assert_eq!(acc.majority_ties_positive(), BinaryHv::ones(70));
    }

    #[test]
    fn sums_match_reference_across_counts() {
        for n in [1, 2, 3, 4, 7, 8, 15, 16, 17, 64, 100] {
            let (fast, slow) = reference_pair(130, n, n as u64);
            assert_eq!(fast.to_int(), *slow.sums(), "n = {n}");
            assert_eq!(fast.count(), slow.count());
        }
    }

    #[test]
    fn majority_matches_reference() {
        for n in [1, 2, 5, 6, 31, 32] {
            let (fast, slow) = reference_pair(1000, n, 100 + n as u64);
            assert_eq!(
                fast.majority_ties_positive(),
                slow.majority_ties_positive(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn random_tie_break_consumes_identical_coins() {
        // Even count ⇒ ties exist; both paths must draw the same coins.
        let (fast, slow) = reference_pair(4096, 6, 9);
        let mut rng_a = HvRng::from_seed(77);
        let mut rng_b = HvRng::from_seed(77);
        assert_eq!(
            fast.majority_with(&mut rng_a),
            slow.majority_with(&mut rng_b)
        );
        // Streams stay aligned after the call.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn bound_pair_add_matches_explicit_bind() {
        let mut rng = HvRng::from_seed(4);
        let mut fused = BitSliceAccumulator::new(300);
        let mut explicit = BitSliceAccumulator::new(300);
        for _ in 0..5 {
            let a = rng.binary_hv(300);
            let b = rng.binary_hv(300);
            fused.add_bound_pair(&a, &b);
            explicit.add(&a.bind(&b));
        }
        assert_eq!(fused.to_int(), explicit.to_int());
    }

    #[test]
    fn add_words_matches_add_and_masks_the_tail() {
        let mut rng = HvRng::from_seed(11);
        let mut via_hv = BitSliceAccumulator::new(130);
        let mut via_words = BitSliceAccumulator::new(130);
        for i in 0..5 {
            let hv = rng.binary_hv(130);
            via_hv.add(&hv);
            let mut words = hv.bits().words().to_vec();
            if i == 2 {
                // Garbage past `dim` must be ignored.
                *words.last_mut().unwrap() |= !((1u64 << (130 % 64)) - 1);
            }
            via_words.add_words(&words);
        }
        assert_eq!(via_hv.to_int(), via_words.to_int());
        assert_eq!(
            via_hv.majority_ties_positive(),
            via_words.majority_ties_positive()
        );
    }

    #[test]
    #[should_panic(expected = "word-count mismatch")]
    fn add_words_rejects_wrong_word_count() {
        let mut acc = BitSliceAccumulator::new(64);
        acc.add_words(&[0, 0]);
    }

    #[test]
    fn clear_resets_without_shrinking_planes() {
        let (mut fast, _) = reference_pair(256, 9, 5);
        let planes_before = fast.n_planes();
        fast.clear();
        assert_eq!(fast.count(), 0);
        assert_eq!(fast.n_planes(), planes_before, "allocations are kept");
        assert_eq!(fast.to_int(), IntHv::zeros(256));
        // Reuse after clear behaves like a fresh accumulator.
        let mut rng = HvRng::from_seed(6);
        let hv = rng.binary_hv(256);
        fast.add(&hv);
        assert_eq!(fast.majority_ties_positive(), hv);
    }

    #[test]
    fn plane_count_grows_logarithmically() {
        let (fast, _) = reference_pair(64, 100, 8);
        assert!(
            fast.n_planes() <= 7,
            "100 adds need ≤ 7 planes, got {}",
            fast.n_planes()
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn add_rejects_wrong_dimension() {
        let mut acc = BitSliceAccumulator::new(64);
        let hv = BinaryHv::ones(65);
        acc.add(&hv);
    }
}
