//! Item memory: an indexed store of hypervectors with associative lookup.
//!
//! The encoding module of an HDC model keeps its feature and value
//! hypervectors in an item memory. The *index* (which row corresponds to
//! which feature) is exactly the mapping information HDLock protects; the
//! rows themselves live in ordinary memory and are considered public in
//! the paper's threat model.

use serde::{Deserialize, Serialize};

use crate::binary::BinaryHv;
use crate::error::HvError;
use crate::rng::HvRng;

/// An ordered collection of same-dimension hypervectors.
///
/// # Examples
///
/// ```
/// use hypervec::{HvRng, ItemMemory};
///
/// let mut rng = HvRng::from_seed(7);
/// let mem = ItemMemory::random(&mut rng, 10_000, 20);
/// let noisy = mem.get(3)?.clone();
/// let (idx, dist) = mem.nearest(&noisy)?;
/// assert_eq!(idx, 3);
/// assert_eq!(dist, 0);
/// # Ok::<(), hypervec::HvError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "Vec<BinaryHv>", into = "Vec<BinaryHv>")]
pub struct ItemMemory {
    rows: Vec<BinaryHv>,
    dim: usize,
}

impl From<ItemMemory> for Vec<BinaryHv> {
    fn from(m: ItemMemory) -> Self {
        m.rows
    }
}

impl TryFrom<Vec<BinaryHv>> for ItemMemory {
    type Error = HvError;

    /// Deserialization path: re-runs [`ItemMemory::from_rows`]
    /// validation so malformed snapshots are rejected.
    fn try_from(rows: Vec<BinaryHv>) -> Result<Self, Self::Error> {
        ItemMemory::from_rows(rows)
    }
}

impl ItemMemory {
    /// Creates an empty memory for hypervectors of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "item memory dimension must be positive");
        ItemMemory {
            rows: Vec::new(),
            dim,
        }
    }

    /// Creates a memory of `count` random (quasi-orthogonal) rows.
    #[must_use]
    pub fn random(rng: &mut HvRng, dim: usize, count: usize) -> Self {
        let mut mem = Self::new(dim);
        for hv in rng.orthogonal_pool(dim, count) {
            mem.push(hv).expect("generated rows share the dimension");
        }
        mem
    }

    /// Wraps existing rows.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyInput`] when `rows` is empty, or
    /// [`HvError::RowDimensionMismatch`] naming the first row whose
    /// dimension disagrees with row 0.
    pub fn from_rows(rows: Vec<BinaryHv>) -> Result<Self, HvError> {
        let first = rows.first().ok_or(HvError::EmptyInput)?;
        let dim = first.dim();
        for (i, r) in rows.iter().enumerate() {
            if r.dim() != dim {
                return Err(HvError::RowDimensionMismatch {
                    row: i,
                    expected: dim,
                    found: r.dim(),
                });
            }
        }
        Ok(ItemMemory { rows, dim })
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::RowDimensionMismatch`] (carrying the index the
    /// row would have had) if the row has the wrong dimension.
    pub fn push(&mut self, hv: BinaryHv) -> Result<(), HvError> {
        if hv.dim() != self.dim {
            return Err(HvError::RowDimensionMismatch {
                row: self.rows.len(),
                expected: self.dim,
                found: hv.dim(),
            });
        }
        self.rows.push(hv);
        Ok(())
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the memory holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Hypervector dimension of the rows.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i`.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::IndexOutOfRange`] for an invalid index.
    pub fn get(&self, i: usize) -> Result<&BinaryHv, HvError> {
        self.rows.get(i).ok_or(HvError::IndexOutOfRange {
            index: i,
            len: self.rows.len(),
        })
    }

    /// All rows in order.
    #[must_use]
    pub fn rows(&self) -> &[BinaryHv] {
        &self.rows
    }

    /// Iterator over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, BinaryHv> {
        self.rows.iter()
    }

    /// Associative lookup: the row with the smallest Hamming distance to
    /// `query`, with its distance. Ties resolve to the lowest index.
    /// Each comparison is a fused XOR-popcount on the active
    /// [`kernel`](crate::kernel) backend.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyInput`] if the memory is empty, or
    /// [`HvError::DimensionMismatch`] on dimension disagreement.
    pub fn nearest(&self, query: &BinaryHv) -> Result<(usize, usize), HvError> {
        if self.rows.is_empty() {
            return Err(HvError::EmptyInput);
        }
        if query.dim() != self.dim {
            return Err(HvError::DimensionMismatch {
                expected: self.dim,
                found: query.dim(),
            });
        }
        let mut best = (0usize, usize::MAX);
        for (i, row) in self.rows.iter().enumerate() {
            let d = row.hamming(query);
            if d < best.1 {
                best = (i, d);
            }
        }
        Ok(best)
    }

    /// The elementwise sum of all rows, kept as raw counters.
    ///
    /// The attack's Eq. 5/6 uses `sign(Σ FeaHV_i)`; the sum is reusable,
    /// so we expose the intermediate (C-INTERMEDIATE).
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyInput`] if the memory is empty.
    pub fn sum(&self) -> Result<crate::IntHv, HvError> {
        if self.rows.is_empty() {
            return Err(HvError::EmptyInput);
        }
        let mut acc = crate::IntHv::zeros(self.dim);
        for row in &self.rows {
            acc.add_binary(row);
        }
        Ok(acc)
    }

    /// Returns a copy of this memory with rows shuffled by a random
    /// permutation, together with the permutation used: `shuffled[i] =
    /// original[perm[i]]`.
    ///
    /// This is the "unindexed hypervector memory" an attacker can dump in
    /// the paper's threat model: the rows are intact but their mapping to
    /// features is hidden.
    #[must_use]
    pub fn shuffled(&self, rng: &mut HvRng) -> (ItemMemory, Vec<usize>) {
        let perm = rng.shuffled_indices(self.rows.len());
        let rows = perm.iter().map(|&i| self.rows[i].clone()).collect();
        (
            ItemMemory {
                rows,
                dim: self.dim,
            },
            perm,
        )
    }
}

impl<'a> IntoIterator for &'a ItemMemory {
    type Item = &'a BinaryHv;
    type IntoIter = std::slice::Iter<'a, BinaryHv>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut rng = HvRng::from_seed(1);
        let mut mem = ItemMemory::new(64);
        assert!(mem.is_empty());
        let hv = rng.binary_hv(64);
        mem.push(hv.clone()).unwrap();
        assert_eq!(mem.len(), 1);
        assert_eq!(mem.get(0).unwrap(), &hv);
        assert!(mem.get(1).is_err());
    }

    #[test]
    fn push_rejects_wrong_dim() {
        let mut rng = HvRng::from_seed(2);
        let mut mem = ItemMemory::new(64);
        assert_eq!(
            mem.push(rng.binary_hv(65)).unwrap_err(),
            HvError::RowDimensionMismatch {
                row: 0,
                expected: 64,
                found: 65
            }
        );
        mem.push(rng.binary_hv(64)).unwrap();
        // The reported index is where the rejected row would have gone.
        assert_eq!(
            mem.push(rng.binary_hv(65)).unwrap_err(),
            HvError::RowDimensionMismatch {
                row: 1,
                expected: 64,
                found: 65
            }
        );
    }

    #[test]
    fn nearest_finds_noisy_row() {
        let mut rng = HvRng::from_seed(3);
        let mem = ItemMemory::random(&mut rng, 2048, 30);
        let mut probe = mem.get(17).unwrap().clone();
        for i in 0..200 {
            probe.flip(i * 10);
        }
        let (idx, dist) = mem.nearest(&probe).unwrap();
        assert_eq!(idx, 17);
        assert_eq!(dist, 200);
    }

    #[test]
    fn nearest_on_empty_errors() {
        let mem = ItemMemory::new(32);
        let q = BinaryHv::ones(32);
        assert_eq!(mem.nearest(&q).unwrap_err(), HvError::EmptyInput);
    }

    #[test]
    fn sum_matches_manual() {
        let mut rng = HvRng::from_seed(4);
        let mem = ItemMemory::random(&mut rng, 128, 5);
        let sum = mem.sum().unwrap();
        for i in 0..128 {
            let manual: i32 = mem.iter().map(|r| i32::from(r.polarity(i))).sum();
            assert_eq!(sum.get(i), manual);
        }
    }

    #[test]
    fn shuffle_permutes_rows() {
        let mut rng = HvRng::from_seed(5);
        let mem = ItemMemory::random(&mut rng, 256, 40);
        let (shuf, perm) = mem.shuffled(&mut rng);
        assert_eq!(shuf.len(), 40);
        for (i, &src) in perm.iter().enumerate() {
            assert_eq!(shuf.get(i).unwrap(), mem.get(src).unwrap());
        }
        // not the identity with overwhelming probability
        assert_ne!(perm, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn from_rows_validates() {
        let mut rng = HvRng::from_seed(6);
        let a = rng.binary_hv(10);
        let b = rng.binary_hv(11);
        assert_eq!(
            ItemMemory::from_rows(vec![]).unwrap_err(),
            HvError::EmptyInput
        );
        assert_eq!(
            ItemMemory::from_rows(vec![a.clone(), b]).unwrap_err(),
            HvError::RowDimensionMismatch {
                row: 1,
                expected: 10,
                found: 11
            }
        );
        assert!(ItemMemory::from_rows(vec![a]).is_ok());
    }
}
