//! # hypervec — hyperdimensional vector math substrate
//!
//! Bit-packed bipolar hypervectors and the Multiplication–Addition–
//! Permutation (MAP) operator set used by hyperdimensional computing
//! (HDC), built for the HDLock (DAC'22) reproduction.
//!
//! ## The representation
//!
//! A [`BinaryHv`] lives in `{+1, −1}^D` and is stored one bit per
//! dimension (set bit ⇔ −1), so:
//!
//! * **Multiplication** (binding) is a word-wise XOR,
//! * **Addition** (bundling) accumulates into an [`IntHv`] / a
//!   [`BundleAccumulator`] and binarizes with `sign(·)`,
//! * **Permutation** is a circular rotation `ρ_k` computed on packed
//!   words ([`BinaryHv::rotated`]), with general permutations available
//!   through [`Permutation`].
//!
//! [`LevelHvs`] builds the linearly-correlated *value* hypervectors of
//! record-based encoding (paper Eq. 1b), [`ItemMemory`] stores feature
//! hypervectors with associative lookup, and [`Similarity`] selects the
//! Hamming/cosine comparison used by binary/non-binary models.
//!
//! ## The word-parallel encoding engine
//!
//! Bundling through an [`IntHv`] costs one scalar add per dimension per
//! vector. [`BitSliceAccumulator`] removes that bottleneck by storing
//! the per-dimension counters *bit-sliced*: counter bit `p` of all `D`
//! dimensions is one packed `u64` plane, and adding a (possibly bound)
//! hypervector is a ripple-carry increment over planes — whole-word
//! `AND`/`XOR` instead of 64 scalar adds, with amortized ~2 word
//! operations per add. The engine is **bit-exact** with the scalar
//! path by construction:
//!
//! * **Layout** — `planes[p][w]` is bit `p` of the counters for
//!   dimensions `64·w..64·w+63`; the bipolar sum at dimension `d` is
//!   `count − 2·c_d` where `c_d` counts −1 contributions.
//! * **Tie policy** — binarization maps a zero sum to +1
//!   (`majority_ties_positive`), or consumes one `rng.coin()` per tied
//!   dimension in ascending dimension order (`majority_with`), exactly
//!   matching [`IntHv::sign_ties_positive`] / [`IntHv::sign_with`].
//! * **Scratch-buffer contract** — accumulators are `clear()`ed and
//!   reused between samples; `rotated_into` / `bind_into` /
//!   `xor_into` write into caller-owned buffers, so steady-state batch
//!   encoding performs no per-sample allocation beyond its outputs.
//!
//! Batch work fans out per chunk (not per sample) with [`par`], giving
//! each worker private scratch state; `HYPERVEC_THREADS` pins the
//! worker count.
//!
//! ## The sharded search engine
//!
//! With encoding word-parallel, the associative search over the class
//! memory dominates inference. [`ShardedClassMemory`] packs the class
//! rows for batch throughput instead of scanning them one
//! [`BinaryHv`] at a time:
//!
//! * **Packed planes** — binary rows live as contiguous `u64` words in
//!   *block-major* order: within each dimension block
//!   ([`search::BLOCK_WORDS`] words) the rows are laid out back to
//!   back, so comparing every class against a query inside one block is
//!   a linear walk over a few KiB that stays cache-resident while a
//!   whole chunk of queries streams over it. Integer rows mirror the
//!   same shape: row-interleaved i32 planes in
//!   [`search::INT_BLOCK_DIMS`]-dimension blocks, plus an i16 *sidecar*
//!   plane (values saturated to ±32767) that drives the `vpmaddwd`
//!   fast path — a memory whose values never hit the clamp records
//!   that fact, and queries that narrow losslessly take the half-width
//!   plane with bit-identical dots.
//! * **Batch kernels** — `search_batch_binary` / `search_batch_int`
//!   compute the top-1 row *and* the full score vector for N queries
//!   at once via word-parallel popcount (binary) or strided multi-row
//!   dot products (integer), sharding across queries on [`par`] scoped
//!   threads with one distance matrix per worker. The int path tiles
//!   queries so each 4-byte-per-dimension query streams from memory
//!   once — norm, lossless narrowing and the blocked sweep all consume
//!   it cache-hot.
//! * **Bit-exactness** — distances are exact popcounts and the float
//!   score sequences reproduce [`BinaryHv::cosine`] /
//!   [`IntHv::cosine`] operation-for-operation, so batch results are
//!   bit-identical to the scalar per-row scan, including
//!   lowest-index tie-breaking.
//! * **In-place row updates** — `update_row` / `update_int_row` let a
//!   retraining loop keep a packed mirror in sync without rebuilding
//!   it after every accumulator adjustment.
//!
//! ## Top-k search
//!
//! Classification needs top-1 over tens of class rows; the
//! million-user similarity workload needs top-k over millions of rows,
//! where materializing full `queries × rows` score vectors is the
//! bottleneck. `search_topk_binary` / `search_topk_int` shard the rows
//! across workers, stream each shard tile by tile through the
//! block-major planes, and keep *bounded heaps* of the k best
//! candidates — `O(tile + k)` memory per worker, merged
//! deterministically, and **bit-identical** (rows, tie order, score
//! bits) to stably sorting the full score vector.
//!
//! `search_topk_binary_pruned` adds a coarse-quantized multi-probe
//! scan: a first pass reads only the leading packed words of every row
//! ([`ProbeConfig::probe_words`] of `⌈D/64⌉`, free in the block-major
//! layout), keeps `probe_factor · k` candidates per query, and
//! rescores the survivors with exact full-width distances.
//! `search_topk_int_pruned` is the cosine twin under the same
//! [`ProbeConfig`] semantics: its coarse pass runs the i16-quantized
//! strided kernel over the leading `probe_words · 64` dimensions of
//! the blocked int planes (saturating quantization — coarse scores
//! order candidates, they are never returned), then rescores survivors
//! with exact full-width i32 dots. The semantics are pinned at the
//! extremes for both metrics: at **full probe width** the result is
//! *bit-identical* to exact top-k (argmax, tie order, score sequence —
//! property-tested), and below [`ProbeConfig::exact_threshold`] rows
//! the call falls back to the exact scan. In between, `probe_factor`
//! is the recall knob: recall@k approaches 1 as the candidate multiple
//! grows past the size of the query's true neighborhood, at the cost
//! of rescoring more survivors.
//!
//! Because the survivor set — and therefore the rescoring work — is
//! data-dependent, the pruned scans are bypassed by the serving
//! layer's constant-time hardened mode in favor of the fixed-shape
//! exact scan (threat model in the repository's `SECURITY.md`).
//!
//! ## Kernel backends
//!
//! All of the loops above — XOR-accumulate, popcount reduction, the
//! ripple-carry increment, the threshold comparison, the
//! Hamming-distance row scans, and the integer dot products (the
//! one-pair `dot_i32` plus the strided multi-row `dot_rows_stride` /
//! `dot_i16_rows_stride` primitives that sweep a query block over
//! row-interleaved planes) — execute through the [`kernel`] dispatch
//! table rather than per-file `u64` loops. Three backends implement
//! it: `scalar` (the reference, always available), `avx2` (`std::arch`
//! x86_64 intrinsics, installed when
//! `is_x86_feature_detected!("avx2")` confirms support — the strided
//! int kernels unroll four rows sharing each query load, `vpmuldq` for
//! i32 and `vpmaddwd` with group-deferred i64 widening for i16), and
//! `portable` (a chunked, autovectorizable variant for other ISAs).
//!
//! * **Dispatch rules** — selected once at first use: `avx2` when the
//!   CPU has it, else `scalar`. Every consumer ([`BitSliceAccumulator`],
//!   [`ShardedClassMemory`], [`BitVec bulk ops`](bitvec::BitWords),
//!   [`Similarity`], [`ItemMemory`]) picks the fast path up
//!   transparently.
//! * **Env override** — `HYPERVEC_KERNEL=scalar|avx2|portable` forces a
//!   backend; an unknown or unavailable name fails fast with the list
//!   of available backends (never a silent fallback).
//! * **Bit-exactness** — backends are interchangeable bit-for-bit
//!   (integral arithmetic throughout; `tests/kernel_equivalence.rs`
//!   pins scores, argmax and tie order per backend against `scalar`).
//! * **Adding a backend** — implement the [`kernel::Kernel`] function
//!   set, register it in `kernel::available`/`by_name`; the
//!   equivalence suite covers it automatically.
//!
//! ## Example
//!
//! ```
//! use hypervec::{HvRng, LevelHvs, Similarity};
//!
//! let mut rng = HvRng::from_seed(2022);
//! let features = rng.orthogonal_pool(10_000, 4);
//! let values = LevelHvs::generate(&mut rng, 10_000, 8)?;
//!
//! // record-based encoding of a 4-feature sample, all features at level 0
//! let mut acc = hypervec::BundleAccumulator::new(10_000);
//! for fea in &features {
//!     acc.add(&fea.bind(values.level(0)));
//! }
//! let encoded = acc.majority_with(&mut rng);
//! assert_eq!(encoded.dim(), 10_000);
//! # Ok::<(), hypervec::HvError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accumulator;
pub mod binary;
pub mod bitslice;
pub mod bitvec;
pub mod boundcache;
pub mod dense;
pub mod error;
pub mod itemmem;
pub mod kernel;
pub mod level;
pub mod par;
pub mod perm;
pub mod rng;
pub mod search;
pub mod sim;
pub mod stats;
pub mod topk;

pub use accumulator::BundleAccumulator;
pub use binary::BinaryHv;
pub use bitslice::BitSliceAccumulator;
pub use boundcache::BoundPairCache;
pub use dense::IntHv;
pub use error::HvError;
pub use itemmem::ItemMemory;
pub use level::LevelHvs;
pub use perm::Permutation;
pub use rng::HvRng;
pub use search::{BatchSearchResult, ShardedClassMemory};
pub use sim::{argmax, argmin, Similarity};
pub use topk::{BatchTopKResult, ProbeConfig, TopKMatch};
