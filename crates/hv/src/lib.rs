//! # hypervec — hyperdimensional vector math substrate
//!
//! Bit-packed bipolar hypervectors and the Multiplication–Addition–
//! Permutation (MAP) operator set used by hyperdimensional computing
//! (HDC), built for the HDLock (DAC'22) reproduction.
//!
//! ## The representation
//!
//! A [`BinaryHv`] lives in `{+1, −1}^D` and is stored one bit per
//! dimension (set bit ⇔ −1), so:
//!
//! * **Multiplication** (binding) is a word-wise XOR,
//! * **Addition** (bundling) accumulates into an [`IntHv`] / a
//!   [`BundleAccumulator`] and binarizes with `sign(·)`,
//! * **Permutation** is a circular rotation `ρ_k` computed on packed
//!   words ([`BinaryHv::rotated`]), with general permutations available
//!   through [`Permutation`].
//!
//! [`LevelHvs`] builds the linearly-correlated *value* hypervectors of
//! record-based encoding (paper Eq. 1b), [`ItemMemory`] stores feature
//! hypervectors with associative lookup, and [`Similarity`] selects the
//! Hamming/cosine comparison used by binary/non-binary models.
//!
//! ## Example
//!
//! ```
//! use hypervec::{HvRng, LevelHvs, Similarity};
//!
//! let mut rng = HvRng::from_seed(2022);
//! let features = rng.orthogonal_pool(10_000, 4);
//! let values = LevelHvs::generate(&mut rng, 10_000, 8)?;
//!
//! // record-based encoding of a 4-feature sample, all features at level 0
//! let mut acc = hypervec::BundleAccumulator::new(10_000);
//! for fea in &features {
//!     acc.add(&fea.bind(values.level(0)));
//! }
//! let encoded = acc.majority_with(&mut rng);
//! assert_eq!(encoded.dim(), 10_000);
//! # Ok::<(), hypervec::HvError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accumulator;
pub mod binary;
pub mod bitvec;
pub mod dense;
pub mod error;
pub mod itemmem;
pub mod level;
pub mod perm;
pub mod rng;
pub mod sim;

pub use accumulator::BundleAccumulator;
pub use binary::BinaryHv;
pub use dense::IntHv;
pub use error::HvError;
pub use itemmem::ItemMemory;
pub use level::LevelHvs;
pub use perm::Permutation;
pub use rng::HvRng;
pub use sim::{argmax, argmin, Similarity};
