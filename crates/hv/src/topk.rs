//! Heap-based top-k search and coarse-quantized multi-probe pruning
//! over a [`ShardedClassMemory`].
//!
//! The batch kernels in [`search`](crate::search) return the top-1 row
//! plus a full score vector — the right shape for classification over
//! tens of class rows, and the wrong one for similarity search over
//! millions of user rows, where materializing `queries × rows` scores
//! is the bottleneck. This module adds:
//!
//! * **Exact top-k** ([`ShardedClassMemory::search_topk_binary`] /
//!   [`ShardedClassMemory::search_topk_int`]) — rows are sharded across
//!   [`par`] workers; each worker streams its row range
//!   tile by tile through the block-major planes and keeps a *bounded
//!   heap* of the k best `(distance, row)` (binary) or `(score, row)`
//!   (integer) candidates; the per-shard heaps merge deterministically
//!   at the end. Memory per worker is `O(tile + k)` regardless of the
//!   row count.
//! * **Pruned top-k** ([`ShardedClassMemory::search_topk_binary_pruned`]
//!   / [`ShardedClassMemory::search_topk_int_pruned`]) — a coarse pass
//!   scans only the leading `probe_words` packed words (binary) or
//!   `probe_words · 64` dimensions (int) of every row — free in the
//!   block-major layouts: the same rows at a shorter stride — keeps
//!   `probe_factor · k` candidates per query, then rescores the
//!   survivors exactly at full width. The int coarse pass runs on the
//!   i16-saturating quantized sidecar planes (Prive-HD-style quantized
//!   coarse scoring), ranking by *normalized* partial scores so rows of
//!   different norms compare fairly under the cosine metric. Below
//!   [`ProbeConfig::exact_threshold`] rows the coarse pass cannot pay
//!   for itself and the call falls back to the exact scan.
//!
//! ## Exactness
//!
//! Exact top-k is **bit-identical** to sorting the full scalar score
//! vector: the candidate order is `(hamming asc, row asc)` / `(score
//! desc, row asc)`, the k smallest elements of a total order do not
//! depend on shard boundaries, and scores reproduce the same float
//! expressions as the top-1 kernels. Pruned top-k at **full probe
//! width** (`probe_words ≥ ⌈D/64⌉`) is bit-identical to exact top-k —
//! argmax, tie order and score sequence — because the coarse keys *are*
//! the exact distances (binary) or exact normalized scores (int: the
//! full-width dot is exact, via the lossless i16 sidecar when every
//! value fits `±32767` and the i32 planes otherwise) and the candidate
//! multiple is ≥ k (property-tested in `tests/topk_equivalence.rs`).
//! Narrower probes trade recall for throughput; `probe_factor` is the
//! recall knob.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::binary::BinaryHv;
use crate::dense::IntHv;
use crate::error::HvError;
use crate::kernel::{self, Kernel};
use crate::par;
use crate::search::{ShardedClassMemory, BLOCK_WORDS, I16_LIMIT};

/// Rows per scan tile inside one worker: the per-tile distance strip
/// (`queries × TILE` u32) stays L2-resident.
const TOPK_ROW_TILE: usize = 1024;

/// Minimum rows per worker chunk when sharding a top-k scan.
const TOPK_ROW_CHUNK: usize = 4096;

/// One top-k hit: a row index and its similarity score (higher is more
/// similar; same float expressions as
/// [`crate::BatchSearchResult::scores`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKMatch {
    /// Row index in the memory.
    pub row: usize,
    /// Similarity score (bipolar cosine for binary, cosine for int).
    pub score: f64,
}

/// Result of a batch top-k search: per query, up to `k` matches ordered
/// best-first with ties resolved to the lowest row index — exactly the
/// order a stable sort of the full score vector would produce.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchTopKResult {
    k: usize,
    hits: Vec<Vec<TopKMatch>>,
}

impl BatchTopKResult {
    /// Number of queries searched.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Whether the batch was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// The `k` the search was asked for (matches may be fewer when the
    /// memory has fewer rows).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Matches for query `q`, best first.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn matches(&self, q: usize) -> &[TopKMatch] {
        &self.hits[q]
    }

    /// Consumes the result into the per-query match lists.
    #[must_use]
    pub fn into_matches(self) -> Vec<Vec<TopKMatch>> {
        self.hits
    }
}

/// Tuning of the pruned (coarse-quantized multi-probe) top-k scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Packed words sampled per row in the coarse pass, taken from the
    /// leading words (64 dimensions per word) so the subsample is one
    /// contiguous strided pass — hypervector dimensions are i.i.d., so
    /// any fixed word subset is equally informative. Clamped to
    /// `1..=⌈D/64⌉`; at `⌈D/64⌉` the coarse pass is the exact scan and
    /// the result is bit-identical to exact top-k.
    pub probe_words: usize,
    /// Candidate multiple: the coarse pass keeps `probe_factor · k`
    /// rows per query for exact rescoring (clamped to ≥ 1). The recall
    /// knob — recall@k rises toward 1 as the candidate set grows past
    /// the size of the query's true neighborhood.
    pub probe_factor: usize,
    /// Row count below which pruning cannot pay for itself and the
    /// call falls back to the exact scan.
    pub exact_threshold: usize,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            probe_words: 16,
            probe_factor: 32,
            exact_threshold: 32_768,
        }
    }
}

/// `f64` key ordered *descending* under `Ord` (via `total_cmp`), so a
/// lexicographic `(Desc(score), row)` ascending sort is best-first with
/// lowest-index tie order. Scores never produce NaN (norms are finite
/// and zero denominators map to a 0.0 score), so `total_cmp` agrees
/// with the strict `>` comparisons of the top-1 kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Desc(f64);

impl Eq for Desc {}

impl PartialOrd for Desc {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Desc {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.total_cmp(&self.0)
    }
}

/// Bounded max-heap keeping the `k` smallest items seen (smaller is
/// better for both candidate keys: `(hamming, row)` ascending and
/// `(Desc(score), row)` ascending). The retained set is the k smallest
/// elements of a total order, so it is independent of push order.
struct BoundedTopK<T: Ord> {
    k: usize,
    heap: BinaryHeap<T>,
}

impl<T: Ord> BoundedTopK<T> {
    fn new(k: usize) -> Self {
        BoundedTopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    fn push(&mut self, item: T) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(item);
        } else if let Some(mut worst) = self.heap.peek_mut() {
            if item < *worst {
                *worst = item;
            }
        }
    }

    /// Contents best (smallest) first.
    fn into_sorted(self) -> Vec<T> {
        self.heap.into_sorted_vec()
    }
}

/// Merges per-shard sorted candidate lists into the global best-first
/// top-k (concatenate, sort by the total candidate order, truncate).
fn merge_shards<T: Ord + Copy>(shards: &[Vec<Vec<T>>], q: usize, k: usize) -> Vec<T> {
    let mut all: Vec<T> = shards.iter().flat_map(|s| s[q].iter().copied()).collect();
    all.sort_unstable();
    all.truncate(k);
    all
}

impl ShardedClassMemory {
    /// Exact top-k Hamming search for a batch of binary queries,
    /// sharded across rows with per-shard bounded heaps.
    ///
    /// Matches are best-first with ties to the lowest row index —
    /// bit-identical (rows, score bits) to stably sorting the full
    /// score vector of [`Self::search_batch_binary`]. `k` is clamped to
    /// the row count; `k == 0` yields empty match lists.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyInput`] when the memory has no rows, or
    /// [`HvError::DimensionMismatch`] if any query disagrees on
    /// dimension.
    pub fn search_topk_binary(
        &self,
        queries: &[&BinaryHv],
        k: usize,
    ) -> Result<BatchTopKResult, HvError> {
        self.search_topk_binary_with(kernel::active(), queries, k)
    }

    /// [`Self::search_topk_binary`] on an explicit kernel backend —
    /// bit-identical results for every backend.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::search_topk_binary`].
    pub fn search_topk_binary_with(
        &self,
        kern: &Kernel,
        queries: &[&BinaryHv],
        k: usize,
    ) -> Result<BatchTopKResult, HvError> {
        if self.n_rows() == 0 {
            return Err(HvError::EmptyInput);
        }
        for q in queries {
            self.check_query_dim(q.dim())?;
        }
        let kept = k.min(self.n_rows());
        let shards = self.coarse_candidates(kern, queries, kept, self.words_per_row());
        let hits = (0..queries.len())
            .map(|q| {
                merge_shards(&shards, q, kept)
                    .into_iter()
                    .map(|(d, row)| TopKMatch {
                        row,
                        score: self.binary_score(d),
                    })
                    .collect()
            })
            .collect();
        Ok(BatchTopKResult { k, hits })
    }

    /// Pruned top-k Hamming search: a coarse pass over the leading
    /// [`ProbeConfig::probe_words`] packed words of each row keeps
    /// `probe_factor · k` candidates per query, which are then rescored
    /// with exact full-width distances. At full probe width (`probe_words ≥
    /// ⌈D/64⌉`) the result is bit-identical to
    /// [`Self::search_topk_binary`]; narrower probes trade recall for
    /// throughput. Falls back to the exact scan below
    /// [`ProbeConfig::exact_threshold`] rows.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::search_topk_binary`].
    pub fn search_topk_binary_pruned(
        &self,
        queries: &[&BinaryHv],
        k: usize,
        probe: &ProbeConfig,
    ) -> Result<BatchTopKResult, HvError> {
        self.search_topk_binary_pruned_with(kernel::active(), queries, k, probe)
    }

    /// [`Self::search_topk_binary_pruned`] on an explicit kernel
    /// backend.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::search_topk_binary`].
    pub fn search_topk_binary_pruned_with(
        &self,
        kern: &Kernel,
        queries: &[&BinaryHv],
        k: usize,
        probe: &ProbeConfig,
    ) -> Result<BatchTopKResult, HvError> {
        if self.n_rows() <= probe.exact_threshold {
            return self.search_topk_binary_with(kern, queries, k);
        }
        if self.n_rows() == 0 {
            return Err(HvError::EmptyInput);
        }
        for q in queries {
            self.check_query_dim(q.dim())?;
        }
        let kept = k.min(self.n_rows());
        let probe_words = probe.probe_words.clamp(1, self.words_per_row());
        let n_candidates = probe.probe_factor.max(1).saturating_mul(kept);
        let n_candidates = n_candidates.clamp(kept, self.n_rows());
        // Coarse pass: partial distances over the sampled word prefixes,
        // bounded heaps of size `n_candidates`.
        let shards = self.coarse_candidates(kern, queries, n_candidates, probe_words);
        // Rescore pass: exact full-width distance for every survivor,
        // then the final (distance, row) order — identical float
        // expressions to the exact scan.
        let hits = (0..queries.len())
            .map(|q| {
                let q_words = queries[q].bits().words();
                let mut exact: Vec<(u32, usize)> = merge_shards(&shards, q, n_candidates)
                    .into_iter()
                    .map(|(_, row)| (self.row_hamming(kern, q_words, row), row))
                    .collect();
                exact.sort_unstable();
                exact.truncate(kept);
                exact
                    .into_iter()
                    .map(|(d, row)| TopKMatch {
                        row,
                        score: self.binary_score(d),
                    })
                    .collect()
            })
            .collect();
        Ok(BatchTopKResult { k, hits })
    }

    /// Exact top-k cosine search over the attached integer rows,
    /// sharded across rows with per-shard bounded heaps. Matches are
    /// best-first, ties to the lowest row index — bit-identical to
    /// stably sorting the full score vector of
    /// [`Self::search_batch_int`].
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyInput`] when no integer rows are
    /// attached, or [`HvError::DimensionMismatch`] if any query
    /// disagrees on dimension.
    pub fn search_topk_int(
        &self,
        queries: &[&IntHv],
        k: usize,
    ) -> Result<BatchTopKResult, HvError> {
        self.search_topk_int_with(kernel::active(), queries, k)
    }

    /// [`Self::search_topk_int`] on an explicit kernel backend —
    /// bit-identical results for every backend.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::search_topk_int`].
    pub fn search_topk_int_with(
        &self,
        kern: &Kernel,
        queries: &[&IntHv],
        k: usize,
    ) -> Result<BatchTopKResult, HvError> {
        if !self.has_int_rows() {
            return Err(HvError::EmptyInput);
        }
        for q in queries {
            self.check_query_dim(q.dim())?;
        }
        let kept = k.min(self.n_rows());
        let q_norms: Vec<f64> = queries.iter().map(|q| q.norm()).collect();
        let shards = self.int_coarse_candidates(kern, queries, &q_norms, kept, self.dim());
        let hits = (0..queries.len())
            .map(|q| {
                merge_shards(&shards, q, kept)
                    .into_iter()
                    .map(|(s, row)| TopKMatch { row, score: s.0 })
                    .collect()
            })
            .collect();
        Ok(BatchTopKResult { k, hits })
    }

    /// Pruned top-k cosine search over the attached integer rows: a
    /// coarse pass over the leading `probe_words · 64` dimensions of
    /// the i16-saturating quantized sidecar planes keeps
    /// `probe_factor · k` candidates per query, which are then rescored
    /// with exact full-width i32 dots. The [`ProbeConfig`] semantics
    /// are shared with the binary path (`probe_words` stays in units of
    /// 64 dimensions). At full probe width (`probe_words ≥ ⌈D/64⌉`) the
    /// coarse pass runs exact dots and the result is bit-identical to
    /// [`Self::search_topk_int`]; narrower probes trade recall for
    /// throughput. Falls back to the exact scan below
    /// [`ProbeConfig::exact_threshold`] rows.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::search_topk_int`].
    pub fn search_topk_int_pruned(
        &self,
        queries: &[&IntHv],
        k: usize,
        probe: &ProbeConfig,
    ) -> Result<BatchTopKResult, HvError> {
        self.search_topk_int_pruned_with(kernel::active(), queries, k, probe)
    }

    /// [`Self::search_topk_int_pruned`] on an explicit kernel backend.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::search_topk_int`].
    pub fn search_topk_int_pruned_with(
        &self,
        kern: &Kernel,
        queries: &[&IntHv],
        k: usize,
        probe: &ProbeConfig,
    ) -> Result<BatchTopKResult, HvError> {
        if self.n_rows() <= probe.exact_threshold {
            return self.search_topk_int_with(kern, queries, k);
        }
        if !self.has_int_rows() {
            return Err(HvError::EmptyInput);
        }
        for q in queries {
            self.check_query_dim(q.dim())?;
        }
        let kept = k.min(self.n_rows());
        let probe_dims = probe.probe_words.max(1).saturating_mul(64).min(self.dim());
        let n_candidates = probe.probe_factor.max(1).saturating_mul(kept);
        let n_candidates = n_candidates.clamp(kept, self.n_rows());
        let q_norms: Vec<f64> = queries.iter().map(|q| q.norm()).collect();
        // Coarse pass: normalized partial scores over the leading
        // dimension blocks, bounded heaps of size `n_candidates`.
        let shards = self.int_coarse_candidates(kern, queries, &q_norms, n_candidates, probe_dims);
        // Rescore pass: exact full-width i32 dot for every survivor,
        // then the final (score desc, row asc) order — identical float
        // expressions to the exact scan.
        let hits = (0..queries.len())
            .map(|q| {
                let mut exact: Vec<(Desc, usize)> = merge_shards(&shards, q, n_candidates)
                    .into_iter()
                    .map(|(_, row)| {
                        let dot = self.int_row_dot(kern, row, queries[q].values());
                        (Desc(self.int_score_of_dot(row, dot, q_norms[q])), row)
                    })
                    .collect();
                exact.sort_unstable();
                exact.truncate(kept);
                exact
                    .into_iter()
                    .map(|(s, row)| TopKMatch { row, score: s.0 })
                    .collect()
            })
            .collect();
        Ok(BatchTopKResult { k, hits })
    }

    /// Exact full-width Hamming distance of one row against a query —
    /// the same per-block u32 accumulation as the batch kernels.
    fn row_hamming(&self, kern: &Kernel, q_words: &[u64], row: usize) -> u32 {
        let mut d = 0u32;
        for (b, block) in self.bin_blocks().iter().enumerate() {
            let start = b * BLOCK_WORDS;
            let end = (start + BLOCK_WORDS).min(self.words_per_row());
            let len = end - start;
            d += (kern.hamming)(&q_words[start..end], &block[row * len..(row + 1) * len]) as u32;
        }
        d
    }

    /// Row-sharded bounded-heap scan shared by exact top-k
    /// (`probe_words == words_per_row`) and the coarse pass of the
    /// pruned scan (shorter prefixes, strided row reads). Returns one
    /// entry per worker shard: per-query candidate lists sorted best
    /// first by `(distance, row)`.
    fn coarse_candidates(
        &self,
        kern: &Kernel,
        queries: &[&BinaryHv],
        keep: usize,
        probe_words: usize,
    ) -> Vec<Vec<Vec<(u32, usize)>>> {
        let words_per_row = self.words_per_row();
        let nq = queries.len();
        par::par_chunk_map(self.n_rows(), TOPK_ROW_CHUNK, |range| {
            let mut heaps: Vec<BoundedTopK<(u32, usize)>> =
                (0..nq).map(|_| BoundedTopK::new(keep)).collect();
            let mut dist = vec![0u32; nq * TOPK_ROW_TILE];
            let mut tile_start = range.start;
            while tile_start < range.end {
                let tile_end = (tile_start + TOPK_ROW_TILE).min(range.end);
                let tile = tile_end - tile_start;
                dist[..nq * tile].fill(0);
                // The probe budget is consumed from the leading blocks:
                // a narrow probe then costs one strided pass over a
                // contiguous word prefix instead of several tiny
                // per-block passes whose per-row reduction overhead
                // would eat the sampling win. At `probe_words ==
                // words_per_row` every block is scanned whole and the
                // pass is exact.
                let mut remaining = probe_words;
                for (b, block) in self.bin_blocks().iter().enumerate() {
                    let start = b * BLOCK_WORDS;
                    let end = (start + BLOCK_WORDS).min(words_per_row);
                    let len = end - start;
                    let prefix = remaining.min(len);
                    remaining -= prefix;
                    if prefix == 0 {
                        break;
                    }
                    let rows = &block[tile_start * len..tile_end * len];
                    for (qi, q) in queries.iter().enumerate() {
                        let q_block = &q.bits().words()[start..start + prefix];
                        let drow = &mut dist[qi * tile..(qi + 1) * tile];
                        if prefix == len {
                            (kern.hamming_rows)(q_block, rows, drow);
                        } else {
                            (kern.hamming_rows_stride)(q_block, rows, len, drow);
                        }
                    }
                }
                for (qi, heap) in heaps.iter_mut().enumerate() {
                    for (i, &d) in dist[qi * tile..(qi + 1) * tile].iter().enumerate() {
                        heap.push((d, tile_start + i));
                    }
                }
                tile_start = tile_end;
            }
            vec![heaps.into_iter().map(BoundedTopK::into_sorted).collect()]
        })
    }

    /// Row-sharded bounded-heap scan over the blocked integer planes,
    /// shared by exact int top-k (`probe_dims == D`) and the coarse
    /// pass of the pruned int scan (a leading-dimension prefix).
    ///
    /// Candidate keys are *normalized* partial scores
    /// (`partial_dot / (‖row‖·‖q‖)`, the same float expression as the
    /// exact kernels) rather than raw dots — rows differ in norm under
    /// the cosine metric, so a raw partial dot would not rank
    /// order-equivalently even at full width. At `probe_dims == D` the
    /// dots are exact (the lossless i16 sidecar when every value fits,
    /// the i32 planes otherwise), making the coarse key *equal* to the
    /// exact score; narrower prefixes run the i16-saturating quantized
    /// sidecar with a saturating-narrowed query — the approximate pass
    /// whose recall `probe_factor` buys back.
    fn int_coarse_candidates(
        &self,
        kern: &Kernel,
        queries: &[&IntHv],
        q_norms: &[f64],
        keep: usize,
        probe_dims: usize,
    ) -> Vec<Vec<Vec<(Desc, usize)>>> {
        let nq = queries.len();
        let exact = probe_dims >= self.dim();
        // Per-query i16 view of the query: lossless-only when the pass
        // must stay exact, saturating otherwise.
        let narrowed: Vec<Option<Vec<i16>>> = queries
            .iter()
            .map(|q| {
                if exact {
                    if self.int_fits_i16() {
                        ShardedClassMemory::narrow_query_i16(q.values())
                    } else {
                        None
                    }
                } else {
                    Some(
                        q.values()
                            .iter()
                            .map(|&v| v.clamp(-I16_LIMIT, I16_LIMIT) as i16)
                            .collect(),
                    )
                }
            })
            .collect();
        par::par_chunk_map(self.n_rows(), TOPK_ROW_CHUNK, |range| {
            let mut heaps: Vec<BoundedTopK<(Desc, usize)>> =
                (0..nq).map(|_| BoundedTopK::new(keep)).collect();
            let mut dots = vec![0i64; nq * TOPK_ROW_TILE];
            let mut tile_start = range.start;
            while tile_start < range.end {
                let tile_end = (tile_start + TOPK_ROW_TILE).min(range.end);
                let tile = tile_end - tile_start;
                dots[..nq * tile].fill(0);
                // The probe budget is consumed from the leading blocks,
                // exactly like the binary coarse pass: one strided
                // prefix scan per block instead of scattered samples.
                let mut remaining = probe_dims;
                for (b, block) in self.int_blocks().iter().enumerate() {
                    let (start, len) = self.int_block_range(b);
                    let prefix = remaining.min(len);
                    remaining -= prefix;
                    if prefix == 0 {
                        break;
                    }
                    for (qi, q) in queries.iter().enumerate() {
                        let drow = &mut dots[qi * tile..(qi + 1) * tile];
                        if let Some(nq_vals) = &narrowed[qi] {
                            let rows = &self.int_i16_blocks()[b][tile_start * len..tile_end * len];
                            let q_block = &nq_vals[start..start + prefix];
                            (kern.dot_i16_rows_stride)(q_block, rows, len, drow);
                        } else {
                            let rows = &block[tile_start * len..tile_end * len];
                            let q_block = &q.values()[start..start + prefix];
                            (kern.dot_rows_stride)(q_block, rows, len, drow);
                        }
                    }
                }
                for (qi, heap) in heaps.iter_mut().enumerate() {
                    for (i, &dot) in dots[qi * tile..(qi + 1) * tile].iter().enumerate() {
                        let row = tile_start + i;
                        heap.push((Desc(self.int_score_of_dot(row, dot, q_norms[qi])), row));
                    }
                }
                tile_start = tile_end;
            }
            vec![heaps.into_iter().map(BoundedTopK::into_sorted).collect()]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HvRng;

    #[test]
    fn bounded_heap_keeps_k_smallest_in_order() {
        let mut h = BoundedTopK::new(3);
        for v in [9u32, 1, 7, 3, 5, 2, 8] {
            h.push((v, 0usize));
        }
        assert_eq!(h.into_sorted(), vec![(1, 0), (2, 0), (3, 0)]);
        let mut empty = BoundedTopK::<(u32, usize)>::new(0);
        empty.push((1, 0));
        assert_eq!(empty.into_sorted(), vec![]);
    }

    #[test]
    fn desc_orders_scores_best_first() {
        let mut v = [(Desc(0.1), 4usize), (Desc(0.9), 2), (Desc(0.9), 1)];
        v.sort_unstable();
        assert_eq!(v.iter().map(|&(_, r)| r).collect::<Vec<_>>(), vec![1, 2, 4]);
    }

    #[test]
    fn topk_binary_matches_full_sort_reference() {
        let dim = 130;
        let mut rng = HvRng::from_seed(21);
        let rows: Vec<BinaryHv> = (0..37).map(|_| rng.binary_hv(dim)).collect();
        let mem = ShardedClassMemory::from_rows(&rows).unwrap();
        let queries: Vec<BinaryHv> = (0..5).map(|_| rng.binary_hv(dim)).collect();
        let refs: Vec<&BinaryHv> = queries.iter().collect();
        let k = 7;
        let got = mem.search_topk_binary(&refs, k).unwrap();
        let full = mem.search_batch_binary(&refs).unwrap();
        for (q, query) in queries.iter().enumerate() {
            let mut order: Vec<(usize, usize)> = rows
                .iter()
                .enumerate()
                .map(|(r, row)| (row.hamming(query), r))
                .collect();
            order.sort_unstable();
            let matches = got.matches(q);
            assert_eq!(matches.len(), k);
            for (m, &(_, want_row)) in matches.iter().zip(order.iter()) {
                assert_eq!(m.row, want_row);
                assert_eq!(m.score.to_bits(), full.scores(q)[want_row].to_bits());
            }
            // Top-1 agrees with the argmax kernel.
            assert_eq!(matches[0].row, full.best(q));
        }
    }

    #[test]
    fn topk_handles_k_edge_cases() {
        let mut rng = HvRng::from_seed(22);
        let rows: Vec<BinaryHv> = (0..4).map(|_| rng.binary_hv(256)).collect();
        let mem = ShardedClassMemory::from_rows(&rows).unwrap();
        let q = rng.binary_hv(256);
        let zero = mem.search_topk_binary(&[&q], 0).unwrap();
        assert_eq!(zero.matches(0).len(), 0);
        let over = mem.search_topk_binary(&[&q], 100).unwrap();
        assert_eq!(over.matches(0).len(), 4);
        assert_eq!(over.k(), 100);
        // All four rows present, best-first.
        let rows_seen: Vec<usize> = over.matches(0).iter().map(|m| m.row).collect();
        let mut sorted = rows_seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        for w in over.matches(0).windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn topk_empty_memory_and_bad_dims_error() {
        let mem = ShardedClassMemory::new(64);
        let mut rng = HvRng::from_seed(23);
        let q = rng.binary_hv(64);
        assert_eq!(
            mem.search_topk_binary(&[&q], 3).unwrap_err(),
            HvError::EmptyInput
        );
        let mem = ShardedClassMemory::from_rows(&[rng.binary_hv(64)]).unwrap();
        let bad = rng.binary_hv(65);
        assert_eq!(
            mem.search_topk_binary(&[&bad], 1).unwrap_err(),
            HvError::DimensionMismatch {
                expected: 64,
                found: 65
            }
        );
        assert_eq!(
            mem.search_topk_int(&[&bad.to_int()], 1).unwrap_err(),
            HvError::EmptyInput
        );
    }

    #[test]
    fn topk_duplicate_rows_keep_lowest_indices() {
        let mut rng = HvRng::from_seed(24);
        let base = rng.binary_hv(192);
        let rows = vec![base.clone(), base.clone(), base.clone(), base.clone()];
        let mem = ShardedClassMemory::from_rows(&rows).unwrap();
        let q = rng.binary_hv(192);
        let got = mem.search_topk_binary(&[&q], 2).unwrap();
        let picked: Vec<usize> = got.matches(0).iter().map(|m| m.row).collect();
        assert_eq!(picked, vec![0, 1]);
    }

    #[test]
    fn topk_int_matches_full_sort_reference() {
        let dim = 257;
        let mut rng = HvRng::from_seed(25);
        let bins: Vec<BinaryHv> = (0..9).map(|_| rng.binary_hv(dim)).collect();
        let ints: Vec<IntHv> = bins
            .iter()
            .map(|b| {
                let mut acc = b.to_int();
                acc.add_binary(&rng.binary_hv(dim));
                acc
            })
            .collect();
        let mut mem = ShardedClassMemory::from_rows(&bins).unwrap();
        mem.set_int_rows(&ints).unwrap();
        let queries: Vec<IntHv> = (0..4).map(|_| rng.binary_hv(dim).to_int()).collect();
        let refs: Vec<&IntHv> = queries.iter().collect();
        let k = 3;
        let got = mem.search_topk_int(&refs, k).unwrap();
        let full = mem.search_batch_int(&refs).unwrap();
        for q in 0..queries.len() {
            let mut order: Vec<(Desc, usize)> = full
                .scores(q)
                .iter()
                .enumerate()
                .map(|(r, &s)| (Desc(s), r))
                .collect();
            order.sort_unstable();
            for (m, &(want_s, want_row)) in got.matches(q).iter().zip(order.iter()) {
                assert_eq!(m.row, want_row);
                assert_eq!(m.score.to_bits(), want_s.0.to_bits());
            }
            assert_eq!(got.matches(q)[0].row, full.best(q));
        }
    }

    #[test]
    fn pruned_full_width_is_bit_identical_to_exact() {
        let dim = 1030;
        let mut rng = HvRng::from_seed(26);
        let rows: Vec<BinaryHv> = (0..300).map(|_| rng.binary_hv(dim)).collect();
        let mem = ShardedClassMemory::from_rows(&rows).unwrap();
        let queries: Vec<BinaryHv> = (0..4).map(|_| rng.binary_hv(dim)).collect();
        let refs: Vec<&BinaryHv> = queries.iter().collect();
        // exact_threshold 0 forces the two-phase machinery.
        let probe = ProbeConfig {
            probe_words: mem.words_per_row(),
            probe_factor: 2,
            exact_threshold: 0,
        };
        let exact = mem.search_topk_binary(&refs, 5).unwrap();
        let pruned = mem.search_topk_binary_pruned(&refs, 5, &probe).unwrap();
        assert_eq!(exact, pruned);
    }

    #[test]
    fn pruned_below_threshold_falls_back_to_exact() {
        let mut rng = HvRng::from_seed(27);
        let rows: Vec<BinaryHv> = (0..50).map(|_| rng.binary_hv(256)).collect();
        let mem = ShardedClassMemory::from_rows(&rows).unwrap();
        let q = rng.binary_hv(256);
        let probe = ProbeConfig::default(); // exact_threshold ≫ 50 rows
        let exact = mem.search_topk_binary(&[&q], 4).unwrap();
        let pruned = mem.search_topk_binary_pruned(&[&q], 4, &probe).unwrap();
        assert_eq!(exact, pruned);
    }

    /// Copy of `base` with roughly `rate · D` random bit flips.
    fn noisy(base: &BinaryHv, rng: &mut HvRng, rate: f64) -> BinaryHv {
        let mut v = base.clone();
        let flips = (base.dim() as f64 * rate) as usize;
        for _ in 0..flips {
            v.flip(rng.index(base.dim()));
        }
        v
    }

    #[test]
    fn narrow_probe_recalls_planted_neighbors() {
        // A planted cluster well below the random-distance band: even a
        // few-word probe must recover it, because the coarse distances
        // separate cluster from background by many sigma.
        let dim = 4096;
        let mut rng = HvRng::from_seed(28);
        let center = rng.binary_hv(dim);
        let mut rows: Vec<BinaryHv> = (0..400).map(|_| rng.binary_hv(dim)).collect();
        for slot in [17usize, 101, 333] {
            rows[slot] = noisy(&center, &mut rng, 0.05);
        }
        let mem = ShardedClassMemory::from_rows(&rows).unwrap();
        let probe = ProbeConfig {
            probe_words: 4,
            probe_factor: 8,
            exact_threshold: 0,
        };
        let pruned = mem
            .search_topk_binary_pruned(&[&center], 3, &probe)
            .unwrap();
        let mut found: Vec<usize> = pruned.matches(0).iter().map(|m| m.row).collect();
        found.sort_unstable();
        assert_eq!(found, vec![17, 101, 333]);
    }
}
