//! Correlated value ("level") hypervectors.
//!
//! Feature *values* are discretized into `M` levels and each level gets a
//! hypervector. Unlike feature hypervectors (mutually orthogonal), level
//! hypervectors are **linearly correlated**: the normalized Hamming
//! distance between level `a` and level `b` is `0.5 · |a−b| / (M−1)`
//! (paper Eq. 1b), so only the first and last level are orthogonal.
//!
//! The family is built by progressive flipping: starting from a random
//! `ValHV_1`, each next level flips a fresh batch of ≈ `D/(2(M−1))`
//! positions that were never flipped before, chosen from a random
//! permutation of the dimensions.

use serde::{Deserialize, Serialize};

use crate::binary::BinaryHv;
use crate::error::HvError;
use crate::rng::HvRng;

/// A family of `M` linearly-correlated level hypervectors.
///
/// # Examples
///
/// ```
/// use hypervec::{HvRng, LevelHvs};
///
/// let mut rng = HvRng::from_seed(0);
/// let levels = LevelHvs::generate(&mut rng, 10_000, 16)?;
/// // endpoints are (exactly) D/2 apart: orthogonal
/// assert_eq!(levels.level(0).hamming(levels.level(15)), 5_000);
/// # Ok::<(), hypervec::HvError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "Vec<BinaryHv>", into = "Vec<BinaryHv>")]
pub struct LevelHvs {
    levels: Vec<BinaryHv>,
}

impl From<LevelHvs> for Vec<BinaryHv> {
    fn from(l: LevelHvs) -> Self {
        l.levels
    }
}

impl TryFrom<Vec<BinaryHv>> for LevelHvs {
    type Error = HvError;

    /// Deserialization path: re-runs [`LevelHvs::from_levels`]
    /// validation so malformed snapshots are rejected.
    fn try_from(levels: Vec<BinaryHv>) -> Result<Self, Self::Error> {
        LevelHvs::from_levels(levels)
    }
}

impl LevelHvs {
    /// Generates a family of `m` levels in dimension `dim`.
    ///
    /// Exactly `dim / 2` distinct positions are flipped across the whole
    /// ladder (split as evenly as possible between the `m − 1` steps), so
    /// `Hamm(ValHV_1, ValHV_M) = dim/2` holds exactly.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::TooFewLevels`] if `m < 2` and
    /// [`HvError::DimensionTooSmall`] if `dim / 2 < m − 1` (not enough
    /// positions for every step to flip at least one bit).
    pub fn generate(rng: &mut HvRng, dim: usize, m: usize) -> Result<Self, HvError> {
        if m < 2 {
            return Err(HvError::TooFewLevels { requested: m });
        }
        if dim / 2 < m - 1 {
            return Err(HvError::DimensionTooSmall {
                dim,
                required: 2 * (m - 1),
            });
        }
        let base = rng.binary_hv(dim);
        let order = rng.shuffled_indices(dim);
        let total_flips = dim / 2;
        let steps = m - 1;
        let mut levels = Vec::with_capacity(m);
        levels.push(base);
        let mut flipped = 0usize;
        for s in 0..steps {
            // Distribute total_flips across steps as evenly as possible.
            let target = (total_flips * (s + 1)) / steps;
            let mut next = levels[s].clone();
            while flipped < target {
                next.flip(order[flipped]);
                flipped += 1;
            }
            levels.push(next);
        }
        Ok(LevelHvs { levels })
    }

    /// Number of levels `M`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.levels.len()
    }

    /// Dimensionality of each level hypervector.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.levels[0].dim()
    }

    /// The hypervector for level `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.m()`.
    #[must_use]
    pub fn level(&self, i: usize) -> &BinaryHv {
        &self.levels[i]
    }

    /// All level hypervectors in order.
    #[must_use]
    pub fn levels(&self) -> &[BinaryHv] {
        &self.levels
    }

    /// The Hamming distance Eq. 1b predicts between levels `a` and `b`.
    #[must_use]
    pub fn expected_hamming(&self, a: usize, b: usize) -> usize {
        let steps = self.m() - 1;
        let total = self.dim() / 2;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        (total * hi) / steps - (total * lo) / steps
    }

    /// Rebuilds a `LevelHvs` from raw hypervectors (e.g. recovered by an
    /// attack), validating dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::TooFewLevels`] for fewer than two vectors and
    /// [`HvError::DimensionMismatch`] if dimensions disagree.
    pub fn from_levels(levels: Vec<BinaryHv>) -> Result<Self, HvError> {
        if levels.len() < 2 {
            return Err(HvError::TooFewLevels {
                requested: levels.len(),
            });
        }
        let dim = levels[0].dim();
        for hv in &levels {
            if hv.dim() != dim {
                return Err(HvError::DimensionMismatch {
                    expected: dim,
                    found: hv.dim(),
                });
            }
        }
        Ok(LevelHvs { levels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_are_linear_exact() {
        let mut rng = HvRng::from_seed(42);
        let fam = LevelHvs::generate(&mut rng, 10_000, 11).unwrap();
        for a in 0..11 {
            for b in 0..11 {
                let d = fam.level(a).hamming(fam.level(b));
                assert_eq!(d, fam.expected_hamming(a, b), "levels {a},{b}");
            }
        }
        // endpoint orthogonality
        assert_eq!(fam.level(0).hamming(fam.level(10)), 5_000);
    }

    #[test]
    fn distances_linear_with_uneven_division() {
        // 1000/2 = 500 flips across 7 steps — not divisible.
        let mut rng = HvRng::from_seed(43);
        let fam = LevelHvs::generate(&mut rng, 1000, 8).unwrap();
        let d_total = fam.level(0).hamming(fam.level(7));
        assert_eq!(d_total, 500);
        // monotone along the ladder
        for i in 0..7 {
            assert!(fam.level(0).hamming(fam.level(i)) <= fam.level(0).hamming(fam.level(i + 1)));
        }
    }

    #[test]
    fn consecutive_levels_are_close() {
        let mut rng = HvRng::from_seed(44);
        let fam = LevelHvs::generate(&mut rng, 10_000, 21).unwrap();
        for i in 0..20 {
            let d = fam.level(i).normalized_hamming(fam.level(i + 1));
            assert!(d < 0.03, "consecutive levels {i} distance {d}");
        }
    }

    #[test]
    fn two_levels_are_orthogonal_endpoints() {
        let mut rng = HvRng::from_seed(45);
        let fam = LevelHvs::generate(&mut rng, 2048, 2).unwrap();
        assert_eq!(fam.level(0).hamming(fam.level(1)), 1024);
    }

    #[test]
    fn rejects_single_level() {
        let mut rng = HvRng::from_seed(46);
        assert_eq!(
            LevelHvs::generate(&mut rng, 100, 1).unwrap_err(),
            HvError::TooFewLevels { requested: 1 }
        );
    }

    #[test]
    fn rejects_tiny_dimension() {
        let mut rng = HvRng::from_seed(47);
        assert!(matches!(
            LevelHvs::generate(&mut rng, 8, 100),
            Err(HvError::DimensionTooSmall { .. })
        ));
    }

    #[test]
    fn from_levels_validates() {
        let mut rng = HvRng::from_seed(48);
        let a = rng.binary_hv(64);
        let b = rng.binary_hv(64);
        let c = rng.binary_hv(65);
        assert!(LevelHvs::from_levels(vec![a.clone(), b.clone()]).is_ok());
        assert!(matches!(
            LevelHvs::from_levels(vec![a.clone()]),
            Err(HvError::TooFewLevels { .. })
        ));
        assert!(matches!(
            LevelHvs::from_levels(vec![a, b, c]),
            Err(HvError::DimensionMismatch { .. })
        ));
    }
}
