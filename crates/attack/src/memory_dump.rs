//! What the attacker reads out of non-secured memory.
//!
//! In the paper's threat model the hypervectors themselves live in
//! ordinary memory; only the index mapping is secret. A
//! [`StandardDump`] is therefore the victim's feature and value
//! hypervectors in a random, unknown order. For HDLock the public
//! surface is the base pool plus the value hypervectors
//! ([`HdlockDump`]); Sec. 4.2 additionally grants the attacker the full
//! value *mapping* (a strengthening, since values are unprotected by
//! design).

use hdc_model::RecordEncoder;
use hdlock::{BasePool, LockedEncoder};
use hypervec::{HvRng, ItemMemory, LevelHvs};

/// The attacker's view of a standard HDC model's memory: unindexed
/// (shuffled) feature and value hypervectors.
#[derive(Debug, Clone)]
pub struct StandardDump {
    /// The `N` feature hypervectors in unknown order.
    pub feature_pool: ItemMemory,
    /// The `M` value hypervectors in unknown order.
    pub value_pool: ItemMemory,
}

/// The hidden permutations behind a [`StandardDump`] — available to
/// tests and experiment harnesses for verifying recovered mappings,
/// never to attack code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpGroundTruth {
    /// `feature_perm[row] = original feature index` for the shuffled
    /// feature pool.
    pub feature_perm: Vec<usize>,
    /// `value_perm[row] = original level` for the shuffled value pool.
    pub value_perm: Vec<usize>,
}

impl StandardDump {
    /// Dumps a victim encoder's memory with fresh random shuffles,
    /// returning the attacker view and the (test-only) ground truth.
    #[must_use]
    pub fn from_encoder(encoder: &RecordEncoder, rng: &mut HvRng) -> (Self, DumpGroundTruth) {
        let (feature_pool, feature_perm) = encoder.features().shuffled(rng);
        let value_mem = ItemMemory::from_rows(encoder.values().levels().to_vec())
            .expect("level family is non-empty and consistent");
        let (value_pool, value_perm) = value_mem.shuffled(rng);
        (
            StandardDump {
                feature_pool,
                value_pool,
            },
            DumpGroundTruth {
                feature_perm,
                value_perm,
            },
        )
    }

    /// Number of feature hypervectors `N`.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.feature_pool.len()
    }

    /// Number of value hypervectors `M`.
    #[must_use]
    pub fn m_levels(&self) -> usize {
        self.value_pool.len()
    }

    /// Hypervector dimensionality `D`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.feature_pool.dim()
    }
}

/// The attacker's view of an HDLock-protected model: the public base
/// pool and the value hypervectors **with** their mapping (the paper's
/// strong Sec. 4.2 assumption).
#[derive(Debug, Clone)]
pub struct HdlockDump {
    /// The public pool of `P` base hypervectors.
    pub base_pool: BasePool,
    /// The value hypervectors in level order (mapping known).
    pub values: LevelHvs,
}

impl HdlockDump {
    /// Dumps the public surface of a locked encoder.
    #[must_use]
    pub fn from_encoder(encoder: &LockedEncoder) -> Self {
        HdlockDump {
            base_pool: encoder.pool().clone(),
            values: encoder.values().clone(),
        }
    }

    /// Pool size `P`.
    #[must_use]
    pub fn pool_size(&self) -> usize {
        self.base_pool.len()
    }

    /// Hypervector dimensionality `D`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.base_pool.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdlock::LockConfig;

    #[test]
    fn standard_dump_shuffles_consistently() {
        let mut rng = HvRng::from_seed(1);
        let enc = RecordEncoder::generate(&mut rng, 10, 4, 512).unwrap();
        let (dump, truth) = StandardDump::from_encoder(&enc, &mut rng);
        assert_eq!(dump.n_features(), 10);
        assert_eq!(dump.m_levels(), 4);
        for (row, &orig) in truth.feature_perm.iter().enumerate() {
            assert_eq!(
                dump.feature_pool.get(row).unwrap(),
                enc.features().get(orig).unwrap(),
                "feature row {row}"
            );
        }
        for (row, &orig) in truth.value_perm.iter().enumerate() {
            assert_eq!(dump.value_pool.get(row).unwrap(), enc.values().level(orig));
        }
    }

    #[test]
    fn hdlock_dump_exposes_only_public_parts() {
        let mut rng = HvRng::from_seed(2);
        let cfg = LockConfig {
            n_features: 8,
            m_levels: 4,
            dim: 256,
            pool_size: 16,
            n_layers: 2,
        };
        let enc = LockedEncoder::generate(&mut rng, &cfg).unwrap();
        let dump = HdlockDump::from_encoder(&enc);
        assert_eq!(dump.pool_size(), 16);
        assert_eq!(dump.dim(), 256);
        // The dump type carries no key; this is enforced by construction,
        // and the vault's Debug never leaks material either.
        let dbg = format!("{:?}", enc.vault());
        assert!(!dbg.contains("rotation"));
    }
}
