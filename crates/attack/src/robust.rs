//! Oracle perturbations: how robust is the reasoning attack, and do
//! cheap countermeasures (noise, rate limiting) help?
//!
//! Neither wrapper appears in the paper; they answer the two obvious
//! "couldn't the defender just…?" questions the paper's threat model
//! raises:
//!
//! * [`NoisyOracle`] flips each observed output bit with probability
//!   `p` — a defender adding response noise. The attack's distance
//!   margin (≈ 0.5 for wrong guesses vs 0 for the correct one) absorbs
//!   large `p`, so noise is not a defense (and it degrades the
//!   legitimate service symmetrically).
//! * [`ThrottledOracle`] answers only the first `budget` queries
//!   faithfully and poisons everything after — a rate-limiting
//!   detector. The attack needs exactly `N + 1` queries, so a budget
//!   below that breaks recovery — but also breaks any legitimate bulk
//!   user, which is why the paper locks the encoding instead.

use std::sync::atomic::{AtomicU64, Ordering};

use hypervec::{BinaryHv, HvRng, IntHv};
use parking_lot::Mutex;

use crate::oracle::EncodingOracle;

/// An oracle whose answers are perturbed by independent bit flips.
#[derive(Debug)]
pub struct NoisyOracle<O> {
    inner: O,
    flip_probability: f64,
    rng: Mutex<HvRng>,
}

impl<O: EncodingOracle> NoisyOracle<O> {
    /// Wraps `inner`, flipping each binary output bit (and negating
    /// each integer output entry) with probability `flip_probability`.
    ///
    /// # Panics
    ///
    /// Panics if `flip_probability` is outside `[0, 1]`.
    #[must_use]
    pub fn new(inner: O, flip_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&flip_probability),
            "flip probability must be in [0, 1]"
        );
        NoisyOracle {
            inner,
            flip_probability,
            rng: Mutex::new(HvRng::from_seed(seed)),
        }
    }

    /// The configured flip probability.
    #[must_use]
    pub fn flip_probability(&self) -> f64 {
        self.flip_probability
    }
}

impl<O: EncodingOracle> EncodingOracle for NoisyOracle<O> {
    fn n_features(&self) -> usize {
        self.inner.n_features()
    }

    fn m_levels(&self) -> usize {
        self.inner.m_levels()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn query_binary(&self, levels: &[u16]) -> BinaryHv {
        let mut hv = self.inner.query_binary(levels);
        let mut rng = self.rng.lock();
        for d in 0..hv.dim() {
            if rng.unit_f64() < self.flip_probability {
                hv.flip(d);
            }
        }
        hv
    }

    fn query_int(&self, levels: &[u16]) -> IntHv {
        let hv = self.inner.query_int(levels);
        let mut rng = self.rng.lock();
        IntHv::from_fn(hv.dim(), |d| {
            if rng.unit_f64() < self.flip_probability {
                -hv.get(d)
            } else {
                hv.get(d)
            }
        })
    }
}

/// A cumulative query budget: the first `budget` recorded queries are
/// admitted, everything after is flagged.
///
/// This is the counting core of [`ThrottledOracle`], factored out so the
/// serving layer's admission controller enforces *exactly* the same
/// semantics the attack experiments were run against: when
/// `throttling_below_query_need_breaks_the_attack` shows an N-query
/// budget stops the `N + 1`-query probe, a server budgeting clients with
/// the same counter inherits that guarantee.
///
/// Thread-safe and contention-free: one relaxed `fetch_add` per query.
/// The count is exact under concurrency; only the *order* in which
/// racing queries consume the last tokens is unspecified (each query
/// still gets an unambiguous admit/reject).
#[derive(Debug)]
pub struct QueryBudget {
    budget: u64,
    served: AtomicU64,
}

impl QueryBudget {
    /// A budget admitting the first `budget` queries.
    #[must_use]
    pub fn new(budget: u64) -> Self {
        QueryBudget {
            budget,
            served: AtomicU64::new(0),
        }
    }

    /// The configured budget.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Queries recorded so far (admitted + rejected).
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Queries still admissible.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.budget.saturating_sub(self.served())
    }

    /// Records one query; `true` while within budget.
    pub fn admit(&self) -> bool {
        self.served.fetch_add(1, Ordering::Relaxed) < self.budget
    }
}

/// An oracle that rate-limits: after `budget` queries it returns
/// poisoned (random) answers instead of real encodings.
#[derive(Debug)]
pub struct ThrottledOracle<O> {
    inner: O,
    budget: QueryBudget,
    rng: Mutex<HvRng>,
}

impl<O: EncodingOracle> ThrottledOracle<O> {
    /// Wraps `inner` with a faithful-answer budget.
    #[must_use]
    pub fn new(inner: O, budget: u64, seed: u64) -> Self {
        ThrottledOracle {
            inner,
            budget: QueryBudget::new(budget),
            rng: Mutex::new(HvRng::from_seed(seed)),
        }
    }

    /// Queries answered so far (faithful + poisoned).
    #[must_use]
    pub fn served(&self) -> u64 {
        self.budget.served()
    }

    fn exhausted(&self) -> bool {
        !self.budget.admit()
    }
}

impl<O: EncodingOracle> EncodingOracle for ThrottledOracle<O> {
    fn n_features(&self) -> usize {
        self.inner.n_features()
    }

    fn m_levels(&self) -> usize {
        self.inner.m_levels()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn query_binary(&self, levels: &[u16]) -> BinaryHv {
        if self.exhausted() {
            return self.rng.lock().binary_hv(self.inner.dim());
        }
        self.inner.query_binary(levels)
    }

    fn query_int(&self, levels: &[u16]) -> IntHv {
        if self.exhausted() {
            let hv = self.rng.lock().binary_hv(self.inner.dim());
            let n = self.inner.n_features() as i32;
            return IntHv::from_fn(hv.dim(), |d| i32::from(hv.polarity(d)) * (n / 2).max(1));
        }
        self.inner.query_int(levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory_dump::StandardDump;
    use crate::oracle::CountingOracle;
    use crate::reconstruct::{mapping_accuracy, reason_encoding};
    use crate::FeatureExtractOptions;
    use hdc_model::{ModelKind, RecordEncoder};

    fn setup(seed: u64, n: usize) -> (RecordEncoder, StandardDump, crate::DumpGroundTruth) {
        let mut rng = HvRng::from_seed(seed);
        let enc = RecordEncoder::generate(&mut rng, n, 4, 4096).unwrap();
        let (dump, truth) = StandardDump::from_encoder(&enc, &mut rng);
        (enc, dump, truth)
    }

    #[test]
    fn attack_survives_moderate_noise() {
        let (enc, dump, truth) = setup(1, 25);
        let noisy = NoisyOracle::new(CountingOracle::new(&enc), 0.02, 7);
        let recovered = reason_encoding(
            &noisy,
            &dump,
            ModelKind::Binary,
            FeatureExtractOptions::default(),
        )
        .unwrap();
        assert_eq!(
            mapping_accuracy(&recovered, &truth),
            1.0,
            "2% response noise must not stop the attack"
        );
    }

    #[test]
    fn extreme_noise_finally_breaks_recovery() {
        let (enc, dump, truth) = setup(2, 25);
        // 50% flips = pure noise: no information leaves the oracle.
        let noisy = NoisyOracle::new(CountingOracle::new(&enc), 0.5, 8);
        let recovered = reason_encoding(
            &noisy,
            &dump,
            ModelKind::Binary,
            FeatureExtractOptions::default(),
        );
        if let Ok(rec) = recovered {
            assert!(
                mapping_accuracy(&rec, &truth) < 0.5,
                "pure-noise oracle cannot yield the mapping"
            );
        }
        // an AmbiguousAssignment error is an equally acceptable outcome
    }

    #[test]
    fn zero_noise_is_transparent() {
        let (enc, dump, _) = setup(3, 10);
        let plain = CountingOracle::new(&enc);
        let noisy = NoisyOracle::new(CountingOracle::new(&enc), 0.0, 9);
        let row = crate::oracle::all_min_row(10);
        assert_eq!(noisy.query_binary(&row), plain.query_binary(&row));
        let _ = dump;
    }

    #[test]
    fn query_budget_admits_exactly_budget_queries() {
        let b = QueryBudget::new(3);
        assert_eq!(b.remaining(), 3);
        assert!(b.admit());
        assert!(b.admit());
        assert!(b.admit());
        assert!(!b.admit());
        assert!(!b.admit());
        assert_eq!(b.served(), 5);
        assert_eq!(b.remaining(), 0);
        assert_eq!(b.budget(), 3);
    }

    #[test]
    fn query_budget_is_exact_under_concurrency() {
        let b = QueryBudget::new(100);
        let admitted = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        if b.admit() {
                            admitted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(admitted.load(Ordering::Relaxed), 100);
        assert_eq!(b.served(), 200);
    }

    #[test]
    fn throttling_below_query_need_breaks_the_attack() {
        let (enc, dump, truth) = setup(4, 25);
        // The attack needs N + 1 = 26 queries; grant only 10.
        let throttled = ThrottledOracle::new(CountingOracle::new(&enc), 10, 11);
        let recovered = reason_encoding(
            &throttled,
            &dump,
            ModelKind::Binary,
            FeatureExtractOptions::default(),
        );
        // An Err (ambiguous assignment) is also a pass.
        if let Ok(rec) = recovered {
            assert!(
                mapping_accuracy(&rec, &truth) < 0.9,
                "a 10-query budget must not allow full recovery"
            );
        }
        assert!(throttled.served() >= 10);
    }

    #[test]
    fn throttling_above_query_need_changes_nothing() {
        let (enc, dump, truth) = setup(5, 25);
        let throttled = ThrottledOracle::new(CountingOracle::new(&enc), 26, 12);
        let recovered = reason_encoding(
            &throttled,
            &dump,
            ModelKind::Binary,
            FeatureExtractOptions::default(),
        )
        .unwrap();
        assert_eq!(mapping_accuracy(&recovered, &truth), 1.0);
    }
}
