//! The attacker's query interface to a victim encoding module.
//!
//! The paper's threat model (Sec. 3.1) lets the adversary "craft his/her
//! own inputs and observe the encoding outputs". [`EncodingOracle`]
//! models exactly that channel; [`CountingOracle`] wraps any encoder and
//! audits how many queries an attack consumed. [`SessionOracle`] wraps a
//! *deployed* [`InferenceSession`] instead — the attacker drives the
//! same fused encode→search pipeline that serves production traffic, so
//! measured attack cost and served throughput describe one code path,
//! with identical per-row accounting.

use std::sync::atomic::{AtomicU64, Ordering};

use hdc_model::{Encoder, InferenceSession};
use hypervec::{BinaryHv, IntHv};

/// Chosen-input access to a victim encoder's outputs.
pub trait EncodingOracle {
    /// Number of input features `N` (public: input width is observable).
    fn n_features(&self) -> usize;

    /// Number of value levels `M` (public: quantizer range is observable).
    fn m_levels(&self) -> usize;

    /// Hypervector dimensionality `D`.
    fn dim(&self) -> usize;

    /// Observes the binary encoding of a chosen input (binary models).
    fn query_binary(&self, levels: &[u16]) -> BinaryHv;

    /// Observes the non-binarized encoding of a chosen input
    /// (non-binary models).
    fn query_int(&self, levels: &[u16]) -> IntHv;

    /// Observes the binary encodings of a batch of chosen inputs.
    ///
    /// Cost accounting is unchanged — a batch of `k` rows is `k` oracle
    /// queries — but implementations backed by a real encoder forward to
    /// its word-parallel batch path, which is what lets attack harnesses
    /// drive encode+compare oracle calls at full throughput.
    fn query_binary_batch(&self, rows: &[&[u16]]) -> Vec<BinaryHv> {
        rows.iter().map(|row| self.query_binary(row)).collect()
    }

    /// Observes the non-binarized encodings of a batch of chosen inputs;
    /// the non-binary sibling of [`EncodingOracle::query_binary_batch`].
    fn query_int_batch(&self, rows: &[&[u16]]) -> Vec<IntHv> {
        rows.iter().map(|row| self.query_int(row)).collect()
    }
}

/// Wraps an [`Encoder`] as an oracle, counting queries.
///
/// # Examples
///
/// ```
/// use hdc_attack::{CountingOracle, EncodingOracle};
/// use hdc_model::RecordEncoder;
/// use hypervec::HvRng;
///
/// let mut rng = HvRng::from_seed(0);
/// let enc = RecordEncoder::generate(&mut rng, 8, 4, 512)?;
/// let oracle = CountingOracle::new(&enc);
/// let _ = oracle.query_binary(&vec![0u16; 8]);
/// assert_eq!(oracle.queries(), 1);
/// # Ok::<(), hypervec::HvError>(())
/// ```
#[derive(Debug)]
pub struct CountingOracle<'a, E> {
    encoder: &'a E,
    queries: AtomicU64,
}

impl<'a, E: Encoder> CountingOracle<'a, E> {
    /// Wraps a victim encoder.
    #[must_use]
    pub fn new(encoder: &'a E) -> Self {
        CountingOracle {
            encoder,
            queries: AtomicU64::new(0),
        }
    }

    /// Total queries observed so far.
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }
}

impl<E: Encoder + Sync> EncodingOracle for CountingOracle<'_, E> {
    fn n_features(&self) -> usize {
        self.encoder.n_features()
    }

    fn m_levels(&self) -> usize {
        self.encoder.m_levels()
    }

    fn dim(&self) -> usize {
        self.encoder.dim()
    }

    fn query_binary(&self, levels: &[u16]) -> BinaryHv {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.encoder.encode_binary(levels)
    }

    fn query_int(&self, levels: &[u16]) -> IntHv {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.encoder.encode_int(levels)
    }

    fn query_binary_batch(&self, rows: &[&[u16]]) -> Vec<BinaryHv> {
        self.queries.fetch_add(rows.len() as u64, Ordering::Relaxed);
        self.encoder.encode_batch_binary(rows)
    }

    fn query_int_batch(&self, rows: &[&[u16]]) -> Vec<IntHv> {
        self.queries.fetch_add(rows.len() as u64, Ordering::Relaxed);
        self.encoder.encode_batch_int(rows)
    }
}

/// The attacker's chosen-input channel into a *deployed* model: an
/// [`EncodingOracle`] backed by the serving pipeline's
/// [`InferenceSession`] rather than a bare encoder reference.
///
/// Encoding queries forward to the session's encoder (the paper's
/// Sec. 3.1 observation channel) and decision queries
/// ([`SessionOracle::classify_batch`]) run the fused encode→search
/// path; both count one query per row, exactly like
/// [`CountingOracle`], so attack-cost accounting is unchanged by the
/// serving refactor.
#[derive(Debug)]
pub struct SessionOracle<'a, 'm, E> {
    session: &'a InferenceSession<'m, E>,
    queries: AtomicU64,
}

impl<'a, 'm, E: Encoder + Sync> SessionOracle<'a, 'm, E> {
    /// Wraps a deployed inference session.
    #[must_use]
    pub fn new(session: &'a InferenceSession<'m, E>) -> Self {
        SessionOracle {
            session,
            queries: AtomicU64::new(0),
        }
    }

    /// Total queries observed so far (encoding + decision).
    #[must_use]
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Black-box *decision* access: top-1 class per chosen input,
    /// through the deployed fused batch path. A batch of `k` rows is
    /// `k` oracle queries.
    ///
    /// # Panics
    ///
    /// Panics if any row's width does not match the deployed encoder.
    #[must_use]
    pub fn classify_batch(&self, rows: &[&[u16]]) -> Vec<usize> {
        self.queries.fetch_add(rows.len() as u64, Ordering::Relaxed);
        self.session.classify_batch(rows)
    }
}

impl<E: Encoder + Sync> EncodingOracle for SessionOracle<'_, '_, E> {
    fn n_features(&self) -> usize {
        self.session.n_features()
    }

    fn m_levels(&self) -> usize {
        self.session.m_levels()
    }

    fn dim(&self) -> usize {
        self.session.dim()
    }

    fn query_binary(&self, levels: &[u16]) -> BinaryHv {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.session.encoder().encode_binary(levels)
    }

    fn query_int(&self, levels: &[u16]) -> IntHv {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.session.encoder().encode_int(levels)
    }

    fn query_binary_batch(&self, rows: &[&[u16]]) -> Vec<BinaryHv> {
        self.queries.fetch_add(rows.len() as u64, Ordering::Relaxed);
        self.session.encoder().encode_batch_binary(rows)
    }

    fn query_int_batch(&self, rows: &[&[u16]]) -> Vec<IntHv> {
        self.queries.fetch_add(rows.len() as u64, Ordering::Relaxed);
        self.session.encoder().encode_batch_int(rows)
    }
}

/// Builds the adversarial probe input of paper Eq. 7: every feature at
/// the minimum level except `hot_feature` at the maximum.
///
/// # Panics
///
/// Panics if `hot_feature >= n_features` or `m_levels == 0`.
#[must_use]
pub fn probe_row(n_features: usize, m_levels: usize, hot_feature: usize) -> Vec<u16> {
    assert!(hot_feature < n_features, "hot feature out of range");
    assert!(m_levels > 0, "need at least one level");
    let mut row = vec![0u16; n_features];
    row[hot_feature] = (m_levels - 1) as u16;
    row
}

/// Builds the all-minimum probe input of paper Eq. 5.
#[must_use]
pub fn all_min_row(n_features: usize) -> Vec<u16> {
    vec![0u16; n_features]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_model::RecordEncoder;
    use hypervec::HvRng;

    #[test]
    fn counting_oracle_counts_both_kinds() {
        let mut rng = HvRng::from_seed(1);
        let enc = RecordEncoder::generate(&mut rng, 6, 4, 256).unwrap();
        let oracle = CountingOracle::new(&enc);
        let row = all_min_row(6);
        let _ = oracle.query_binary(&row);
        let _ = oracle.query_int(&row);
        let _ = oracle.query_binary(&row);
        assert_eq!(oracle.queries(), 3);
        assert_eq!(oracle.n_features(), 6);
        assert_eq!(oracle.m_levels(), 4);
        assert_eq!(oracle.dim(), 256);
    }

    #[test]
    fn oracle_matches_encoder_exactly() {
        let mut rng = HvRng::from_seed(2);
        let enc = RecordEncoder::generate(&mut rng, 6, 4, 256).unwrap();
        let oracle = CountingOracle::new(&enc);
        let row = probe_row(6, 4, 2);
        assert_eq!(oracle.query_binary(&row), enc.encode_binary(&row));
        assert_eq!(oracle.query_int(&row), enc.encode_int(&row));
    }

    #[test]
    fn batch_queries_count_per_row_and_match_singles() {
        let mut rng = HvRng::from_seed(3);
        let enc = RecordEncoder::generate(&mut rng, 6, 4, 256).unwrap();
        let oracle = CountingOracle::new(&enc);
        let rows: Vec<Vec<u16>> = (0..5).map(|f| probe_row(6, 4, f)).collect();
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let batch = oracle.query_binary_batch(&refs);
        assert_eq!(oracle.queries(), 5, "a batch of k rows costs k queries");
        for (i, row) in refs.iter().enumerate() {
            assert_eq!(batch[i], enc.encode_binary(row));
        }
        let batch_int = oracle.query_int_batch(&refs);
        assert_eq!(oracle.queries(), 10);
        assert_eq!(batch_int[2], enc.encode_int(refs[2]));
    }

    #[test]
    fn session_oracle_matches_counting_oracle_and_accounting() {
        use hdc_model::{ClassMemory, InferenceSession, ModelKind};

        let mut rng = HvRng::from_seed(4);
        let enc = RecordEncoder::generate(&mut rng, 6, 4, 256).unwrap();
        let mut memory = ClassMemory::new(ModelKind::Binary, 2, 256);
        memory.acc_mut(0).add(&enc.encode_binary(&all_min_row(6)));
        memory
            .acc_mut(1)
            .add(&enc.encode_binary(&probe_row(6, 4, 2)));
        memory.rebinarize();
        let session = InferenceSession::new(&enc, &memory);
        let deployed = SessionOracle::new(&session);
        let reference = CountingOracle::new(&enc);

        let rows: Vec<Vec<u16>> = (0..5).map(|f| probe_row(6, 4, f)).collect();
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        assert_eq!(
            deployed.query_binary_batch(&refs),
            reference.query_binary_batch(&refs)
        );
        assert_eq!(deployed.query_int(&rows[0]), reference.query_int(&rows[0]));
        assert_eq!(deployed.queries(), reference.queries());
        assert_eq!(deployed.queries(), 6);

        // Decision access runs the deployed fused path and counts rows.
        let labels = deployed.classify_batch(&refs);
        assert_eq!(labels.len(), 5);
        assert_eq!(deployed.queries(), 11);
        assert_eq!(deployed.n_features(), 6);
        assert_eq!(deployed.m_levels(), 4);
        assert_eq!(deployed.dim(), 256);
    }

    #[test]
    fn probe_rows_have_expected_shape() {
        let row = probe_row(5, 8, 3);
        assert_eq!(row, vec![0, 0, 0, 7, 0]);
        assert_eq!(all_min_row(3), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "hot feature out of range")]
    fn probe_row_bounds_checked() {
        let _ = probe_row(4, 8, 4);
    }
}
