//! # hdc-attack — the reasoning attack on HDC encoding modules
//!
//! Implements the IP-stealing attack of the HDLock paper (Sec. 3) and
//! its security validation against the defense (Sec. 4.2):
//!
//! 1. **Value extraction** ([`value_extract`]): the consecutive
//!    correlation of value hypervectors betrays their order; one
//!    all-minimum oracle query pins down `ValHV_1` (Eq. 5/6).
//! 2. **Feature extraction** ([`feature_extract`]): divide-and-conquer
//!    over per-feature probe inputs recovers the whole feature mapping
//!    in `O(N²)` guesses (Eq. 7/8).
//! 3. **Model theft** ([`reconstruct`]): the recovered mapping rebuilds
//!    a bit-identical encoder, which together with the class
//!    hypervectors duplicates the victim model (Table 1).
//! 4. **HDLock validation** ([`lock_attack`]): against a locked
//!    encoder, the same style of chosen-input probing needs every one
//!    of the `2L` key parameters of a feature to be simultaneously
//!    correct — a `(D·P)^L` search (Figs. 5/6).
//! 5. **Timing-oracle probe** ([`warmth_distinguisher`]): times
//!    chosen-input encodes and applies Welch's t-test ([`welch_t`]) to
//!    read the victim's bound-pair cache state — the side channel that
//!    `DeriveMode::Hardened` closes (threat model in the repository's
//!    `SECURITY.md`).
//!
//! ## Example: stealing an unprotected model
//!
//! ```
//! use hdc_attack::{
//!     reason_encoding, rebuild_encoder, CountingOracle, FeatureExtractOptions, StandardDump,
//! };
//! use hdc_model::{Encoder, ModelKind, RecordEncoder};
//! use hypervec::HvRng;
//!
//! let mut rng = HvRng::from_seed(1);
//! let victim = RecordEncoder::generate(&mut rng, 15, 4, 2048)?;
//! let (dump, _truth) = StandardDump::from_encoder(&victim, &mut rng);
//! let oracle = CountingOracle::new(&victim);
//! let recovered = reason_encoding(
//!     &oracle,
//!     &dump,
//!     ModelKind::Binary,
//!     FeatureExtractOptions::default(),
//! )?;
//! let stolen = rebuild_encoder(&dump, &recovered)?;
//! let row = vec![0u16; 15];
//! assert_eq!(stolen.encode_binary(&row), victim.encode_binary(&row));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod feature_extract;
pub mod lock_attack;
pub mod memory_dump;
pub mod oracle;
pub mod reconstruct;
pub mod robust;
pub mod timing;
pub mod value_extract;

pub use error::AttackError;
pub use feature_extract::{
    extract_features, feature_mapping_accuracy, guess_profile, FeatureAttackContext,
    FeatureExtractOptions, FeatureMapping,
};
pub use lock_attack::{exhaustive_key_search, sweep_parameter, LockProbe, SweepResult, SweptParam};
pub use memory_dump::{DumpGroundTruth, HdlockDump, StandardDump};
pub use oracle::{all_min_row, probe_row, CountingOracle, EncodingOracle, SessionOracle};
pub use reconstruct::{
    duplicate_model, mapping_accuracy, reason_encoding, rebuild_encoder, RecoveredEncoding,
};
pub use robust::{NoisyOracle, QueryBudget, ThrottledOracle};
pub use timing::{
    checked_welch_t, warmth_distinguisher, welch_t, AttackStats, TimingReport, MIN_RELATIVE_GAP,
    MIN_TIMING_SAMPLES, T_THRESHOLD,
};
pub use value_extract::{extract_values, value_mapping_accuracy, ValueMapping};
