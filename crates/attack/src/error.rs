//! Error type for attack-pipeline failures.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the reasoning attack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AttackError {
    /// The dump has fewer than two value hypervectors, so endpoints
    /// cannot be identified.
    TooFewValues {
        /// Number of value rows found.
        found: usize,
    },
    /// Two features resolved to the same candidate hypervector.
    AmbiguousAssignment {
        /// The feature whose best candidate was already taken.
        feature: usize,
        /// The contested dump row.
        row: usize,
    },
    /// No candidate remained for a feature (all consumed earlier).
    NoCandidateLeft {
        /// The starved feature index.
        feature: usize,
    },
    /// Oracle and dump disagree on a dimension.
    ShapeMismatch {
        /// Description of the disagreement.
        what: &'static str,
    },
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::TooFewValues { found } => {
                write!(f, "need at least 2 value hypervectors, found {found}")
            }
            AttackError::AmbiguousAssignment { feature, row } => {
                write!(f, "feature {feature} resolved to already-claimed row {row}")
            }
            AttackError::NoCandidateLeft { feature } => {
                write!(f, "no unassigned candidate left for feature {feature}")
            }
            AttackError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
        }
    }
}

impl Error for AttackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = AttackError::AmbiguousAssignment { feature: 3, row: 7 };
        assert!(e.to_string().contains("feature 3"));
        assert!(e.to_string().contains("row 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackError>();
    }
}
