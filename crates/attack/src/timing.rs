//! Attack bookkeeping: guesses, oracle queries, wall time.

use std::time::Duration;

/// Cost accounting for one attack run — the quantities Table 1 and
/// Sec. 4.2 of the paper report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AttackStats {
    /// Candidate hypotheses evaluated (the paper's "guesses"/"tries").
    pub guesses: u64,
    /// Chosen-input encodings observed from the victim.
    pub oracle_queries: u64,
    /// Wall-clock time spent reasoning.
    pub elapsed: Duration,
}

impl AttackStats {
    /// Merges the costs of two attack phases.
    #[must_use]
    pub fn combined(self, other: AttackStats) -> AttackStats {
        AttackStats {
            guesses: self.guesses + other.guesses,
            oracle_queries: self.oracle_queries + other.oracle_queries,
            elapsed: self.elapsed + other.elapsed,
        }
    }
}

impl std::fmt::Display for AttackStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} guesses, {} oracle queries, {:.2}s",
            self.guesses,
            self.oracle_queries,
            self.elapsed.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_adds_fields() {
        let a = AttackStats {
            guesses: 10,
            oracle_queries: 2,
            elapsed: Duration::from_secs(1),
        };
        let b = AttackStats {
            guesses: 5,
            oracle_queries: 1,
            elapsed: Duration::from_secs(2),
        };
        let c = a.combined(b);
        assert_eq!(c.guesses, 15);
        assert_eq!(c.oracle_queries, 3);
        assert_eq!(c.elapsed, Duration::from_secs(3));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!AttackStats::default().to_string().is_empty());
    }
}
