//! Attack bookkeeping and the timing-oracle adversary.
//!
//! Besides the cost accounting ([`AttackStats`]) the paper's Table 1
//! reports, this module houses the *side-channel* probe of the serving
//! stack: [`warmth_distinguisher`] times single-row encodes against a
//! victim [`LockedEncoder`] and applies Welch's unequal-variance t-test
//! ([`welch_t`]) to decide whether encode latency betrays the
//! bound-pair cache state. Against the default cached mode the channel
//! is real — a cold table encodes through the fused bind path, a table
//! warmed by recent batch traffic through precomputed pairs — while
//! [`DeriveMode::Hardened`](hdlock::DeriveMode) performs fixed work per
//! encode and defeats the probe. `SECURITY.md` discusses the threat
//! model; the `hardened` section of `BENCH_search.json` prices the
//! defense.

use std::time::{Duration, Instant};

use hdc_model::Encoder;
use hdlock::LockedEncoder;

/// Cost accounting for one attack run — the quantities Table 1 and
/// Sec. 4.2 of the paper report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AttackStats {
    /// Candidate hypotheses evaluated (the paper's "guesses"/"tries").
    pub guesses: u64,
    /// Chosen-input encodings observed from the victim.
    pub oracle_queries: u64,
    /// Wall-clock time spent reasoning.
    pub elapsed: Duration,
}

impl AttackStats {
    /// Merges the costs of two attack phases.
    #[must_use]
    pub fn combined(self, other: AttackStats) -> AttackStats {
        AttackStats {
            guesses: self.guesses + other.guesses,
            oracle_queries: self.oracle_queries + other.oracle_queries,
            elapsed: self.elapsed + other.elapsed,
        }
    }
}

impl std::fmt::Display for AttackStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} guesses, {} oracle queries, {:.2}s",
            self.guesses,
            self.oracle_queries,
            self.elapsed.as_secs_f64()
        )
    }
}

/// Minimum per-condition samples for a timing verdict. Below this
/// floor the statistic is too noisy to assert on either way, so the
/// helpers skip with a notice instead of producing a flaky verdict.
pub const MIN_TIMING_SAMPLES: usize = 30;

/// `|t|` above which a latency difference counts as statistically
/// significant (far past any reasonable p-value at the sample floor).
pub const T_THRESHOLD: f64 = 4.0;

/// Minimum relative mean gap for a difference to count as an
/// *exploitable* oracle. Statistical significance alone is not enough:
/// with thousands of samples, Welch's t flags immaterial systematic
/// differences (allocation alignment, cache coloring) between two
/// encoder instances. The cached-vs-cold channel gaps by several
/// percent even on optimized builds; instance noise between two
/// fixed-work hardened victims measures an order of magnitude below
/// this floor.
pub const MIN_RELATIVE_GAP: f64 = 0.02;

/// Welch's unequal-variance t-statistic between two samples.
///
/// Returns `0.0` when either sample has fewer than two points or both
/// samples are constant and equal; `f64::INFINITY` (signed) when both
/// are constant but different.
#[must_use]
pub fn welch_t(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < 2 || b.len() < 2 {
        return 0.0;
    }
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    let var =
        |s: &[f64], m: f64| s.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (s.len() - 1) as f64;
    let (ma, mb) = (mean(a), mean(b));
    let se = (var(a, ma) / a.len() as f64 + var(b, mb) / b.len() as f64).sqrt();
    if se == 0.0 {
        return if ma == mb {
            0.0
        } else {
            (ma - mb).signum() * f64::INFINITY
        };
    }
    (ma - mb) / se
}

/// [`welch_t`] guarded by the sample floor: returns `None` — printing
/// one skip notice naming `label` — when either sample is below
/// [`MIN_TIMING_SAMPLES`], so callers (and CI) never assert on an
/// underpowered comparison.
#[must_use]
pub fn checked_welch_t(label: &str, a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() < MIN_TIMING_SAMPLES || b.len() < MIN_TIMING_SAMPLES {
        eprintln!(
            "timing: skipping `{label}` — {}/{} samples, floor is {MIN_TIMING_SAMPLES} per side",
            a.len(),
            b.len()
        );
        return None;
    }
    Some(welch_t(a, b))
}

/// Verdict of one [`warmth_distinguisher`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Welch's t between the cold-victim and warm-victim latency
    /// samples (positive when the cold victim is slower).
    pub t: f64,
    /// `|cold mean − warm mean| / warm mean`.
    pub relative_gap: f64,
    /// Mean latency of one probe (of `reps` encodes) on the cold victim.
    pub cold_mean_ns: f64,
    /// Mean latency of one probe on the warm victim.
    pub warm_mean_ns: f64,
    /// Per-condition sample count.
    pub samples: usize,
    /// Chosen-input encodes the adversary spent (both victims, priming
    /// and warming included).
    pub oracle_queries: u64,
}

impl TimingReport {
    /// Whether the adversary extracted an exploitable oracle: the gap
    /// is statistically significant ([`T_THRESHOLD`]) **and** large
    /// enough to act on ([`MIN_RELATIVE_GAP`]).
    #[must_use]
    pub fn distinguishable(&self) -> bool {
        self.t.abs() >= T_THRESHOLD && self.relative_gap >= MIN_RELATIVE_GAP
    }
}

impl std::fmt::Display for TimingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t = {:.1}, gap = {:.1}% (cold {:.0} ns vs warm {:.0} ns, n = {}, {} queries): {}",
            self.t,
            self.relative_gap * 100.0,
            self.cold_mean_ns,
            self.warm_mean_ns,
            self.samples,
            self.oracle_queries,
            if self.distinguishable() {
                "distinguishable"
            } else {
                "indistinguishable"
            }
        )
    }
}

/// The timing-oracle adversary: decides, from latency alone, whether a
/// victim's bound-pair table is warm — i.e. whether the server recently
/// processed batch traffic.
///
/// `cold` and `warm` are two victims of identical shape (in the same
/// [`DeriveMode`](hdlock::DeriveMode)); the adversary first primes both
/// with one throwaway encode, then pushes one batch of `M` rows through
/// `warm` (warming its table in cached mode; a no-op for work shape in
/// hardened mode), then interleaves timed probes of `reps` single
/// encodes against each so clock drift hits both samples equally.
/// Welch's t over the two sample sets is the verdict.
///
/// In the default cached mode the probe succeeds: cold single encodes
/// take the fused bind path and never warm the table, so the latency
/// gap persists indefinitely. In hardened mode every encode performs
/// the same full-table strided work and the probe fails — which is
/// exactly the property the hardened CI leg pins.
///
/// Returns `None` (with a skip notice) when `samples` is below
/// [`MIN_TIMING_SAMPLES`].
///
/// # Panics
///
/// Panics if the two victims disagree on shape or derive mode.
#[must_use]
pub fn warmth_distinguisher(
    cold: &LockedEncoder,
    warm: &LockedEncoder,
    samples: usize,
    reps: usize,
) -> Option<TimingReport> {
    assert_eq!(cold.n_features(), warm.n_features(), "victim shape");
    assert_eq!(cold.m_levels(), warm.m_levels(), "victim shape");
    assert_eq!(cold.dim(), warm.dim(), "victim shape");
    assert_eq!(cold.mode(), warm.mode(), "compare like with like");
    if samples < MIN_TIMING_SAMPLES {
        eprintln!(
            "timing: skipping warmth distinguisher — {samples} samples, \
             floor is {MIN_TIMING_SAMPLES} per side"
        );
        return None;
    }

    let n = cold.n_features();
    let m = cold.m_levels();
    let row = vec![0u16; n];
    let mut queries = 0u64;

    // Prime: in hardened mode the first encode warms eagerly; in cached
    // mode a single encode leaves the table cold. Either way the timed
    // loops below observe steady-state behavior.
    let _ = cold.encode_binary(&row);
    let _ = warm.encode_binary(&row);
    queries += 2;

    // Batch traffic against the warm victim only: `M` rows crosses the
    // warm_for_batch threshold and builds its bound-pair table.
    let batch_rows: Vec<Vec<u16>> = (0..m).map(|v| vec![v as u16; n]).collect();
    let refs: Vec<&[u16]> = batch_rows.iter().map(Vec::as_slice).collect();
    let _ = warm.encode_batch_binary(&refs);
    queries += m as u64;

    // One probe = the *minimum* over `reps` individually timed encodes:
    // the min is the latency of the operation itself with scheduler
    // preemption and interrupt noise stripped, which is exactly what a
    // patient adversary reconstructs by repetition.
    let probe = |enc: &LockedEncoder| {
        (0..reps.max(1))
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(enc.encode_binary(&row));
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX) as f64
            })
            .fold(f64::INFINITY, f64::min)
    };

    let mut cold_ns = Vec::with_capacity(samples);
    let mut warm_ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        cold_ns.push(probe(cold));
        warm_ns.push(probe(warm));
        queries += 2 * reps.max(1) as u64;
    }

    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    let (cold_mean, warm_mean) = (mean(&cold_ns), mean(&warm_ns));
    Some(TimingReport {
        t: welch_t(&cold_ns, &warm_ns),
        relative_gap: (cold_mean - warm_mean).abs() / warm_mean,
        cold_mean_ns: cold_mean,
        warm_mean_ns: warm_mean,
        samples,
        oracle_queries: queries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdlock::{DeriveMode, LockConfig};
    use hypervec::HvRng;

    #[test]
    fn combined_adds_fields() {
        let a = AttackStats {
            guesses: 10,
            oracle_queries: 2,
            elapsed: Duration::from_secs(1),
        };
        let b = AttackStats {
            guesses: 5,
            oracle_queries: 1,
            elapsed: Duration::from_secs(2),
        };
        let c = a.combined(b);
        assert_eq!(c.guesses, 15);
        assert_eq!(c.oracle_queries, 3);
        assert_eq!(c.elapsed, Duration::from_secs(3));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!AttackStats::default().to_string().is_empty());
    }

    /// Deterministic synthetic distributions: jittered samples around
    /// two separated means must score a huge |t|, same-mean samples a
    /// small one, and the degenerate cases hit their documented values.
    #[test]
    fn welch_t_separates_synthetic_distributions() {
        let mut rng = HvRng::from_seed(9);
        let mut jittered = |center: f64, n: usize| -> Vec<f64> {
            (0..n)
                .map(|_| center + (rng.next_u64() % 41) as f64 - 20.0)
                .collect()
        };
        let slow = jittered(1000.0, 200);
        let fast = jittered(700.0, 200);
        let also_fast = jittered(700.0, 200);
        assert!(
            welch_t(&slow, &fast) > 50.0,
            "separated means: t = {}",
            welch_t(&slow, &fast)
        );
        assert!(
            welch_t(&fast, &also_fast).abs() < T_THRESHOLD,
            "same mean: t = {}",
            welch_t(&fast, &also_fast)
        );
        // Degenerate inputs.
        assert_eq!(welch_t(&[1.0], &fast), 0.0);
        assert_eq!(welch_t(&[5.0, 5.0], &[5.0, 5.0]), 0.0);
        assert_eq!(welch_t(&[6.0, 6.0], &[5.0, 5.0]), f64::INFINITY);
        assert_eq!(welch_t(&[4.0, 4.0], &[5.0, 5.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn checked_welch_t_skips_below_the_floor() {
        let enough = vec![1.0; MIN_TIMING_SAMPLES];
        let short = vec![1.0; MIN_TIMING_SAMPLES - 1];
        assert_eq!(checked_welch_t("floor", &enough, &short), None);
        assert_eq!(checked_welch_t("floor", &short, &enough), None);
        assert_eq!(checked_welch_t("floor", &enough, &enough), Some(0.0));
    }

    fn victim(seed: u64, mode: DeriveMode) -> LockedEncoder {
        let mut rng = HvRng::from_seed(seed);
        let mut enc = LockedEncoder::generate(
            &mut rng,
            &LockConfig {
                n_features: 16,
                m_levels: 8,
                dim: 2048,
                pool_size: 16,
                n_layers: 2,
            },
        )
        .unwrap();
        enc.set_mode(mode);
        enc
    }

    /// The tentpole security claim, end to end: the adversary extracts
    /// a cache-warmth oracle from the default cached mode and fails
    /// against hardened mode, on whichever kernel backend CI selected.
    ///
    /// A real side channel reproduces under repetition while noise does
    /// not, so the cached probe gets a few attempts before the claim
    /// counts as failed — wall-clock timing under a loaded test runner
    /// is exactly the regime the sample floor and retries exist for.
    #[test]
    fn warmth_oracle_reads_cached_mode_but_not_hardened() {
        let mut report = None;
        for attempt in 0..4 {
            let r = warmth_distinguisher(
                &victim(11, DeriveMode::Cached),
                &victim(12, DeriveMode::Cached),
                300,
                12,
            )
            .expect("above the sample floor");
            eprintln!("cached attempt {attempt}: {r}");
            if r.distinguishable() && r.t > 0.0 {
                report = Some(r);
                break;
            }
        }
        let report = report.expect("cached mode must leak cache warmth on some attempt");

        let hardened = warmth_distinguisher(
            &victim(11, DeriveMode::Hardened),
            &victim(12, DeriveMode::Hardened),
            300,
            12,
        )
        .expect("above the sample floor");
        eprintln!("hardened: {hardened}");
        assert!(
            !hardened.distinguishable(),
            "hardened mode must close the channel: {hardened}"
        );
        // Fixed work also means hardened probes cost more than cached
        // warm ones — the tax the bench suite prices.
        assert!(hardened.warm_mean_ns > report.warm_mean_ns);
    }

    #[test]
    fn warmth_distinguisher_skips_below_the_floor() {
        let report = warmth_distinguisher(
            &victim(21, DeriveMode::Cached),
            &victim(22, DeriveMode::Cached),
            MIN_TIMING_SAMPLES - 1,
            1,
        );
        assert_eq!(report, None);
    }
}
