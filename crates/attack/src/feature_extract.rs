//! Step 2 of the reasoning attack: recovering the feature-hypervector
//! mapping with divide-and-conquer (paper Sec. 3.2, Eq. 7/8).
//!
//! For feature `i` the attacker crafts an input whose `i`-th value is
//! maximal and all others minimal. The observed output is
//! `H_i = sign(S·ValHV_1 + FeaHV_i·(ValHV_M − ValHV_1))` where
//! `S = Σ FeaHV_j` is **order-invariant**, hence computable from the
//! unindexed dump. Each candidate row `n` predicts
//! `H'_n = sign(S·ValHV_1 + pool_n·(ValHV_M − ValHV_1))` (Eq. 8
//! rewritten); the candidate with the smallest Hamming distance to the
//! observation is the mapping for feature `i`. `N` features × ≤ `N`
//! candidates ⇒ `O(N²)` guesses.
//!
//! ## Implementation note (exactness-preserving speedup)
//!
//! `H'_n` differs from the candidate-independent baseline
//! `sign(S·ValHV_1)` only on dimensions where `ValHV_1 ≠ ValHV_M` *and*
//! `|S·ValHV_1| ≤ 2` — a few percent of `D`. Distances are therefore
//! evaluated on that index set `J` only, plus a candidate-independent
//! remainder, which is bit-exact with the naive evaluation (verified by
//! `naive_candidate_distance` in the tests) while turning the `O(N²·D)`
//! scan into `O(N·D + N²·|J|)`.

use std::time::Instant;

use hdc_model::ModelKind;
use hypervec::{par, BinaryHv, IntHv};

use crate::error::AttackError;
use crate::memory_dump::StandardDump;
use crate::oracle::{probe_row, EncodingOracle};
use crate::timing::AttackStats;
use crate::value_extract::ValueMapping;

/// Recovered feature mapping: `assignment[feature] = dump row`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureMapping {
    /// Dump row assigned to each feature index.
    pub assignment: Vec<usize>,
    /// Cost accounting for this phase.
    pub stats: AttackStats,
}

/// Precomputed attack state shared across all `N` per-feature probes.
#[derive(Debug)]
pub struct FeatureAttackContext {
    /// `ValHV_1` (recovered minimum-level hypervector).
    v1: BinaryHv,
    /// `ValHV_M` (recovered maximum-level hypervector).
    vmax: BinaryHv,
    /// `T = S · ValHV_1`, the baseline encoding argument.
    t: IntHv,
    /// `sign(T)`: the candidate-independent part of every prediction.
    base_sign: BinaryHv,
    /// Dimensions where predictions depend on the candidate.
    j_dims: Vec<u32>,
    /// `T_d` for each `d ∈ J` (fits i8 by construction).
    j_t: Vec<i8>,
}

impl FeatureAttackContext {
    /// Builds the shared state from the dump and the recovered value
    /// mapping.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::TooFewValues`] when the value mapping is
    /// degenerate.
    pub fn new(dump: &StandardDump, values: &ValueMapping) -> Result<Self, AttackError> {
        if values.order.len() < 2 {
            return Err(AttackError::TooFewValues {
                found: values.order.len(),
            });
        }
        let v1 = dump
            .value_pool
            .get(values.order[0])
            .expect("value row in range")
            .clone();
        let vmax = dump
            .value_pool
            .get(*values.order.last().expect("non-empty order"))
            .expect("value row in range")
            .clone();
        let s = dump
            .feature_pool
            .sum()
            .map_err(|_| AttackError::ShapeMismatch {
                what: "empty feature pool",
            })?;
        let t = s.bind_binary(&v1);
        let base_sign = t.sign_ties_positive();
        let mut j_dims = Vec::new();
        let mut j_t = Vec::new();
        for d in 0..t.dim() {
            if v1.polarity(d) != vmax.polarity(d) && t.get(d).abs() <= 2 {
                j_dims.push(d as u32);
                j_t.push(t.get(d) as i8);
            }
        }
        Ok(FeatureAttackContext {
            v1,
            vmax,
            t,
            base_sign,
            j_dims,
            j_t,
        })
    }

    /// Number of candidate-dependent dimensions `|J|`.
    #[must_use]
    pub fn sensitive_dims(&self) -> usize {
        self.j_dims.len()
    }

    /// Hamming distance between candidate `row`'s predicted output and
    /// the observed output `h`, for a binary-model probe on any feature.
    ///
    /// Bit-exact with `sign(S·v1 + pool_row·(vM − v1))` vs `h`.
    #[must_use]
    pub fn candidate_distance_binary(
        &self,
        dump: &StandardDump,
        h: &BinaryHv,
        row: usize,
    ) -> usize {
        let constant = self.base_mismatch_off_j(h);
        constant + self.j_mismatch(dump, h, row)
    }

    /// Mismatches of the candidate-independent baseline outside `J`.
    fn base_mismatch_off_j(&self, h: &BinaryHv) -> usize {
        let total = self.base_sign.hamming(h);
        let on_j = self
            .j_dims
            .iter()
            .filter(|&&d| self.base_sign.polarity(d as usize) != h.polarity(d as usize))
            .count();
        total - on_j
    }

    /// Mismatches on `J` for candidate `row`.
    fn j_mismatch(&self, dump: &StandardDump, h: &BinaryHv, row: usize) -> usize {
        let cand = dump.feature_pool.get(row).expect("candidate row in range");
        let mut mis = 0usize;
        for (idx, &d) in self.j_dims.iter().enumerate() {
            let d = d as usize;
            // u_d = vM_d − v1_d = 2·vM_d on J (endpoints differ there)
            let arg = i32::from(self.j_t[idx])
                + 2 * i32::from(cand.polarity(d)) * i32::from(self.vmax.polarity(d));
            let predicted: i8 = if arg < 0 { -1 } else { 1 };
            if predicted != h.polarity(d) {
                mis += 1;
            }
        }
        mis
    }

    /// Reference implementation of the candidate distance: materializes
    /// the full Eq. 8 prediction. Used to validate the fast path.
    #[must_use]
    pub fn naive_candidate_distance(&self, dump: &StandardDump, h: &BinaryHv, row: usize) -> usize {
        let cand = dump.feature_pool.get(row).expect("candidate row in range");
        let mut acc = self.t.clone();
        // add cand · (vM − v1)
        let bound_max = cand.bind(&self.vmax);
        let bound_min = cand.bind(&self.v1);
        acc.add_binary(&bound_max);
        acc.sub_binary(&bound_min);
        acc.sign_ties_positive().hamming(h)
    }

    /// Exact-match distance profile for a non-binary probe: per
    /// candidate, the number of mismatching dimensions between the
    /// predicted and observed integer encodings on the endpoint-
    /// difference support, stopping at `early_exit` mismatches
    /// (0 = never stop).
    #[must_use]
    pub fn candidate_mismatch_int(
        &self,
        dump: &StandardDump,
        h: &IntHv,
        row: usize,
        early_exit: usize,
    ) -> usize {
        let cand = dump.feature_pool.get(row).expect("candidate row in range");
        let mut mis = 0usize;
        for d in 0..h.dim() {
            if self.v1.polarity(d) == self.vmax.polarity(d) {
                continue;
            }
            let predicted =
                self.t.get(d) + 2 * i32::from(cand.polarity(d)) * i32::from(self.vmax.polarity(d));
            if predicted != h.get(d) {
                mis += 1;
                if early_exit != 0 && mis >= early_exit {
                    return mis;
                }
            }
        }
        mis
    }
}

/// Options for feature extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureExtractOptions {
    /// Skip candidates already assigned to earlier features (halves the
    /// guess count; the paper's independent-task framing permits either).
    pub restrict_to_unassigned: bool,
}

impl Default for FeatureExtractOptions {
    fn default() -> Self {
        FeatureExtractOptions {
            restrict_to_unassigned: true,
        }
    }
}

/// Runs divide-and-conquer feature extraction for every feature.
///
/// # Errors
///
/// Returns [`AttackError::AmbiguousAssignment`] if two features resolve
/// to one row (cannot happen when `restrict_to_unassigned` is set), or
/// shape errors from context construction.
pub fn extract_features(
    oracle: &dyn EncodingOracle,
    dump: &StandardDump,
    values: &ValueMapping,
    kind: ModelKind,
    options: FeatureExtractOptions,
) -> Result<FeatureMapping, AttackError> {
    let start = Instant::now();
    let ctx = FeatureAttackContext::new(dump, values)?;
    let n = oracle.n_features();
    let m = oracle.m_levels();
    let mut assignment = vec![usize::MAX; n];
    let mut used = vec![false; dump.n_features()];
    let mut guesses = 0u64;
    let mut oracle_queries = 0u64;

    // The N probe inputs are known upfront (they do not depend on earlier
    // assignments), so all observations flow through the oracle's
    // word-parallel batch path in one shot — against a deployed victim
    // ([`crate::SessionOracle`]) that is the same fused pipeline the
    // serving layer runs. Cost accounting is unchanged: a batch of N
    // rows is N queries.
    let probe_rows: Vec<Vec<u16>> = (0..n).map(|feature| probe_row(n, m, feature)).collect();
    let probe_refs: Vec<&[u16]> = probe_rows.iter().map(Vec::as_slice).collect();
    let (observed_binary, observed_int) = match kind {
        ModelKind::Binary => (oracle.query_binary_batch(&probe_refs), Vec::new()),
        ModelKind::NonBinary => (Vec::new(), oracle.query_int_batch(&probe_refs)),
    };
    oracle_queries += n as u64;

    for feature in 0..n {
        let candidates: Vec<usize> = (0..dump.n_features())
            .filter(|&r| !(options.restrict_to_unassigned && used[r]))
            .collect();
        guesses += candidates.len() as u64;
        // Candidate scoring fans out across worker threads; each chunk
        // returns its local minimum and the final min is taken inline.
        let scored: Vec<(usize, usize)> = match kind {
            ModelKind::Binary => {
                let h = &observed_binary[feature];
                par::par_chunk_map(candidates.len(), 16, |range| {
                    range
                        .map(|ci| {
                            let r = candidates[ci];
                            (ctx.candidate_distance_binary(dump, h, r), r)
                        })
                        .min()
                        .into_iter()
                        .collect()
                })
            }
            ModelKind::NonBinary => {
                let h = &observed_int[feature];
                par::par_chunk_map(candidates.len(), 16, |range| {
                    range
                        .map(|ci| {
                            let r = candidates[ci];
                            (ctx.candidate_mismatch_int(dump, h, r, 8), r)
                        })
                        .min()
                        .into_iter()
                        .collect()
                })
            }
        };
        let best: Option<(usize, usize)> = scored.into_iter().min().map(|(d, r)| (r, d));
        let (best_row, _) = best.ok_or(AttackError::NoCandidateLeft { feature })?;
        if used[best_row] {
            return Err(AttackError::AmbiguousAssignment {
                feature,
                row: best_row,
            });
        }
        used[best_row] = true;
        assignment[feature] = best_row;
    }

    Ok(FeatureMapping {
        assignment,
        stats: AttackStats {
            guesses,
            oracle_queries,
            elapsed: start.elapsed(),
        },
    })
}

/// Full guess-distance profile for one feature (normalized Hamming
/// distance per candidate row) — the data behind paper Fig. 3.
///
/// # Errors
///
/// Propagates context construction errors.
pub fn guess_profile(
    oracle: &dyn EncodingOracle,
    dump: &StandardDump,
    values: &ValueMapping,
    kind: ModelKind,
    feature: usize,
) -> Result<Vec<f64>, AttackError> {
    let ctx = FeatureAttackContext::new(dump, values)?;
    let row = probe_row(oracle.n_features(), oracle.m_levels(), feature);
    let d = oracle.dim() as f64;
    let profile = match kind {
        ModelKind::Binary => {
            let h = oracle.query_binary(&row);
            par::par_chunk_map(dump.n_features(), 16, |range| {
                range
                    .map(|r| ctx.candidate_distance_binary(dump, &h, r) as f64 / d)
                    .collect()
            })
        }
        ModelKind::NonBinary => {
            let h = oracle.query_int(&row);
            par::par_chunk_map(dump.n_features(), 16, |range| {
                range
                    .map(|r| ctx.candidate_mismatch_int(dump, &h, r, 0) as f64 / d)
                    .collect()
            })
        }
    };
    Ok(profile)
}

/// Fraction of features mapped to their true dump row. Test/harness
/// helper judged against hidden ground truth.
#[must_use]
pub fn feature_mapping_accuracy(mapping: &FeatureMapping, feature_perm: &[usize]) -> f64 {
    let correct = mapping
        .assignment
        .iter()
        .enumerate()
        .filter(|&(feature, &row)| feature_perm[row] == feature)
        .count();
    correct as f64 / mapping.assignment.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory_dump::{DumpGroundTruth, StandardDump};
    use crate::oracle::CountingOracle;
    use crate::value_extract::extract_values;
    use hdc_model::RecordEncoder;
    use hypervec::HvRng;

    fn setup(
        seed: u64,
        n: usize,
        m: usize,
        d: usize,
    ) -> (RecordEncoder, StandardDump, DumpGroundTruth) {
        let mut rng = HvRng::from_seed(seed);
        let enc = RecordEncoder::generate(&mut rng, n, m, d).unwrap();
        let (dump, truth) = StandardDump::from_encoder(&enc, &mut rng);
        (enc, dump, truth)
    }

    #[test]
    fn recovers_feature_mapping_binary_odd_n() {
        let (enc, dump, truth) = setup(1, 21, 4, 4096);
        let oracle = CountingOracle::new(&enc);
        let values = extract_values(&oracle, &dump, ModelKind::Binary).unwrap();
        let features = extract_features(
            &oracle,
            &dump,
            &values,
            ModelKind::Binary,
            FeatureExtractOptions::default(),
        )
        .unwrap();
        assert_eq!(
            feature_mapping_accuracy(&features, &truth.feature_perm),
            1.0
        );
    }

    #[test]
    fn recovers_feature_mapping_binary_even_n() {
        let (enc, dump, truth) = setup(2, 32, 4, 4096);
        let oracle = CountingOracle::new(&enc);
        let values = extract_values(&oracle, &dump, ModelKind::Binary).unwrap();
        let features = extract_features(
            &oracle,
            &dump,
            &values,
            ModelKind::Binary,
            FeatureExtractOptions::default(),
        )
        .unwrap();
        assert_eq!(
            feature_mapping_accuracy(&features, &truth.feature_perm),
            1.0
        );
    }

    #[test]
    fn recovers_feature_mapping_nonbinary() {
        let (enc, dump, truth) = setup(3, 24, 6, 2048);
        let oracle = CountingOracle::new(&enc);
        let values = extract_values(&oracle, &dump, ModelKind::NonBinary).unwrap();
        let features = extract_features(
            &oracle,
            &dump,
            &values,
            ModelKind::NonBinary,
            FeatureExtractOptions::default(),
        )
        .unwrap();
        assert_eq!(
            feature_mapping_accuracy(&features, &truth.feature_perm),
            1.0
        );
    }

    #[test]
    fn correct_candidate_has_distance_zero() {
        let (enc, dump, truth) = setup(4, 17, 4, 2048);
        let oracle = CountingOracle::new(&enc);
        let values = extract_values(&oracle, &dump, ModelKind::Binary).unwrap();
        let ctx = FeatureAttackContext::new(&dump, &values).unwrap();
        // probe feature 5; its true dump row is the row holding FeaHV_5
        let h = oracle.query_binary(&probe_row(17, 4, 5));
        let true_row = truth
            .feature_perm
            .iter()
            .position(|&orig| orig == 5)
            .unwrap();
        assert_eq!(ctx.candidate_distance_binary(&dump, &h, true_row), 0);
    }

    #[test]
    fn fast_path_matches_naive_evaluation() {
        let (enc, dump, _) = setup(5, 12, 4, 1024);
        let oracle = CountingOracle::new(&enc);
        let values = extract_values(&oracle, &dump, ModelKind::Binary).unwrap();
        let ctx = FeatureAttackContext::new(&dump, &values).unwrap();
        let h = oracle.query_binary(&probe_row(12, 4, 3));
        for r in 0..12 {
            assert_eq!(
                ctx.candidate_distance_binary(&dump, &h, r),
                ctx.naive_candidate_distance(&dump, &h, r),
                "candidate {r}"
            );
        }
    }

    #[test]
    fn profile_separates_correct_guess() {
        let (enc, dump, truth) = setup(6, 30, 4, 10_000);
        let oracle = CountingOracle::new(&enc);
        let values = extract_values(&oracle, &dump, ModelKind::Binary).unwrap();
        let profile = guess_profile(&oracle, &dump, &values, ModelKind::Binary, 0).unwrap();
        let true_row = truth
            .feature_perm
            .iter()
            .position(|&orig| orig == 0)
            .unwrap();
        for (r, &dist) in profile.iter().enumerate() {
            if r == true_row {
                assert_eq!(dist, 0.0, "correct guess must be exact");
            } else {
                assert!(dist > 0.001, "wrong guess {r} too close: {dist}");
            }
        }
    }

    #[test]
    fn extraction_through_deployed_session_is_identical() {
        use crate::oracle::SessionOracle;
        use hdc_model::{ClassMemory, InferenceSession};

        let (enc, dump, truth) = setup(8, 15, 4, 2048);
        let memory = ClassMemory::new(ModelKind::Binary, 2, 2048);
        let session = InferenceSession::new(&enc, &memory);
        let deployed = SessionOracle::new(&session);
        let direct = CountingOracle::new(&enc);

        let values_s = extract_values(&deployed, &dump, ModelKind::Binary).unwrap();
        let values_d = extract_values(&direct, &dump, ModelKind::Binary).unwrap();
        assert_eq!(values_s.order, values_d.order);
        let features_s = extract_features(
            &deployed,
            &dump,
            &values_s,
            ModelKind::Binary,
            FeatureExtractOptions::default(),
        )
        .unwrap();
        let features_d = extract_features(
            &direct,
            &dump,
            &values_d,
            ModelKind::Binary,
            FeatureExtractOptions::default(),
        )
        .unwrap();
        assert_eq!(features_s.assignment, features_d.assignment);
        assert_eq!(features_s.stats.guesses, features_d.stats.guesses);
        assert_eq!(
            features_s.stats.oracle_queries,
            features_d.stats.oracle_queries
        );
        assert_eq!(deployed.queries(), direct.queries());
        assert_eq!(
            feature_mapping_accuracy(&features_s, &truth.feature_perm),
            1.0
        );
    }

    #[test]
    fn guess_count_matches_divide_and_conquer() {
        let (enc, dump, _) = setup(7, 10, 4, 1024);
        let oracle = CountingOracle::new(&enc);
        let values = extract_values(&oracle, &dump, ModelKind::Binary).unwrap();
        let features = extract_features(
            &oracle,
            &dump,
            &values,
            ModelKind::Binary,
            FeatureExtractOptions {
                restrict_to_unassigned: false,
            },
        )
        .unwrap();
        // N candidates for each of N features
        assert_eq!(features.stats.guesses, 100);
        let values2 = extract_values(&oracle, &dump, ModelKind::Binary).unwrap();
        let restricted = extract_features(
            &oracle,
            &dump,
            &values2,
            ModelKind::Binary,
            FeatureExtractOptions::default(),
        )
        .unwrap();
        // N + (N−1) + … + 1
        assert_eq!(restricted.stats.guesses, 55);
    }
}
