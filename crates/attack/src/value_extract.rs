//! Step 1 of the reasoning attack: recovering the value-hypervector
//! mapping (paper Sec. 3.2, "Value Hypervector Extraction").
//!
//! The weakness is structural: value hypervectors are *consecutively
//! correlated* (Eq. 1b), so only the two endpoints `ValHV_1`/`ValHV_M`
//! are orthogonal and every other level sits at a distance proportional
//! to its value. The attack:
//!
//! 1. finds the endpoint pair as the farthest two rows in the dump;
//! 2. disambiguates which endpoint is `ValHV_1` with one all-minimum
//!    oracle query — for a single-value input the value hypervector
//!    factors out of the sum (Eq. 5), so `ValHV_1 ≈ H_min ×
//!    sign(Σ FeaHV)` (Eq. 6), where the feature sum is order-invariant
//!    and thus computable from the unindexed dump;
//! 3. orders the remaining rows by distance from `ValHV_1`.

use std::time::Instant;

use hdc_model::ModelKind;
use hypervec::BinaryHv;

use crate::error::AttackError;
use crate::memory_dump::StandardDump;
use crate::oracle::{all_min_row, EncodingOracle};
use crate::timing::AttackStats;

/// Recovered value mapping: `order[level] = dump row index`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueMapping {
    /// Dump row holding the hypervector of each level, in level order.
    pub order: Vec<usize>,
    /// Cost accounting for this phase.
    pub stats: AttackStats,
}

impl ValueMapping {
    /// The value hypervectors in recovered level order.
    #[must_use]
    pub fn levels<'a>(&self, dump: &'a StandardDump) -> Vec<&'a BinaryHv> {
        self.order
            .iter()
            .map(|&row| {
                dump.value_pool
                    .get(row)
                    .expect("order rows come from the dump")
            })
            .collect()
    }
}

/// Runs value-hypervector extraction against `oracle` using the
/// unindexed `dump`.
///
/// `kind` selects which oracle output the victim model exposes; for
/// non-binary models the attacker binarizes the observed sum himself.
///
/// # Errors
///
/// Returns [`AttackError::TooFewValues`] if the dump has fewer than two
/// value rows, or [`AttackError::ShapeMismatch`] on dimension
/// disagreement.
pub fn extract_values(
    oracle: &dyn EncodingOracle,
    dump: &StandardDump,
    kind: ModelKind,
) -> Result<ValueMapping, AttackError> {
    let start = Instant::now();
    let m = dump.m_levels();
    if m < 2 {
        return Err(AttackError::TooFewValues { found: m });
    }
    if oracle.dim() != dump.dim() {
        return Err(AttackError::ShapeMismatch {
            what: "oracle and dump dimension differ",
        });
    }
    let mut guesses = 0u64;

    // 1. Endpoint pair = farthest rows.
    let mut endpoints = (0usize, 1usize);
    let mut max_d = 0usize;
    for i in 0..m {
        for j in (i + 1)..m {
            guesses += 1;
            let d = dump
                .value_pool
                .get(i)
                .expect("row in range")
                .hamming(dump.value_pool.get(j).expect("row in range"));
            if d > max_d {
                max_d = d;
                endpoints = (i, j);
            }
        }
    }

    // 2. One all-min query disambiguates the endpoints (Eq. 5/6).
    let row = all_min_row(oracle.n_features());
    let h_min = match kind {
        ModelKind::Binary => oracle.query_binary(&row),
        ModelKind::NonBinary => oracle.query_int(&row).sign_ties_positive(),
    };
    let fea_sum_sign = dump
        .feature_pool
        .sum()
        .map_err(|_| AttackError::ShapeMismatch {
            what: "empty feature pool",
        })?
        .sign_ties_positive();
    let v1_estimate = h_min.bind(&fea_sum_sign);
    guesses += 2;
    let d_a = v1_estimate.hamming(dump.value_pool.get(endpoints.0).expect("row in range"));
    let d_b = v1_estimate.hamming(dump.value_pool.get(endpoints.1).expect("row in range"));
    let v1_row = if d_a <= d_b { endpoints.0 } else { endpoints.1 };

    // 3. Order every row by distance from ValHV_1.
    let v1 = dump.value_pool.get(v1_row).expect("row in range").clone();
    let mut rows: Vec<(usize, usize)> = (0..m)
        .map(|r| {
            guesses += 1;
            (
                dump.value_pool.get(r).expect("row in range").hamming(&v1),
                r,
            )
        })
        .collect();
    rows.sort_unstable();
    let order: Vec<usize> = rows.into_iter().map(|(_, r)| r).collect();

    Ok(ValueMapping {
        order,
        stats: AttackStats {
            guesses,
            oracle_queries: 1,
            elapsed: start.elapsed(),
        },
    })
}

/// Fraction of levels mapped to the correct dump row (1.0 = perfect),
/// judged against the hidden ground truth. Test/harness helper.
#[must_use]
pub fn value_mapping_accuracy(mapping: &ValueMapping, value_perm: &[usize]) -> f64 {
    let correct = mapping
        .order
        .iter()
        .enumerate()
        .filter(|&(level, &row)| value_perm[row] == level)
        .count();
    correct as f64 / mapping.order.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory_dump::StandardDump;
    use crate::oracle::CountingOracle;
    use hdc_model::RecordEncoder;
    use hypervec::HvRng;

    fn setup(
        seed: u64,
        n: usize,
        m: usize,
        d: usize,
    ) -> (
        RecordEncoder,
        StandardDump,
        crate::memory_dump::DumpGroundTruth,
    ) {
        let mut rng = HvRng::from_seed(seed);
        let enc = RecordEncoder::generate(&mut rng, n, m, d).unwrap();
        let (dump, truth) = StandardDump::from_encoder(&enc, &mut rng);
        (enc, dump, truth)
    }

    #[test]
    fn recovers_full_value_mapping_binary() {
        let (enc, dump, truth) = setup(1, 33, 8, 10_000);
        let oracle = CountingOracle::new(&enc);
        let mapping = extract_values(&oracle, &dump, ModelKind::Binary).unwrap();
        assert_eq!(value_mapping_accuracy(&mapping, &truth.value_perm), 1.0);
        assert_eq!(oracle.queries(), 1);
    }

    #[test]
    fn recovers_full_value_mapping_nonbinary() {
        let (enc, dump, truth) = setup(2, 20, 6, 4096);
        let oracle = CountingOracle::new(&enc);
        let mapping = extract_values(&oracle, &dump, ModelKind::NonBinary).unwrap();
        assert_eq!(value_mapping_accuracy(&mapping, &truth.value_perm), 1.0);
    }

    #[test]
    fn recovers_mapping_with_even_feature_count() {
        // Even N ⇒ sign(0) ties in Σ FeaHV add noise to the estimate
        // (paper Eq. 6 is approximate); the decision margin must absorb it.
        let (enc, dump, truth) = setup(3, 64, 4, 10_000);
        let oracle = CountingOracle::new(&enc);
        let mapping = extract_values(&oracle, &dump, ModelKind::Binary).unwrap();
        assert_eq!(value_mapping_accuracy(&mapping, &truth.value_perm), 1.0);
    }

    #[test]
    fn two_level_family_recovered() {
        let (enc, dump, truth) = setup(4, 15, 2, 4096);
        let oracle = CountingOracle::new(&enc);
        let mapping = extract_values(&oracle, &dump, ModelKind::Binary).unwrap();
        assert_eq!(value_mapping_accuracy(&mapping, &truth.value_perm), 1.0);
    }

    #[test]
    fn guess_count_is_quadratic_in_m() {
        let (enc, dump, _) = setup(5, 10, 8, 2048);
        let oracle = CountingOracle::new(&enc);
        let mapping = extract_values(&oracle, &dump, ModelKind::Binary).unwrap();
        // m(m−1)/2 pairwise + 2 endpoint checks + m ordering distances
        assert_eq!(mapping.stats.guesses, 28 + 2 + 8);
    }
}
