//! Attacking an HDLock-protected encoder (paper Sec. 4.2, Figs. 5/6).
//!
//! Per the paper's strong assumption, the attacker knows the full value
//! mapping and the public base pool; only the key of each feature —
//! `L` (base index, rotation) pairs — is unknown. Two chosen inputs
//! (all-minimum, and first-feature-maximum) isolate the target feature:
//! their outputs differ only where the first encoding term differs
//! (Eq. 11/12). Each key guess is scored by comparing
//! `H_attack = sign((ValHV_1 − ValHV_M) × Π ρ^{k_g}(B_g))` (Eq. 13)
//! against the observed difference, restricted to the differing index
//! set `I`.
//!
//! The punchline reproduced here: the criterion separates the correct
//! key *only when every parameter is right*, so the attacker must
//! search the full `(D·P)^L` product space per feature.

use std::time::Instant;

use hdc_model::ModelKind;
use hdlock::{derive_feature, BasePool, FeatureKey, LayerKey};
use hypervec::{par, LevelHvs};

use crate::error::AttackError;
use crate::oracle::{all_min_row, probe_row, EncodingOracle};
use crate::timing::AttackStats;

/// The attacker's distilled observation for one target feature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockProbe {
    /// Index set `I` where the two oracle outputs differ.
    indices: Vec<u32>,
    /// Observed difference sign on `I` (`(H¹_d − H^M_d)/2` for binary,
    /// `sign(H¹_d − H^M_d)` for non-binary).
    target: Vec<i8>,
    /// `ValHV_1` polarity on `I` (the attacker knows the value mapping).
    v1_on_i: Vec<i8>,
    /// Which model kind produced this probe.
    kind: ModelKind,
    /// Which feature the probe targets (plumbed into key-derivation
    /// errors so they name the real feature).
    feature: usize,
}

impl LockProbe {
    /// Captures a probe for `feature` with two oracle queries.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::ShapeMismatch`] if oracle and values
    /// disagree on dimension.
    pub fn capture(
        oracle: &dyn EncodingOracle,
        values: &LevelHvs,
        feature: usize,
        kind: ModelKind,
    ) -> Result<Self, AttackError> {
        if oracle.dim() != values.dim() {
            return Err(AttackError::ShapeMismatch {
                what: "oracle and values dimension differ",
            });
        }
        let n = oracle.n_features();
        let m = oracle.m_levels();
        let v1 = values.level(0);
        let (indices, target): (Vec<u32>, Vec<i8>) = match kind {
            ModelKind::Binary => {
                let h1 = oracle.query_binary(&all_min_row(n));
                let hm = oracle.query_binary(&probe_row(n, m, feature));
                (0..oracle.dim())
                    .filter(|&d| h1.polarity(d) != hm.polarity(d))
                    .map(|d| (d as u32, h1.polarity(d)))
                    .unzip()
            }
            ModelKind::NonBinary => {
                let h1 = oracle.query_int(&all_min_row(n));
                let hm = oracle.query_int(&probe_row(n, m, feature));
                (0..oracle.dim())
                    .filter(|&d| h1.get(d) != hm.get(d))
                    .map(|d| (d as u32, if h1.get(d) > hm.get(d) { 1i8 } else { -1i8 }))
                    .unzip()
            }
        };
        let v1_on_i = indices.iter().map(|&d| v1.polarity(d as usize)).collect();
        Ok(LockProbe {
            indices,
            target,
            v1_on_i,
            kind,
            feature,
        })
    }

    /// Captures probes for **every** feature with a single batched
    /// oracle call, routed through the victim's fused batch pipeline
    /// (the same path that serves traffic).
    ///
    /// The all-minimum observation is shared across features, so the
    /// whole sweep costs `N + 1` oracle queries instead of the `2·N`
    /// that `N` individual [`LockProbe::capture`] calls spend — the
    /// batch still counts one query per row, so the oracle audit trail
    /// stays exact. Each returned probe is bit-identical to its
    /// individually-captured counterpart.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::ShapeMismatch`] if oracle and values
    /// disagree on dimension.
    pub fn capture_all(
        oracle: &dyn EncodingOracle,
        values: &LevelHvs,
        kind: ModelKind,
    ) -> Result<Vec<Self>, AttackError> {
        if oracle.dim() != values.dim() {
            return Err(AttackError::ShapeMismatch {
                what: "oracle and values dimension differ",
            });
        }
        let n = oracle.n_features();
        let m = oracle.m_levels();
        let v1 = values.level(0);
        let mut rows: Vec<Vec<u16>> = Vec::with_capacity(n + 1);
        rows.push(all_min_row(n));
        rows.extend((0..n).map(|feature| probe_row(n, m, feature)));
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let probes = match kind {
            ModelKind::Binary => {
                let observed = oracle.query_binary_batch(&refs);
                let h1 = &observed[0];
                (0..n)
                    .map(|feature| {
                        let hm = &observed[feature + 1];
                        let (indices, target): (Vec<u32>, Vec<i8>) = (0..oracle.dim())
                            .filter(|&d| h1.polarity(d) != hm.polarity(d))
                            .map(|d| (d as u32, h1.polarity(d)))
                            .unzip();
                        let v1_on_i = indices.iter().map(|&d| v1.polarity(d as usize)).collect();
                        LockProbe {
                            indices,
                            target,
                            v1_on_i,
                            kind,
                            feature,
                        }
                    })
                    .collect()
            }
            ModelKind::NonBinary => {
                let observed = oracle.query_int_batch(&refs);
                let h1 = &observed[0];
                (0..n)
                    .map(|feature| {
                        let hm = &observed[feature + 1];
                        let (indices, target): (Vec<u32>, Vec<i8>) = (0..oracle.dim())
                            .filter(|&d| h1.get(d) != hm.get(d))
                            .map(|d| (d as u32, if h1.get(d) > hm.get(d) { 1i8 } else { -1i8 }))
                            .unzip();
                        let v1_on_i = indices.iter().map(|&d| v1.polarity(d as usize)).collect();
                        LockProbe {
                            indices,
                            target,
                            v1_on_i,
                            kind,
                            feature,
                        }
                    })
                    .collect()
            }
        };
        Ok(probes)
    }

    /// Captures a probe using the attacker's [`crate::HdlockDump`] view (the
    /// value mapping comes from the dump, per the paper's strong
    /// Sec. 4.2 assumption).
    ///
    /// # Errors
    ///
    /// Same as [`LockProbe::capture`].
    pub fn capture_from_dump(
        oracle: &dyn EncodingOracle,
        dump: &crate::memory_dump::HdlockDump,
        feature: usize,
        kind: ModelKind,
    ) -> Result<Self, AttackError> {
        Self::capture(oracle, &dump.values, feature, kind)
    }

    /// Size of the differing index set `|I|`.
    #[must_use]
    pub fn support(&self) -> usize {
        self.indices.len()
    }

    /// The feature this probe targets.
    #[must_use]
    pub fn feature(&self) -> usize {
        self.feature
    }

    /// Model kind the probe was captured from.
    #[must_use]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Scores one key guess.
    ///
    /// For binary models: normalized Hamming distance on `I` between the
    /// Eq. 13 prediction and the observed difference (0.0 = perfect).
    /// For non-binary models: `1 − cosine` on `I` (0.0 = perfect, the
    /// paper's cosine = 1 with 100 % confidence).
    ///
    /// # Errors
    ///
    /// Propagates key-derivation failures for malformed guesses.
    pub fn score(&self, pool: &BasePool, guess: &FeatureKey) -> Result<f64, AttackError> {
        let g =
            derive_feature(pool, guess, self.feature).map_err(|_| AttackError::ShapeMismatch {
                what: "guess references missing base",
            })?;
        let mismatches = self
            .indices
            .iter()
            .enumerate()
            .filter(|&(idx, &d)| {
                // H_attack on I reduces to v1_d · G_d (see module docs)
                let predicted = self.v1_on_i[idx] * g.polarity(d as usize);
                predicted != self.target[idx]
            })
            .count();
        if self.indices.is_empty() {
            return Ok(0.0);
        }
        let frac = mismatches as f64 / self.indices.len() as f64;
        Ok(match self.kind {
            ModelKind::Binary => frac,
            // cosine on I = 1 − 2·mismatch-fraction ⇒ 1 − cosine = 2·frac
            ModelKind::NonBinary => 2.0 * frac,
        })
    }
}

/// Which key parameter a validation sweep varies (paper Fig. 5/6 panels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweptParam {
    /// Sweep the rotation `k_{1,layer}`.
    Rotation {
        /// Which layer's rotation to sweep.
        layer: usize,
    },
    /// Sweep the base index `index(B_{1,layer})`.
    BaseIndex {
        /// Which layer's base index to sweep.
        layer: usize,
    },
}

/// Result of sweeping one parameter with all others held correct.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The swept parameter.
    pub param: SweptParam,
    /// Scores with the **correct value first**, then every wrong
    /// candidate in ascending parameter order (the paper's Fig. 5/6
    /// presentation).
    pub scores: Vec<f64>,
    /// Cost accounting.
    pub stats: AttackStats,
}

impl SweepResult {
    /// Score of the correct guess.
    #[must_use]
    pub fn correct_score(&self) -> f64 {
        self.scores[0]
    }

    /// Smallest score among wrong guesses.
    #[must_use]
    pub fn best_wrong_score(&self) -> f64 {
        self.scores[1..]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether the correct guess is strictly separated from every wrong
    /// guess by `margin`.
    #[must_use]
    pub fn separates(&self, margin: f64) -> bool {
        self.correct_score() + margin <= self.best_wrong_score()
    }
}

/// Sweeps one parameter of `true_key` (paper's worst case: the other
/// `2L − 1` parameters already correct), scoring every candidate value.
///
/// `stride` subsamples rotation candidates (1 = exhaustive); base-index
/// sweeps are always exhaustive.
///
/// # Errors
///
/// Propagates scoring errors; returns [`AttackError::ShapeMismatch`]
/// if `param` names a layer the key does not have.
pub fn sweep_parameter(
    probe: &LockProbe,
    pool: &BasePool,
    true_key: &FeatureKey,
    param: SweptParam,
    dim: usize,
    stride: usize,
) -> Result<SweepResult, AttackError> {
    let start = Instant::now();
    let layers = true_key.layers().to_vec();
    let layer_idx = match param {
        SweptParam::Rotation { layer } | SweptParam::BaseIndex { layer } => layer,
    };
    if layer_idx >= layers.len() {
        return Err(AttackError::ShapeMismatch {
            what: "swept layer beyond key depth",
        });
    }
    let stride = stride.max(1);
    let candidates: Vec<usize> = match param {
        SweptParam::Rotation { .. } => (0..dim).step_by(stride).collect(),
        SweptParam::BaseIndex { .. } => (0..pool.len()).collect(),
    };
    let correct_value = match param {
        SweptParam::Rotation { layer } => layers[layer].rotation,
        SweptParam::BaseIndex { layer } => layers[layer].base_index,
    };

    let mut scored: Vec<(usize, f64)> = par::par_chunk_map(candidates.len(), 16, |range| {
        range
            .map(|ci| {
                let v = candidates[ci];
                let mut guess_layers = layers.clone();
                match param {
                    SweptParam::Rotation { layer } => guess_layers[layer].rotation = v,
                    SweptParam::BaseIndex { layer } => guess_layers[layer].base_index = v,
                }
                let guess = FeatureKey::new(guess_layers);
                let s = probe
                    .score(pool, &guess)
                    .expect("candidate key is structurally valid");
                (v, s)
            })
            .collect()
    });

    // Correct value first (paper plots it first), wrong ones after.
    let mut scores = Vec::with_capacity(scored.len() + 1);
    match scored.iter().position(|&(v, _)| v == correct_value) {
        Some(pos) => {
            let (_, s) = scored.remove(pos);
            scores.push(s);
        }
        None => {
            // stride skipped the correct rotation: score it explicitly
            let mut guess_layers = layers.clone();
            match param {
                SweptParam::Rotation { layer } => guess_layers[layer].rotation = correct_value,
                SweptParam::BaseIndex { layer } => guess_layers[layer].base_index = correct_value,
            }
            scores.push(probe.score(pool, &FeatureKey::new(guess_layers))?);
        }
    }
    let guesses = scored.len() as u64 + 1;
    scores.extend(scored.into_iter().map(|(_, s)| s));
    Ok(SweepResult {
        param,
        scores,
        stats: AttackStats {
            guesses,
            oracle_queries: 0,
            elapsed: start.elapsed(),
        },
    })
}

/// Exhaustively searches the full `(D·P)^L` key space for one feature —
/// only feasible for toy dimensions, which is exactly the point of
/// HDLock. Returns the best key, its score and the number of guesses.
///
/// # Errors
///
/// Propagates scoring failures.
pub fn exhaustive_key_search(
    probe: &LockProbe,
    pool: &BasePool,
    dim: usize,
    n_layers: usize,
) -> Result<(FeatureKey, f64, u64), AttackError> {
    assert!(n_layers >= 1, "exhaustive search needs at least one layer");
    let per_layer: u64 = (dim as u64) * (pool.len() as u64);
    let total = per_layer.pow(n_layers as u32);
    let chunk_minima: Vec<(OrderedScore, FeatureKey)> = par::par_chunk_map(
        usize::try_from(total).expect("search space fits usize"),
        256,
        |range| {
            let mut best: Option<(OrderedScore, FeatureKey)> = None;
            for code in range {
                let mut rem = code as u64;
                let layers: Vec<LayerKey> = (0..n_layers)
                    .map(|_| {
                        let lk = LayerKey {
                            base_index: (rem % pool.len() as u64) as usize,
                            rotation: ((rem / pool.len() as u64) % dim as u64) as usize,
                        };
                        rem /= per_layer;
                        lk
                    })
                    .collect();
                let key = FeatureKey::new(layers);
                let score = probe.score(pool, &key).expect("generated key is valid");
                if best.as_ref().is_none_or(|(s, _)| OrderedScore(score) < *s) {
                    best = Some((OrderedScore(score), key));
                }
            }
            best.into_iter().collect()
        },
    );
    let best = chunk_minima
        .into_iter()
        .min_by(|a, b| a.0.cmp(&b.0))
        .expect("search space is non-empty");
    Ok((best.1, best.0 .0, total))
}

/// Total-ordering wrapper for f64 scores (attack scores are never NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedScore(f64);

impl Eq for OrderedScore {}

impl PartialOrd for OrderedScore {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedScore {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CountingOracle;
    use hdlock::{EncodingKey, LockConfig, LockedEncoder};
    use hypervec::HvRng;

    /// Builds a locked encoder while keeping a copy of the key (the
    /// experiment harness plays both victim and evaluator).
    fn locked_setup(
        seed: u64,
        cfg: &LockConfig,
    ) -> (LockedEncoder, EncodingKey, hdlock::BasePool, LevelHvs) {
        let mut rng = HvRng::from_seed(seed);
        let pool = hdlock::BasePool::generate(&mut rng, cfg.dim, cfg.pool_size);
        let values = LevelHvs::generate(&mut rng, cfg.dim, cfg.m_levels).unwrap();
        let key = EncodingKey::random(
            &mut rng,
            cfg.n_features,
            cfg.n_layers,
            cfg.pool_size,
            cfg.dim,
        )
        .unwrap();
        let enc = LockedEncoder::from_parts(pool.clone(), values.clone(), key.clone()).unwrap();
        (enc, key, pool, values)
    }

    fn small_cfg() -> LockConfig {
        LockConfig {
            n_features: 31,
            m_levels: 4,
            dim: 4096,
            pool_size: 31,
            n_layers: 2,
        }
    }

    #[test]
    fn correct_key_scores_zero_binary() {
        let cfg = small_cfg();
        let (enc, key, pool, values) = locked_setup(1, &cfg);
        let oracle = CountingOracle::new(&enc);
        let probe = LockProbe::capture(&oracle, &values, 0, ModelKind::Binary).unwrap();
        assert!(probe.support() > 0, "probe must observe differing indices");
        let score = probe.score(&pool, key.feature(0)).unwrap();
        assert_eq!(score, 0.0);
    }

    #[test]
    fn correct_key_scores_zero_nonbinary() {
        let cfg = small_cfg();
        let (enc, key, pool, values) = locked_setup(2, &cfg);
        let oracle = CountingOracle::new(&enc);
        let probe = LockProbe::capture(&oracle, &values, 0, ModelKind::NonBinary).unwrap();
        let score = probe.score(&pool, key.feature(0)).unwrap();
        assert_eq!(
            score, 0.0,
            "paper: cosine exactly 1 for the correct non-binary guess"
        );
    }

    #[test]
    fn one_wrong_parameter_destroys_the_match() {
        let cfg = small_cfg();
        let (enc, key, pool, values) = locked_setup(3, &cfg);
        let oracle = CountingOracle::new(&enc);
        let probe = LockProbe::capture(&oracle, &values, 0, ModelKind::Binary).unwrap();
        let mut layers = key.feature(0).layers().to_vec();
        layers[1].rotation = (layers[1].rotation + 17) % cfg.dim;
        let wrong = FeatureKey::new(layers);
        let score = probe.score(&pool, &wrong).unwrap();
        assert!(
            score > 0.25,
            "wrong-by-one guess must look random, got {score}"
        );
    }

    #[test]
    fn sweep_separates_correct_value_on_all_four_params() {
        let cfg = small_cfg();
        let (enc, key, pool, values) = locked_setup(4, &cfg);
        let oracle = CountingOracle::new(&enc);
        let probe = LockProbe::capture(&oracle, &values, 0, ModelKind::Binary).unwrap();
        for param in [
            SweptParam::Rotation { layer: 0 },
            SweptParam::BaseIndex { layer: 0 },
            SweptParam::Rotation { layer: 1 },
            SweptParam::BaseIndex { layer: 1 },
        ] {
            let sweep = sweep_parameter(&probe, &pool, key.feature(0), param, cfg.dim, 16).unwrap();
            assert_eq!(sweep.correct_score(), 0.0, "{param:?}");
            assert!(
                sweep.separates(0.2),
                "{param:?}: {:?}",
                sweep.best_wrong_score()
            );
        }
    }

    #[test]
    fn nonbinary_sweep_also_separates() {
        let cfg = small_cfg();
        let (enc, key, pool, values) = locked_setup(5, &cfg);
        let oracle = CountingOracle::new(&enc);
        let probe = LockProbe::capture(&oracle, &values, 0, ModelKind::NonBinary).unwrap();
        let sweep = sweep_parameter(
            &probe,
            &pool,
            key.feature(0),
            SweptParam::BaseIndex { layer: 0 },
            cfg.dim,
            1,
        )
        .unwrap();
        assert_eq!(sweep.correct_score(), 0.0);
        assert!(sweep.separates(0.5));
    }

    #[test]
    fn exhaustive_search_succeeds_only_at_toy_scale() {
        // L = 1, D = 64, P = 4: 256 guesses — feasible, and the attack
        // recovers a key deriving the exact feature hypervector. The
        // same search at paper scale would need (10⁴·784)² ≈ 6·10¹³
        // guesses per feature (see hdlock::complexity).
        let cfg = LockConfig {
            n_features: 9,
            m_levels: 4,
            dim: 64,
            pool_size: 4,
            n_layers: 1,
        };
        let (enc, key, pool, values) = locked_setup(6, &cfg);
        let oracle = CountingOracle::new(&enc);
        let probe = LockProbe::capture(&oracle, &values, 0, ModelKind::NonBinary).unwrap();
        let (found, score, guesses) = exhaustive_key_search(&probe, &pool, cfg.dim, 1).unwrap();
        assert_eq!(guesses, 256);
        assert_eq!(score, 0.0);
        let true_hv = derive_feature(&pool, key.feature(0), 0).unwrap();
        let found_hv = derive_feature(&pool, &found, 0).unwrap();
        assert_eq!(
            found_hv, true_hv,
            "recovered key must derive the true feature hypervector"
        );
    }

    #[test]
    fn probe_uses_exactly_two_queries() {
        let cfg = small_cfg();
        let (enc, _, _, values) = locked_setup(7, &cfg);
        let oracle = CountingOracle::new(&enc);
        let _ = LockProbe::capture(&oracle, &values, 0, ModelKind::Binary).unwrap();
        assert_eq!(oracle.queries(), 2);
    }

    #[test]
    fn capture_all_matches_individual_captures_at_lower_cost() {
        let cfg = small_cfg();
        let (enc, _, _, values) = locked_setup(8, &cfg);
        for kind in [ModelKind::Binary, ModelKind::NonBinary] {
            let batched_oracle = CountingOracle::new(&enc);
            let probes = LockProbe::capture_all(&batched_oracle, &values, kind).unwrap();
            assert_eq!(probes.len(), cfg.n_features);
            assert_eq!(
                batched_oracle.queries(),
                cfg.n_features as u64 + 1,
                "shared all-min observation: N + 1 queries"
            );
            let single_oracle = CountingOracle::new(&enc);
            for (f, probe) in probes.iter().enumerate() {
                let single = LockProbe::capture(&single_oracle, &values, f, kind).unwrap();
                assert_eq!(probe, &single, "{kind:?} feature {f}");
            }
            assert_eq!(single_oracle.queries(), 2 * cfg.n_features as u64);
        }
    }

    #[test]
    fn attack_through_deployed_session_matches_direct_oracle() {
        use crate::oracle::SessionOracle;
        use hdc_model::{ClassMemory, InferenceSession};

        // The attacker drives the deployed serving pipeline (session
        // over the locked encoder + a trained memory) instead of a bare
        // encoder handle; the captured probes and key scores must be
        // identical, and so must the query accounting.
        let cfg = small_cfg();
        let (enc, key, pool, values) = locked_setup(9, &cfg);
        let mut memory = ClassMemory::new(ModelKind::Binary, 2, cfg.dim);
        memory.acc_mut(0).add(&hdc_model::Encoder::encode_binary(
            &enc,
            &vec![0u16; cfg.n_features],
        ));
        memory.rebinarize();
        let session = InferenceSession::new(&enc, &memory);
        let deployed = SessionOracle::new(&session);
        let direct = CountingOracle::new(&enc);

        let via_session = LockProbe::capture(&deployed, &values, 0, ModelKind::Binary).unwrap();
        let via_direct = LockProbe::capture(&direct, &values, 0, ModelKind::Binary).unwrap();
        assert_eq!(via_session, via_direct);
        assert_eq!(deployed.queries(), direct.queries());
        assert_eq!(
            via_session.score(&pool, key.feature(0)).unwrap(),
            0.0,
            "correct key still scores perfectly through the session"
        );
    }
}
