//! The end-to-end IP theft: reason the mapping, rebuild the encoder,
//! duplicate the model (paper Sec. 5.1 / Table 1).

use hdc_model::{Encoder, HdcModel, ModelKind, RecordEncoder};
use hypervec::{ItemMemory, LevelHvs};

use crate::error::AttackError;
use crate::feature_extract::{
    extract_features, feature_mapping_accuracy, FeatureExtractOptions, FeatureMapping,
};
use crate::memory_dump::{DumpGroundTruth, StandardDump};
use crate::oracle::EncodingOracle;
use crate::timing::AttackStats;
use crate::value_extract::{extract_values, value_mapping_accuracy, ValueMapping};

/// The attacker's full reconstruction of a victim encoding module.
#[derive(Debug, Clone)]
pub struct RecoveredEncoding {
    /// Recovered value mapping.
    pub values: ValueMapping,
    /// Recovered feature mapping.
    pub features: FeatureMapping,
    /// Combined cost of both phases.
    pub stats: AttackStats,
}

/// Runs both attack phases against an oracle + memory dump.
///
/// # Errors
///
/// Propagates [`AttackError`] from either phase.
pub fn reason_encoding(
    oracle: &dyn EncodingOracle,
    dump: &StandardDump,
    kind: ModelKind,
    options: FeatureExtractOptions,
) -> Result<RecoveredEncoding, AttackError> {
    let values = extract_values(oracle, dump, kind)?;
    let features = extract_features(oracle, dump, &values, kind, options)?;
    let stats = values.stats.combined(features.stats);
    Ok(RecoveredEncoding {
        values,
        features,
        stats,
    })
}

/// Materializes a working encoder from the recovered mapping — the
/// stolen encoding module.
///
/// # Errors
///
/// Returns [`AttackError::ShapeMismatch`] if the recovered rows cannot
/// form a consistent encoder.
pub fn rebuild_encoder(
    dump: &StandardDump,
    recovered: &RecoveredEncoding,
) -> Result<RecordEncoder, AttackError> {
    let feature_rows: Vec<_> = recovered
        .features
        .assignment
        .iter()
        .map(|&row| {
            dump.feature_pool
                .get(row)
                .expect("assignment rows come from dump")
                .clone()
        })
        .collect();
    let value_rows: Vec<_> = recovered
        .values
        .order
        .iter()
        .map(|&row| {
            dump.value_pool
                .get(row)
                .expect("order rows come from dump")
                .clone()
        })
        .collect();
    let features = ItemMemory::from_rows(feature_rows).map_err(|_| AttackError::ShapeMismatch {
        what: "recovered feature rows inconsistent",
    })?;
    let values = LevelHvs::from_levels(value_rows).map_err(|_| AttackError::ShapeMismatch {
        what: "recovered value rows inconsistent",
    })?;
    RecordEncoder::from_parts(features, values).map_err(|_| AttackError::ShapeMismatch {
        what: "recovered parts disagree on dimension",
    })
}

/// Duplicates a victim model with the stolen encoder: the attacker
/// pairs the reconstructed encoding module with the victim's (public)
/// class hypervectors and quantizer, yielding the "recovered model"
/// whose accuracy Table 1 compares to the original.
///
/// # Errors
///
/// Propagates encoder reconstruction failures.
pub fn duplicate_model<E: Encoder + Sync>(
    victim: &HdcModel<E>,
    dump: &StandardDump,
    recovered: &RecoveredEncoding,
) -> Result<HdcModel<RecordEncoder>, AttackError> {
    let encoder = rebuild_encoder(dump, recovered)?;
    Ok(HdcModel::from_parts(
        *victim.config(),
        encoder,
        victim.discretizer().clone(),
        victim.memory().clone(),
    ))
}

/// Joint mapping accuracy (features and values) against ground truth;
/// 1.0 means the entire encoding module was recovered exactly.
#[must_use]
pub fn mapping_accuracy(recovered: &RecoveredEncoding, truth: &DumpGroundTruth) -> f64 {
    let fa = feature_mapping_accuracy(&recovered.features, &truth.feature_perm);
    let va = value_mapping_accuracy(&recovered.values, &truth.value_perm);
    let nf = recovered.features.assignment.len() as f64;
    let nv = recovered.values.order.len() as f64;
    (fa * nf + va * nv) / (nf + nv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CountingOracle;
    use hdc_datasets::Benchmark;
    use hdc_model::HdcConfig;
    use hypervec::HvRng;

    #[test]
    fn full_pipeline_steals_the_model() {
        // Small-scale Table 1 rehearsal: train a victim, attack it,
        // verify the duplicate matches the original's predictions.
        let (train_ds, test_ds) = Benchmark::Pamap.generate(0.03, 5).unwrap();
        let config = HdcConfig::paper_default().with_dim(2048).with_seed(5);
        let victim = HdcModel::fit_standard(&config, &train_ds).unwrap();

        let mut rng = HvRng::from_seed(99);
        let (dump, truth) = StandardDump::from_encoder(victim.encoder(), &mut rng);
        let oracle = CountingOracle::new(victim.encoder());
        let recovered = reason_encoding(
            &oracle,
            &dump,
            ModelKind::Binary,
            FeatureExtractOptions::default(),
        )
        .unwrap();
        assert_eq!(mapping_accuracy(&recovered, &truth), 1.0);

        let stolen = duplicate_model(&victim, &dump, &recovered).unwrap();
        let original_acc = victim.evaluate(&test_ds).unwrap().accuracy;
        let stolen_acc = stolen.evaluate(&test_ds).unwrap().accuracy;
        assert!(
            (original_acc - stolen_acc).abs() < 1e-12,
            "exact mapping recovery must reproduce accuracy exactly: {original_acc} vs {stolen_acc}"
        );
    }

    #[test]
    fn rebuilt_encoder_is_bit_identical() {
        let mut rng = HvRng::from_seed(1);
        let enc = RecordEncoder::generate(&mut rng, 19, 4, 2048).unwrap();
        let (dump, _) = StandardDump::from_encoder(&enc, &mut rng);
        let oracle = CountingOracle::new(&enc);
        let recovered = reason_encoding(
            &oracle,
            &dump,
            ModelKind::Binary,
            FeatureExtractOptions::default(),
        )
        .unwrap();
        let rebuilt = rebuild_encoder(&dump, &recovered).unwrap();
        let row: Vec<u16> = (0..19).map(|i| (i % 4) as u16).collect();
        assert_eq!(rebuilt.encode_binary(&row), enc.encode_binary(&row));
        assert_eq!(rebuilt.encode_int(&row), enc.encode_int(&row));
    }

    #[test]
    fn stats_accumulate_across_phases() {
        let mut rng = HvRng::from_seed(2);
        let enc = RecordEncoder::generate(&mut rng, 11, 4, 1024).unwrap();
        let (dump, _) = StandardDump::from_encoder(&enc, &mut rng);
        let oracle = CountingOracle::new(&enc);
        let recovered = reason_encoding(
            &oracle,
            &dump,
            ModelKind::Binary,
            FeatureExtractOptions::default(),
        )
        .unwrap();
        // 1 all-min query + 11 per-feature probes
        assert_eq!(recovered.stats.oracle_queries, 12);
        assert_eq!(oracle.queries(), 12);
        assert!(recovered.stats.guesses > 0);
    }
}
