//! Histogram correctness under concurrency and against an exact
//! sorted reference.
//!
//! * concurrent recording from `hypervec::par` worker threads loses no
//!   samples and lands every one in the right bucket;
//! * merge is associative (and commutative) bucket-wise;
//! * every quantile is within the documented log-linear error bound of
//!   the exact nearest-rank percentile of a sorted reference
//!   (property-tested over random sample sets).

use hdc_obs::Histogram;
use proptest::prelude::*;

/// Deterministic pseudo-random sample stream (splitmix64).
fn samples(seed: u64, n: usize, max_exp: u32) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            // Log-uniform-ish spread: pick an exponent, then bits.
            let exp = (z % u64::from(max_exp)) as u32;
            (z >> 8) & ((1u64 << exp) | ((1u64 << exp) - 1))
        })
        .collect()
}

/// Exact nearest-rank percentile of an ascending-sorted slice (the
/// same definition `hdc_model::LatencyStats` uses).
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Concurrent recording from `hypervec::par` scoped worker threads:
/// no sample is lost and totals match a serial reference.
#[test]
fn concurrent_recording_loses_nothing() {
    let rows = samples(42, 40_000, 30);
    let h = Histogram::new();
    // Each par worker records its contiguous chunk concurrently.
    let _: Vec<()> = hypervec::par::par_chunk_map(rows.len(), 256, |range| {
        for &v in &rows[range] {
            h.record(v);
        }
        vec![()]
    });
    let serial = Histogram::new();
    for &v in &rows {
        serial.record(v);
    }
    let got = h.snapshot();
    let want = serial.snapshot();
    assert_eq!(got.count(), rows.len() as u64);
    assert_eq!(got.sum(), want.sum());
    assert_eq!(got.nonzero_buckets(), want.nonzero_buckets());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), bucket-for-bucket — so per-shard
    /// recorders can be folded in any grouping.
    #[test]
    fn merge_is_associative(seed in any::<u64>()) {
        let xs = samples(seed, 300, 40);
        let thirds: Vec<&[u64]> = xs.chunks(100).collect();
        let record = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        // (a ⊕ b) ⊕ c
        let left = record(thirds[0]);
        left.merge_from(&record(thirds[1]));
        left.merge_from(&record(thirds[2]));
        // a ⊕ (b ⊕ c)
        let bc = record(thirds[1]);
        bc.merge_from(&record(thirds[2]));
        let right = record(thirds[0]);
        right.merge_from(&bc);
        // b ⊕ (a ⊕ c): commutativity rides along.
        let ac = record(thirds[0]);
        ac.merge_from(&record(thirds[2]));
        let swapped = record(thirds[1]);
        swapped.merge_from(&ac);

        let want = left.snapshot();
        for other in [right.snapshot(), swapped.snapshot()] {
            prop_assert_eq!(want.count(), other.count());
            prop_assert_eq!(want.sum(), other.sum());
            prop_assert_eq!(want.nonzero_buckets(), other.nonzero_buckets());
        }
    }

    /// Histogram quantiles vs the exact sorted nearest-rank reference:
    /// `exact <= est <= exact + exact/32 + 1` for every percentile the
    /// serving stack reports.
    #[test]
    fn quantiles_match_sorted_reference_within_bound(
        seed in any::<u64>(),
        n in 1usize..2000,
    ) {
        let xs = samples(seed, n, 44);
        let h = Histogram::new();
        for &v in &xs {
            h.record(v);
        }
        let mut sorted = xs;
        sorted.sort_unstable();
        let snap = h.snapshot();
        for q in [0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0] {
            let exact = exact_percentile(&sorted, q);
            let est = snap.quantile(q);
            prop_assert!(est >= exact, "q={q}: est {est} < exact {exact}");
            prop_assert!(
                est <= exact + exact / 32 + 1,
                "q={q}: est {est} exceeds bound for exact {exact}"
            );
        }
    }
}
