//! # hdc-obs — zero-dependency telemetry primitives
//!
//! The observability layer the serving stack records into: lock-free
//! [`Counter`]s and [`Gauge`]s, log-linear fixed-bucket latency
//! [`Histogram`]s (concurrent, mergeable, constant memory), a
//! [`Registry`] of named series with label support, and
//! Prometheus-text-format rendering — all on `std` atomics, no
//! external crates (the build environment has no registry access, so
//! `prometheus`/`tracing` are out by construction).
//!
//! ## Histograms
//!
//! [`Histogram`] generalizes [`hdc_model`'s] sort-based `LatencyStats`
//! from a client-side batch summary to a server-safe concurrent
//! recorder: writers do one relaxed `fetch_add` into a log-linear
//! bucket table ([`NUM_BUCKETS`] × `AtomicU64`, ~15 KiB, allocated
//! once), so recording from the event loop or a batch worker never
//! locks, never allocates, and never sorts. The bucket layout is the
//! HdrHistogram scheme: values below 32 get exact unit buckets; above
//! that, each power-of-two octave is split into 32 linear sub-buckets,
//! so any reported quantile `est` of a true value `v` satisfies
//! `v <= est <= v + v/32 + 1` (≤ 3.125 % relative error, pinned by a
//! property test). Histograms merge by bucket-wise addition —
//! associative and commutative, so per-shard recorders can be summed
//! in any order.
//!
//! [`hdc_model`'s]: https://docs.rs/hdc_model
//!
//! ## Registry and rendering
//!
//! A [`Registry`] hands out `Arc`-shared series keyed by
//! `(name, labels)` — get-or-create, so independently wired components
//! land on the same series — and renders them all in the Prometheus
//! text exposition format ([`Registry::render_prometheus`]), the
//! payload `hdc_serve --metrics-addr` serves to scrapes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Values below this are recorded in exact unit-width buckets.
const LINEAR_MAX: u64 = 32;
/// Sub-buckets per power-of-two octave (`2^PRECISION_BITS`).
const PRECISION_BITS: u32 = 5;
/// Number of sub-buckets per octave (32 ⇒ ≤ 3.125 % relative error).
const SUB_BUCKETS: u64 = 1 << PRECISION_BITS;
/// Total bucket count: 32 exact buckets + 59 octaves × 32 sub-buckets
/// covers the full `u64` range.
pub const NUM_BUCKETS: usize = (LINEAR_MAX + (63 - PRECISION_BITS as u64) * SUB_BUCKETS) as usize;

/// A monotonically increasing event count (relaxed atomics — readers
/// see a consistent-enough value for telemetry, writers never stall).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (connection counts, queue depths).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket index for a recorded value (see the module docs for the
/// log-linear layout).
#[inline]
#[must_use]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let octave = (msb - PRECISION_BITS) as u64;
        let offset = (v >> (msb - PRECISION_BITS)) & (SUB_BUCKETS - 1);
        (LINEAR_MAX + octave * SUB_BUCKETS + offset) as usize
    }
}

/// Inclusive upper bound of bucket `b` — what quantile extraction
/// reports for any sample that landed in it.
#[inline]
#[must_use]
fn bucket_upper(b: usize) -> u64 {
    let b = b as u64;
    if b < LINEAR_MAX {
        b
    } else {
        let octave = (b - LINEAR_MAX) / SUB_BUCKETS;
        let offset = (b - LINEAR_MAX) % SUB_BUCKETS;
        let low = (LINEAR_MAX + offset) << octave;
        low + ((1u64 << octave) - 1)
    }
}

/// A concurrent log-linear latency histogram (see the module docs).
///
/// Units are the caller's (the serving stack records microseconds).
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (allocates its bucket table once).
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one sample. Lock-free: three relaxed `fetch_add`s.
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Adds every bucket of `other` into `self` (bucket-wise sum —
    /// associative and commutative, so shard merges order-freely).
    pub fn merge_from(&self, other: &Histogram) {
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        for (b, ob) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = ob.load(Ordering::Relaxed);
            if n > 0 {
                b.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// A point-in-time copy for quantile extraction and rendering.
    ///
    /// Concurrent recording during the copy may split a sample between
    /// `count` and its bucket; the snapshot clamps ranks into the
    /// observed bucket mass so quantiles stay well-defined.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    count: u64,
    sum: u64,
    buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Samples in the snapshot.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`), reported as the upper
    /// bound of the bucket holding the rank — so for a true sample `v`,
    /// `v <= quantile <= v + v/32 + 1`. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        bucket_upper(NUM_BUCKETS - 1)
    }

    /// The standard serving percentile set: `(p50, p90, p99, p999)`.
    #[must_use]
    pub fn percentiles(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs, in
    /// ascending bound order — the Prometheus `_bucket` boundaries.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (bucket_upper(b), n))
            .collect()
    }
}

/// One registered series.
#[derive(Debug, Clone)]
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    series: Series,
}

/// A get-or-create registry of named, optionally labeled series,
/// renderable in the Prometheus text exposition format.
///
/// Registration takes a `Mutex` (series are created at wiring time,
/// not on hot paths); the handed-out `Arc`s record lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
    ) -> Series {
        let mut entries = self.entries.lock().expect("obs registry poisoned");
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && kv_eq(&e.labels, labels))
        {
            return e.series.clone();
        }
        let series = make();
        entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            series: series.clone(),
        });
        series
    }

    /// Gets or creates an unlabeled counter.
    ///
    /// # Panics
    ///
    /// Panics if the `(name, labels)` key is already registered as a
    /// different series kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Gets or creates a labeled counter.
    ///
    /// # Panics
    ///
    /// Panics on a series-kind mismatch for the same key.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, help, labels, || {
            Series::Counter(Arc::new(Counter::new()))
        }) {
            Series::Counter(c) => c,
            _ => panic!("series '{name}' already registered with a different kind"),
        }
    }

    /// Gets or creates an unlabeled gauge.
    ///
    /// # Panics
    ///
    /// Panics on a series-kind mismatch for the same key.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Gets or creates a labeled gauge.
    ///
    /// # Panics
    ///
    /// Panics on a series-kind mismatch for the same key.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, help, labels, || Series::Gauge(Arc::new(Gauge::new()))) {
            Series::Gauge(g) => g,
            _ => panic!("series '{name}' already registered with a different kind"),
        }
    }

    /// Gets or creates an unlabeled histogram.
    ///
    /// # Panics
    ///
    /// Panics on a series-kind mismatch for the same key.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Gets or creates a labeled histogram.
    ///
    /// # Panics
    ///
    /// Panics on a series-kind mismatch for the same key.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, help, labels, || {
            Series::Histogram(Arc::new(Histogram::new()))
        }) {
            Series::Histogram(h) => h,
            _ => panic!("series '{name}' already registered with a different kind"),
        }
    }

    /// Renders every series in the Prometheus text exposition format
    /// (sorted by name, `# HELP`/`# TYPE` once per family, histogram
    /// `_bucket`/`_sum`/`_count` with cumulative `le` bounds).
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("obs registry poisoned");
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            entries[a]
                .name
                .cmp(&entries[b].name)
                .then_with(|| entries[a].labels.cmp(&entries[b].labels))
        });
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for &i in &order {
            let e = &entries[i];
            if last_name != Some(e.name.as_str()) {
                let kind = match e.series {
                    Series::Counter(_) => "counter",
                    Series::Gauge(_) => "gauge",
                    Series::Histogram(_) => "histogram",
                };
                out.push_str(&format!(
                    "# HELP {} {}\n# TYPE {} {}\n",
                    e.name, e.help, e.name, kind
                ));
                last_name = Some(e.name.as_str());
            }
            match &e.series {
                Series::Counter(c) => {
                    out.push_str(&e.name);
                    render_labels(&mut out, &e.labels, None);
                    out.push_str(&format!(" {}\n", c.get()));
                }
                Series::Gauge(g) => {
                    out.push_str(&e.name);
                    render_labels(&mut out, &e.labels, None);
                    out.push_str(&format!(" {}\n", g.get()));
                }
                Series::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (bound, n) in snap.nonzero_buckets() {
                        cumulative += n;
                        out.push_str(&format!("{}_bucket", e.name));
                        render_labels(&mut out, &e.labels, Some(&bound.to_string()));
                        out.push_str(&format!(" {cumulative}\n"));
                    }
                    out.push_str(&format!("{}_bucket", e.name));
                    render_labels(&mut out, &e.labels, Some("+Inf"));
                    out.push_str(&format!(" {cumulative}\n"));
                    out.push_str(&format!("{}_sum", e.name));
                    render_labels(&mut out, &e.labels, None);
                    out.push_str(&format!(" {}\n", snap.sum()));
                    out.push_str(&format!("{}_count", e.name));
                    render_labels(&mut out, &e.labels, None);
                    out.push_str(&format!(" {}\n", snap.count()));
                }
            }
        }
        out
    }
}

fn kv_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want)
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

/// Appends `{k="v",…,le="…"}` (omitted entirely when empty).
fn render_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label(out, v);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

/// Prometheus label-value escaping: backslash, quote, newline.
fn escape_label(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..LINEAR_MAX {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), LINEAR_MAX);
        for (i, (bound, n)) in snap.nonzero_buckets().into_iter().enumerate() {
            assert_eq!(bound, i as u64);
            assert_eq!(n, 1);
        }
        // Exact quantiles below the linear cutoff.
        assert_eq!(snap.quantile(0.5), 15);
        assert_eq!(snap.quantile(1.0), 31);
    }

    #[test]
    fn bucket_bounds_are_monotonic_and_contain_their_values() {
        let mut prev = None;
        for b in 0..NUM_BUCKETS {
            let hi = bucket_upper(b);
            if let Some(p) = prev {
                assert!(hi > p, "bucket {b} bound {hi} <= {p}");
            }
            prev = Some(hi);
            assert_eq!(bucket_index(hi), b, "upper bound maps back to its bucket");
        }
        // Spot checks across octaves, including the extremes.
        for v in [0, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, u64::MAX] {
            let b = bucket_index(v);
            assert!(bucket_upper(b) >= v);
            let err = bucket_upper(b) - v;
            assert!(err <= v / 32 + 1, "value {v}: bound error {err}");
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(3);
        g.sub(12);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(100_000);
        b.record(10);
        b.record_n(77, 3);
        a.merge_from(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count(), 6);
        assert_eq!(snap.sum(), 10 + 100_000 + 10 + 3 * 77);
        let buckets = snap.nonzero_buckets();
        assert_eq!(buckets.iter().map(|&(_, n)| n).sum::<u64>(), 6);
        assert_eq!(buckets.iter().find(|&&(b, _)| b == 10).unwrap().1, 2);
    }

    #[test]
    fn registry_is_get_or_create_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("hdc_requests_total", "Requests.");
        let b = r.counter("hdc_requests_total", "Requests.");
        assert!(Arc::ptr_eq(&a, &b));
        let j = r.counter_with("hdc_wire_total", "Per wire.", &[("wire", "json")]);
        let k = r.counter_with("hdc_wire_total", "Per wire.", &[("wire", "binary")]);
        assert!(!Arc::ptr_eq(&j, &k));
        let j2 = r.counter_with("hdc_wire_total", "Per wire.", &[("wire", "json")]);
        assert!(Arc::ptr_eq(&j, &j2));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        let _ = r.counter("hdc_thing", "A counter.");
        let _ = r.gauge("hdc_thing", "Now a gauge?");
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let r = Registry::new();
        r.counter_with("hdc_wire_total", "Per-wire requests.", &[("wire", "json")])
            .add(3);
        r.counter_with(
            "hdc_wire_total",
            "Per-wire requests.",
            &[("wire", "binary")],
        )
        .add(9);
        r.gauge("hdc_active_connections", "Open connections.")
            .set(2);
        let h = r.histogram("hdc_latency_us", "Latency.");
        h.record(5);
        h.record(70);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE hdc_wire_total counter"));
        assert!(text.contains("hdc_wire_total{wire=\"json\"} 3"));
        assert!(text.contains("hdc_wire_total{wire=\"binary\"} 9"));
        assert!(text.contains("# TYPE hdc_active_connections gauge"));
        assert!(text.contains("hdc_active_connections 2"));
        assert!(text.contains("# TYPE hdc_latency_us histogram"));
        assert!(text.contains("hdc_latency_us_bucket{le=\"5\"} 1"));
        assert!(text.contains("hdc_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("hdc_latency_us_sum 75"));
        assert!(text.contains("hdc_latency_us_count 2"));
        // HELP/TYPE emitted once per family even with two series.
        assert_eq!(text.matches("# TYPE hdc_wire_total").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("hdc_x", "X.", &[("path", "a\"b\\c\nd")])
            .inc();
        let text = r.render_prometheus();
        assert!(text.contains("path=\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn quantiles_clamp_and_handle_empty() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.99), 0);
        h.record_n(1000, 10);
        let snap = h.snapshot();
        let (p50, p90, p99, p999) = snap.percentiles();
        // All mass in one bucket: every percentile reports its bound.
        assert_eq!(p50, p90);
        assert_eq!(p99, p999);
        assert!((1000..=1000 + 1000 / 32 + 1).contains(&p50));
    }
}
