//! Property tests: binary snapshot save → load → swap is **bit
//! identical** to the pre-save session — float score sequences, argmax
//! winners and lowest-index tie order — at non-word-aligned dimensions
//! (130, 10 000), for both model kinds (binary / non-binary), both
//! locked-encoder derivation modes, and under every compiled-in kernel
//! backend.

use hdc_datasets::{Dataset, SynthSpec};
use hdc_model::{
    ClassMemory, ClassifySession, Encoder, HdcConfig, HdcModel, ModelKind, RecordEncoder,
};
use hdc_store::{KeySegment, ModelSnapshot, ServingSession};
use hdlock::{DeriveMode, LockConfig, LockedEncoder};
use hypervec::{kernel, BinaryHv, HvRng, IntHv};
use proptest::prelude::*;

const N_FEATURES: usize = 9;
const M_LEVELS: usize = 4;

fn train_set(seed: u64) -> Dataset {
    let spec = SynthSpec::new("store-prop", N_FEATURES, 3, 48, 12, 0.1);
    let mut rng = HvRng::from_seed(seed);
    spec.generate(&mut rng).expect("valid synthetic spec").0
}

fn config(dim: usize, kind: ModelKind, seed: u64) -> HdcConfig {
    HdcConfig {
        dim,
        m_levels: M_LEVELS,
        kind,
        epochs: 1,
        learning_rate: 1,
        seed,
    }
}

fn query_rows(seed: u64, count: usize) -> Vec<Vec<u16>> {
    let mut rng = HvRng::from_seed(seed);
    (0..count)
        .map(|_| {
            (0..N_FEATURES)
                .map(|_| rng.index(M_LEVELS) as u16)
                .collect()
        })
        .collect()
}

/// Asserts the two sessions agree bit-for-bit on a query batch: same
/// argmax sequence, same float score bits, same single-row classify.
fn assert_bit_identical<A: ClassifySession, B: ClassifySession>(
    original: &A,
    reloaded: &B,
    rows: &[Vec<u16>],
    label: &str,
) {
    let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
    let want = original.scores_batch(&refs);
    let got = reloaded.scores_batch(&refs);
    assert_eq!(got.best_rows(), want.best_rows(), "{label}: argmax");
    for (q, row) in refs.iter().enumerate() {
        let (w, g) = (want.scores(q), got.scores(q));
        assert_eq!(w.len(), g.len(), "{label}: score width, query {q}");
        for (j, (a, b)) in w.iter().zip(g).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{label}: score bits, query {q} class {j}"
            );
        }
        assert_eq!(
            original.classify(row),
            reloaded.classify(row),
            "{label}: classify, query {q}"
        );
    }
    // The packed planes themselves must agree under *every* compiled-in
    // kernel backend, not just the dispatched one.
    let mut rng = HvRng::from_seed(0xBEEF);
    let bin_probes: Vec<BinaryHv> = (0..4).map(|_| rng.binary_hv(original.dim())).collect();
    let bin_refs: Vec<&BinaryHv> = bin_probes.iter().collect();
    let int_probes: Vec<IntHv> = bin_probes.iter().map(BinaryHv::to_int).collect();
    let int_refs: Vec<&IntHv> = int_probes.iter().collect();
    for k in kernel::available() {
        let w = original
            .memory()
            .search_batch_binary_with(k, &bin_refs)
            .unwrap();
        let g = reloaded
            .memory()
            .search_batch_binary_with(k, &bin_refs)
            .unwrap();
        assert_eq!(g.best_rows(), w.best_rows(), "{label}: backend {}", k.name);
        for q in 0..bin_refs.len() {
            for (a, b) in w.scores(q).iter().zip(g.scores(q)) {
                assert_eq!(a.to_bits(), b.to_bits(), "{label}: backend {}", k.name);
            }
        }
        if original.memory().has_int_rows() {
            let w = original
                .memory()
                .search_batch_int_with(k, &int_refs)
                .unwrap();
            let g = reloaded
                .memory()
                .search_batch_int_with(k, &int_refs)
                .unwrap();
            assert_eq!(
                g.best_rows(),
                w.best_rows(),
                "{label}: int backend {}",
                k.name
            );
            for q in 0..int_refs.len() {
                for (a, b) in w.scores(q).iter().zip(g.scores(q)) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{label}: int backend {}", k.name);
                }
            }
        }
    }
}

fn roundtrip_standard(dim: usize, kind: ModelKind, seed: u64, queries: u64) {
    let train = train_set(seed);
    let model = HdcModel::fit_standard(&config(dim, kind, seed), &train).unwrap();
    let snap = ModelSnapshot::from_standard_model(&model);
    let (loaded, checksum) = ModelSnapshot::from_bytes(&snap.to_bytes()).unwrap();
    assert_eq!(checksum, snap.checksum());
    let session: ServingSession = loaded.into_session(None).unwrap();
    let rows = query_rows(queries, 12);
    assert_bit_identical(
        &model.session(),
        &session,
        &rows,
        &format!("standard D={dim} {kind:?}"),
    );
}

fn roundtrip_locked(dim: usize, kind: ModelKind, mode: DeriveMode, seed: u64, queries: u64) {
    let train = train_set(seed);
    let cfg = config(dim, kind, seed);
    let mut rng = HvRng::from_seed(seed ^ 0xA5A5);
    let mut enc = LockedEncoder::generate(
        &mut rng,
        &LockConfig {
            n_features: N_FEATURES,
            m_levels: M_LEVELS,
            dim,
            pool_size: N_FEATURES + 3,
            n_layers: 2,
        },
    )
    .unwrap();
    enc.set_mode(mode);
    let model = HdcModel::fit_with_encoder(&cfg, enc, &train).unwrap();
    let snap = ModelSnapshot::from_locked_model(&model);
    let key = KeySegment::from_locked_encoder(model.encoder()).unwrap();
    // Ship both artifacts through bytes, like a deployment would.
    let (loaded, _) = ModelSnapshot::from_bytes(&snap.to_bytes()).unwrap();
    let key = KeySegment::from_bytes(&key.to_bytes()).unwrap();
    let session: ServingSession = loaded.into_session(Some(&key)).unwrap();
    let rows = query_rows(queries, 12);
    assert_bit_identical(
        &model.session(),
        &session,
        &rows,
        &format!("locked D={dim} {kind:?} {mode:?}"),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn standard_roundtrip_is_bit_identical_at_130(
        kind in prop_oneof![Just(ModelKind::Binary), Just(ModelKind::NonBinary)],
        seed in 1u64..1000,
        queries in any::<u64>(),
    ) {
        roundtrip_standard(130, kind, seed, queries);
    }

    #[test]
    fn locked_roundtrip_is_bit_identical_at_130(
        kind in prop_oneof![Just(ModelKind::Binary), Just(ModelKind::NonBinary)],
        mode in prop_oneof![Just(DeriveMode::Cached), Just(DeriveMode::OnTheFly)],
        seed in 1u64..1000,
        queries in any::<u64>(),
    ) {
        roundtrip_locked(130, kind, mode, seed, queries);
    }
}

#[test]
fn standard_roundtrip_is_bit_identical_at_paper_scale() {
    for kind in [ModelKind::Binary, ModelKind::NonBinary] {
        roundtrip_standard(10_000, kind, 77, 78);
    }
}

#[test]
fn locked_roundtrip_is_bit_identical_at_paper_scale() {
    for kind in [ModelKind::Binary, ModelKind::NonBinary] {
        for mode in [DeriveMode::Cached, DeriveMode::OnTheFly] {
            roundtrip_locked(10_000, kind, mode, 79, 80);
        }
    }
}

/// Constructed tie: two identical class rows must resolve to the lowest
/// index on both sides of a snapshot round trip.
#[test]
fn tie_order_survives_the_roundtrip() {
    let mut rng = HvRng::from_seed(91);
    let enc = RecordEncoder::generate(&mut rng, N_FEATURES, M_LEVELS, 130).unwrap();
    let mut memory = ClassMemory::new(ModelKind::Binary, 3, 130);
    let proto = vec![1u16; N_FEATURES];
    let other = vec![3u16; N_FEATURES];
    // Classes 0 and 1 are the same prototype: every query ties between
    // them and must pick class 0.
    memory.acc_mut(0).add(&enc.encode_binary(&proto));
    memory.acc_mut(1).add(&enc.encode_binary(&proto));
    memory.acc_mut(2).add(&enc.encode_binary(&other));
    memory.rebinarize();
    let train = train_set(91);
    let model = HdcModel::from_parts(
        config(130, ModelKind::Binary, 91),
        enc,
        hdc_datasets::Discretizer::fit(&train, M_LEVELS).unwrap(),
        memory,
    );
    let snap = ModelSnapshot::from_standard_model(&model);
    let (loaded, _) = ModelSnapshot::from_bytes(&snap.to_bytes()).unwrap();
    let session = loaded.into_session(None).unwrap();
    assert_eq!(model.session().classify(&proto), 0);
    assert_eq!(session.classify(&proto), 0, "tie must break to class 0");
}

/// The registry swap itself must not perturb results: a generation
/// installed via reload answers exactly like the session it was built
/// from.
#[test]
fn swap_preserves_bit_identity() {
    use hdc_store::{ModelRegistry, RekeySource};

    let train = train_set(101);
    let cfg = config(130, ModelKind::Binary, 101);
    let mut rng = HvRng::from_seed(101);
    let enc = LockedEncoder::generate(
        &mut rng,
        &LockConfig {
            n_features: N_FEATURES,
            m_levels: M_LEVELS,
            dim: 130,
            pool_size: N_FEATURES,
            n_layers: 2,
        },
    )
    .unwrap();
    let model = HdcModel::fit_with_encoder(&cfg, enc, &train).unwrap();
    let snap = ModelSnapshot::from_locked_model(&model);
    let key = KeySegment::from_locked_encoder(model.encoder()).unwrap();
    let registry = ModelRegistry::from_snapshot(snap.clone(), Some(&key))
        .unwrap()
        .with_rekey_source(RekeySource { config: cfg, train });
    let rows = query_rows(102, 12);
    // Generation 1 (boot) ≡ the original model.
    assert_bit_identical(
        &model.session(),
        registry.current().session(),
        &rows,
        "boot generation",
    );
    // Reloading the *same* snapshot bumps the generation but not a bit
    // of the results, and the checksum is stable.
    let gen2 = registry.reload(snap, Some(&key)).unwrap();
    assert_eq!(gen2.checksum(), registry.current().checksum());
    assert_bit_identical(
        &model.session(),
        registry.current().session(),
        &rows,
        "reloaded generation",
    );
    assert_eq!(model.encoder().n_features(), N_FEATURES);
}
