//! The versioned binary snapshot format and the sealed key segment.
//!
//! A [`ModelSnapshot`] is the packed on-disk form of a trained model:
//! `u64` bit planes and `i32` rows written verbatim (plus `f32` bit
//! patterns for the quantizer bounds), so save → load is **bit
//! identical** by construction — no JSON text, no float round-trips.
//! Both deployed encoder kinds are covered:
//!
//! * **standard** — the feature [`ItemMemory`] and value [`LevelHvs`]
//!   rows are stored directly;
//! * **locked** — only the *public* material is stored (base pool,
//!   value hypervectors, class rows, key shape). The key itself lives
//!   in a separate [`KeySegment`] artifact, so a snapshot can ship to
//!   an untrusted replica without its key: without the segment the
//!   snapshot is exactly the public dump the HDLock paper's attacker
//!   already has.
//!
//! Every artifact wears the [`crate::wire::Section`] envelope (magic, version,
//! length, FNV-1a64 checksum); a corrupt or truncated file fails fast
//! before any field is interpreted, and [`ModelSnapshot::save`] is
//! atomic (write-then-rename), so a crash never leaves a torn snapshot
//! behind.

use std::path::Path;

use hdc_datasets::Discretizer;
use hdc_model::{Encoder, HdcConfig, HdcModel, ModelKind, OwnedSession, RecordEncoder};
use hdlock::{BasePool, EncodingKey, FeatureKey, LayerKey, LockedEncoder};
use hypervec::{BinaryHv, IntHv, ItemMemory, LevelHvs, ShardedClassMemory};

use crate::error::StoreError;
use crate::serving::{AnyEncoder, ServingSession};
use crate::wire::{atomic_write, ByteReader, ByteWriter, Section};

/// Envelope of model snapshots.
pub const SNAPSHOT_SECTION: Section = Section {
    magic: *b"HDSN",
    version: 1,
};

/// Envelope of sealed key segments.
pub const KEY_SECTION: Section = Section {
    magic: *b"HDKY",
    version: 1,
};

/// Encoder material stored in a snapshot.
#[derive(Debug, Clone)]
pub enum EncoderParts {
    /// Standard record encoder: stored feature + value hypervectors.
    Standard {
        /// Feature hypervectors in index order.
        features: ItemMemory,
        /// Value hypervectors in level order.
        values: LevelHvs,
    },
    /// Locked encoder: public material plus the key *shape* (the key
    /// itself ships separately as a [`KeySegment`]).
    Locked {
        /// Public base pool.
        pool: BasePool,
        /// Value hypervectors in level order.
        values: LevelHvs,
        /// Features `N` the sealed key must cover.
        n_features: usize,
        /// Key depth `L` the sealed key must have.
        n_layers: usize,
    },
}

/// A loaded (or about-to-be-saved) binary model snapshot.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    config: HdcConfig,
    discretizer: Discretizer,
    encoder: EncoderParts,
    bins: Vec<BinaryHv>,
    ints: Option<Vec<IntHv>>,
}

impl ModelSnapshot {
    /// Snapshots a trained standard model.
    #[must_use]
    pub fn from_standard_model(model: &HdcModel<RecordEncoder>) -> Self {
        ModelSnapshot {
            config: *model.config(),
            discretizer: model.discretizer().clone(),
            encoder: EncoderParts::Standard {
                features: model.encoder().features().clone(),
                values: model.encoder().values().clone(),
            },
            bins: model.memory().binary_rows().to_vec(),
            ints: int_rows(model),
        }
    }

    /// Snapshots a trained locked model — *without* its key. Pair with
    /// [`KeySegment::from_locked_encoder`] to persist the key
    /// separately.
    #[must_use]
    pub fn from_locked_model(model: &HdcModel<LockedEncoder>) -> Self {
        ModelSnapshot {
            config: *model.config(),
            discretizer: model.discretizer().clone(),
            encoder: EncoderParts::Locked {
                pool: model.encoder().pool().clone(),
                values: model.encoder().values().clone(),
                n_features: model.encoder().n_features(),
                n_layers: model.encoder().n_layers(),
            },
            bins: model.memory().binary_rows().to_vec(),
            ints: int_rows(model),
        }
    }

    /// The stored hyperparameters.
    #[must_use]
    pub fn config(&self) -> &HdcConfig {
        &self.config
    }

    /// The stored quantizer.
    #[must_use]
    pub fn discretizer(&self) -> &Discretizer {
        &self.discretizer
    }

    /// The stored encoder material.
    #[must_use]
    pub fn encoder(&self) -> &EncoderParts {
        &self.encoder
    }

    /// Whether this snapshot needs a [`KeySegment`] to serve.
    #[must_use]
    pub fn is_locked(&self) -> bool {
        matches!(self.encoder, EncoderParts::Locked { .. })
    }

    /// Hypervector dimensionality `D`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Number of classes `C`.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.bins.len()
    }

    /// Serializes into the framed, checksummed byte form.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        let (tag, kind) = (
            u8::from(self.is_locked()),
            match self.config.kind {
                ModelKind::Binary => 0u8,
                ModelKind::NonBinary => 1u8,
            },
        );
        w.put_u8(tag);
        w.put_u8(kind);
        w.put_usize(self.config.dim);
        w.put_usize(self.config.m_levels);
        w.put_usize(self.config.epochs);
        w.put_i64(i64::from(self.config.learning_rate));
        w.put_u64(self.config.seed);
        // Quantizer bounds as raw f32 bit patterns.
        w.put_usize(self.discretizer.n_features());
        w.put_usize(self.discretizer.m_levels());
        for &v in self.discretizer.mins() {
            w.put_f32(v);
        }
        for &v in self.discretizer.maxs() {
            w.put_f32(v);
        }
        match &self.encoder {
            EncoderParts::Standard { features, values } => {
                put_rows(&mut w, features.rows());
                put_rows(&mut w, values.levels());
            }
            EncoderParts::Locked {
                pool,
                values,
                n_features,
                n_layers,
            } => {
                put_rows(&mut w, pool.memory().rows());
                put_rows(&mut w, values.levels());
                w.put_usize(*n_features);
                w.put_usize(*n_layers);
            }
        }
        put_rows(&mut w, &self.bins);
        match &self.ints {
            None => w.put_u8(0),
            Some(rows) => {
                w.put_u8(1);
                for row in rows {
                    w.put_i32s(row.values());
                }
            }
        }
        SNAPSHOT_SECTION.frame(&w.into_bytes())
    }

    /// The snapshot's checksum — the value a serving `info` response
    /// reports so clients can detect a swap.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        let bytes = self.to_bytes();
        u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("framed tail"))
    }

    /// Parses and validates a framed snapshot, returning it with its
    /// verified checksum.
    ///
    /// # Errors
    ///
    /// Envelope errors ([`StoreError::BadMagic`],
    /// [`StoreError::ChecksumMismatch`], …) or validation errors for
    /// internally inconsistent payloads.
    pub fn from_bytes(bytes: &[u8]) -> Result<(Self, u64), StoreError> {
        let (payload, checksum) = SNAPSHOT_SECTION.open(bytes)?;
        let mut r = ByteReader::new(payload);
        let tag = r.get_u8()?;
        let kind = match r.get_u8()? {
            0 => ModelKind::Binary,
            1 => ModelKind::NonBinary,
            other => {
                return Err(StoreError::Malformed(format!("unknown model kind {other}")));
            }
        };
        let dim = r.get_usize()?;
        if dim == 0 {
            return Err(StoreError::Malformed("dimension is zero".to_owned()));
        }
        let m_levels = r.get_usize()?;
        let epochs = r.get_usize()?;
        let learning_rate = i32::try_from(r.get_i64()?)
            .map_err(|_| StoreError::Malformed("learning rate does not fit i32".to_owned()))?;
        let seed = r.get_u64()?;
        let config = HdcConfig {
            dim,
            m_levels,
            kind,
            epochs,
            learning_rate,
            seed,
        };
        let disc_features = r.get_usize()?;
        let disc_levels = r.get_usize()?;
        let mut mins = Vec::with_capacity(disc_features);
        for _ in 0..disc_features {
            mins.push(r.get_f32()?);
        }
        let mut maxs = Vec::with_capacity(disc_features);
        for _ in 0..disc_features {
            maxs.push(r.get_f32()?);
        }
        let discretizer = Discretizer::from_parts(mins, maxs, disc_levels)?;
        let encoder = match tag {
            0 => {
                let features = ItemMemory::from_rows(get_rows(&mut r, dim)?)?;
                let values = LevelHvs::from_levels(get_rows(&mut r, dim)?)?;
                EncoderParts::Standard { features, values }
            }
            1 => {
                let pool = BasePool::from_rows(get_rows(&mut r, dim)?)?;
                let values = LevelHvs::from_levels(get_rows(&mut r, dim)?)?;
                let n_features = r.get_usize()?;
                let n_layers = r.get_usize()?;
                if n_features == 0 {
                    return Err(StoreError::Malformed(
                        "locked snapshot covers zero features".to_owned(),
                    ));
                }
                EncoderParts::Locked {
                    pool,
                    values,
                    n_features,
                    n_layers,
                }
            }
            other => {
                return Err(StoreError::Malformed(format!(
                    "unknown encoder tag {other}"
                )));
            }
        };
        let values_m = match &encoder {
            EncoderParts::Standard { values, .. } | EncoderParts::Locked { values, .. } => {
                values.m()
            }
        };
        if values_m != m_levels {
            return Err(StoreError::Malformed(format!(
                "config says {m_levels} levels but {values_m} value hypervectors are stored"
            )));
        }
        let bins = get_rows(&mut r, dim)?;
        let ints = match r.get_u8()? {
            0 => None,
            1 => {
                let mut rows = Vec::with_capacity(bins.len());
                for _ in 0..bins.len() {
                    rows.push(IntHv::from_values(r.get_i32s(dim)?));
                }
                Some(rows)
            }
            other => {
                return Err(StoreError::Malformed(format!(
                    "unknown integer-row marker {other}"
                )));
            }
        };
        if kind == ModelKind::NonBinary && ints.is_none() {
            return Err(StoreError::Malformed(
                "non-binary snapshot is missing its integer class rows".to_owned(),
            ));
        }
        if r.remaining() != 0 {
            return Err(StoreError::Malformed(format!(
                "{} unread payload bytes",
                r.remaining()
            )));
        }
        Ok((
            ModelSnapshot {
                config,
                discretizer,
                encoder,
                bins,
                ints,
            },
            checksum,
        ))
    }

    /// Atomically saves the snapshot (write to a temporary sibling,
    /// then rename), returning its checksum.
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors.
    pub fn save(&self, path: &Path) -> Result<u64, StoreError> {
        let bytes = self.to_bytes();
        let checksum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("tail"));
        atomic_write(path, &bytes)?;
        Ok(checksum)
    }

    /// Loads and validates a snapshot file, returning it with its
    /// verified checksum.
    ///
    /// # Errors
    ///
    /// File I/O errors plus everything [`ModelSnapshot::from_bytes`]
    /// reports.
    pub fn load(path: &Path) -> Result<(Self, u64), StoreError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    /// Assembles the serving session this snapshot describes. Locked
    /// snapshots need their sealed key segment; standard snapshots must
    /// not be given one (catching key/snapshot mix-ups).
    ///
    /// The resulting session is bit-identical to the pre-save session:
    /// the packed class planes are the stored words, and locked feature
    /// hypervectors re-derive deterministically from the key.
    ///
    /// # Errors
    ///
    /// [`StoreError::KeyRequired`] / [`StoreError::KeyMismatch`] for
    /// key problems, validation errors for inconsistent material.
    pub fn into_session(self, key: Option<&KeySegment>) -> Result<ServingSession, StoreError> {
        let kind = self.config.kind;
        let dim = self.config.dim;
        let encoder = match self.encoder {
            EncoderParts::Standard { features, values } => {
                if let Some(seg) = key {
                    return Err(StoreError::KeyMismatch(format!(
                        "standard snapshot does not take a key segment (got one for {} features)",
                        seg.key().n_features()
                    )));
                }
                AnyEncoder::Standard(RecordEncoder::from_parts(features, values)?)
            }
            EncoderParts::Locked {
                pool,
                values,
                n_features,
                n_layers,
            } => {
                let seg = key.ok_or(StoreError::KeyRequired)?;
                let k = seg.key();
                if k.n_features() != n_features {
                    return Err(StoreError::KeyMismatch(format!(
                        "snapshot expects a key for {n_features} features, segment covers {}",
                        k.n_features()
                    )));
                }
                if k.dim() != dim {
                    return Err(StoreError::KeyMismatch(format!(
                        "snapshot dimension {dim}, key dimension {}",
                        k.dim()
                    )));
                }
                if k.pool_size() != pool.len() {
                    return Err(StoreError::KeyMismatch(format!(
                        "snapshot pool has {} bases, key indexes {}",
                        pool.len(),
                        k.pool_size()
                    )));
                }
                if k.n_layers() != n_layers {
                    return Err(StoreError::KeyMismatch(format!(
                        "snapshot expects key depth {n_layers}, segment has {}",
                        k.n_layers()
                    )));
                }
                AnyEncoder::Locked(LockedEncoder::from_parts(pool, values, k.clone())?)
            }
        };
        if encoder.dim() != dim {
            return Err(StoreError::Malformed(format!(
                "encoder material has dimension {}, header says {dim}",
                encoder.dim()
            )));
        }
        let mut sharded = ShardedClassMemory::from_rows(&self.bins)?;
        if let Some(ints) = &self.ints {
            sharded.set_int_rows(ints)?;
        }
        Ok(OwnedSession::from_packed(encoder, kind, sharded))
    }
}

/// Extracts the integer class rows when the model kind needs them.
fn int_rows<E: Encoder + Sync>(model: &HdcModel<E>) -> Option<Vec<IntHv>> {
    match model.config().kind {
        ModelKind::Binary => None,
        ModelKind::NonBinary => Some(
            (0..model.memory().n_classes())
                .map(|j| model.memory().class_int(j).clone())
                .collect(),
        ),
    }
}

/// Writes a row list: count, then each row's packed words verbatim.
fn put_rows(w: &mut ByteWriter, rows: &[BinaryHv]) {
    w.put_usize(rows.len());
    for row in rows {
        w.put_words(row.bits().words());
    }
}

/// Reads a row list of `dim`-bit rows.
fn get_rows(r: &mut ByteReader<'_>, dim: usize) -> Result<Vec<BinaryHv>, StoreError> {
    let count = r.get_usize()?;
    let words_per_row = dim.div_ceil(64);
    let mut rows = Vec::with_capacity(count);
    for _ in 0..count {
        let words = r.get_words(words_per_row)?;
        rows.push(BinaryHv::from_bits(
            hypervec::bitvec::BitWords::try_from_words(words, dim)?,
        ));
    }
    Ok(rows)
}

/// The sealed key segment: the `N × L` (base index, rotation) mapping
/// HDLock keeps in tamper-proof memory, as a separate artifact so the
/// model snapshot can ship without it.
///
/// Loading a segment does **not** unseal anything by itself — it only
/// becomes usable when [`ModelSnapshot::into_session`] seals it into a
/// fresh [`KeyVault`](hdlock::KeyVault) inside the reconstructed locked
/// encoder.
#[derive(Debug, Clone)]
pub struct KeySegment {
    key: EncodingKey,
}

impl KeySegment {
    /// Wraps an explicit key.
    #[must_use]
    pub fn from_key(key: EncodingKey) -> Self {
        KeySegment { key }
    }

    /// Exports the key of a locked encoder through one audited,
    /// privileged vault read.
    ///
    /// # Errors
    ///
    /// [`StoreError::Lock`] when the vault was already destroyed.
    pub fn from_locked_encoder(encoder: &LockedEncoder) -> Result<Self, StoreError> {
        let key = encoder.vault().with_key(EncodingKey::clone)?;
        Ok(KeySegment { key })
    }

    /// The key material (the loading path into
    /// [`ModelSnapshot::into_session`]).
    #[must_use]
    pub fn key(&self) -> &EncodingKey {
        &self.key
    }

    /// Serializes into the framed, checksummed byte form.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_usize(self.key.dim());
        w.put_usize(self.key.pool_size());
        w.put_usize(self.key.n_features());
        for fk in self.key.features() {
            w.put_u16(u16::try_from(fk.n_layers()).expect("layer depth fits u16"));
            for lk in fk.layers() {
                w.put_u32(u32::try_from(lk.base_index).expect("pool index fits u32"));
                w.put_u32(u32::try_from(lk.rotation).expect("rotation fits u32"));
            }
        }
        KEY_SECTION.frame(&w.into_bytes())
    }

    /// Parses and validates a framed key segment.
    ///
    /// # Errors
    ///
    /// Envelope errors, or [`StoreError::Lock`] when the decoded key
    /// fails [`EncodingKey::from_feature_keys`] range validation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let (payload, _) = KEY_SECTION.open(bytes)?;
        let mut r = ByteReader::new(payload);
        let dim = r.get_usize()?;
        let pool_size = r.get_usize()?;
        let n_features = r.get_usize()?;
        let mut features = Vec::with_capacity(n_features);
        for _ in 0..n_features {
            let n_layers = usize::from(r.get_u16()?);
            let mut layers = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                let base_index = r.get_u32()? as usize;
                let rotation = r.get_u32()? as usize;
                layers.push(LayerKey {
                    base_index,
                    rotation,
                });
            }
            features.push(FeatureKey::new(layers));
        }
        if r.remaining() != 0 {
            return Err(StoreError::Malformed(format!(
                "{} unread key-segment bytes",
                r.remaining()
            )));
        }
        let key = EncodingKey::from_feature_keys(features, pool_size, dim)?;
        Ok(KeySegment { key })
    }

    /// Atomically saves the segment.
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        atomic_write(path, &self.to_bytes())
    }

    /// Loads and validates a key segment file.
    ///
    /// # Errors
    ///
    /// File I/O errors plus everything [`KeySegment::from_bytes`]
    /// reports.
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_datasets::Benchmark;
    use hdlock::LockConfig;
    use hypervec::HvRng;

    fn standard_model(dim: usize) -> HdcModel<RecordEncoder> {
        let (train, _) = Benchmark::Pamap.generate(0.03, 41).unwrap();
        let config = HdcConfig::paper_default().with_dim(dim).with_seed(41);
        HdcModel::fit_standard(&config, &train).unwrap()
    }

    fn locked_model(dim: usize) -> HdcModel<LockedEncoder> {
        let (train, _) = Benchmark::Pamap.generate(0.03, 42).unwrap();
        let config = HdcConfig::paper_default().with_dim(dim).with_seed(42);
        let mut rng = HvRng::from_seed(42);
        let enc = LockedEncoder::generate(
            &mut rng,
            &LockConfig {
                n_features: train.n_features(),
                m_levels: config.m_levels,
                dim,
                pool_size: train.n_features(),
                n_layers: 2,
            },
        )
        .unwrap();
        HdcModel::fit_with_encoder(&config, enc, &train).unwrap()
    }

    #[test]
    fn standard_snapshot_roundtrips_bit_identically() {
        let model = standard_model(512);
        let snap = ModelSnapshot::from_standard_model(&model);
        let bytes = snap.to_bytes();
        let (loaded, checksum) = ModelSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(checksum, snap.checksum());
        assert!(!loaded.is_locked());
        let session = loaded.into_session(None).unwrap();
        let reference = model.session();
        let rows: Vec<Vec<u16>> = (0..10)
            .map(|s| {
                (0..reference.n_features())
                    .map(|i| ((s + i) % reference.m_levels()) as u16)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let want = hdc_model::ClassifySession::scores_batch(&reference, &refs);
        let got = hdc_model::ClassifySession::scores_batch(&session, &refs);
        assert_eq!(got.best_rows(), want.best_rows());
        for q in 0..refs.len() {
            for (g, w) in got.scores(q).iter().zip(want.scores(q)) {
                assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }

    #[test]
    fn locked_snapshot_requires_its_key() {
        let model = locked_model(256);
        let snap = ModelSnapshot::from_locked_model(&model);
        assert!(snap.is_locked());
        // Without the key segment the snapshot cannot serve.
        assert!(matches!(
            snap.clone().into_session(None),
            Err(StoreError::KeyRequired)
        ));
        // With it, the rebuilt session matches the original bit-for-bit.
        let seg = KeySegment::from_locked_encoder(model.encoder()).unwrap();
        let seg = KeySegment::from_bytes(&seg.to_bytes()).unwrap();
        let session = snap.into_session(Some(&seg)).unwrap();
        let reference = model.session();
        let row: Vec<u16> = (0..reference.n_features())
            .map(|i| (i % 4) as u16)
            .collect();
        assert_eq!(
            hdc_model::ClassifySession::classify(&session, &row),
            reference.classify(&row)
        );
        assert!(session.encoder().is_locked());
    }

    #[test]
    fn wrong_key_shape_is_rejected() {
        let model = locked_model(256);
        let snap = ModelSnapshot::from_locked_model(&model);
        let mut rng = HvRng::from_seed(9);
        // Right dimension and pool size, wrong feature count.
        let other = EncodingKey::random(&mut rng, 3, 2, model.encoder().pool().len(), 256).unwrap();
        let err = snap
            .clone()
            .into_session(Some(&KeySegment::from_key(other)))
            .unwrap_err();
        assert!(matches!(err, StoreError::KeyMismatch(_)), "{err}");
        // A standard snapshot must refuse any key segment.
        let std_model = standard_model(256);
        let std_snap = ModelSnapshot::from_standard_model(&std_model);
        let seg = KeySegment::from_locked_encoder(model.encoder()).unwrap();
        assert!(matches!(
            std_snap.into_session(Some(&seg)),
            Err(StoreError::KeyMismatch(_))
        ));
    }

    #[test]
    fn corruption_fails_fast() {
        let model = standard_model(256);
        let snap = ModelSnapshot::from_standard_model(&model);
        let mut bytes = snap.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            ModelSnapshot::from_bytes(&bytes),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        // Key segments are protected the same way.
        let locked = locked_model(256);
        let seg = KeySegment::from_locked_encoder(locked.encoder()).unwrap();
        let mut kb = seg.to_bytes();
        let mid = kb.len() / 2;
        kb[mid] ^= 0x01;
        assert!(KeySegment::from_bytes(&kb).is_err());
    }

    #[test]
    fn atomic_save_load_roundtrip() {
        let dir = std::env::temp_dir().join("hdc_store_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.hdsn");
        let model = standard_model(130);
        let snap = ModelSnapshot::from_standard_model(&model);
        let saved_checksum = snap.save(&path).unwrap();
        let (loaded, loaded_checksum) = ModelSnapshot::load(&path).unwrap();
        assert_eq!(saved_checksum, loaded_checksum);
        assert_eq!(loaded.to_bytes(), snap.to_bytes());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn nonbinary_snapshot_carries_int_rows() {
        let (train, _) = Benchmark::Pamap.generate(0.03, 43).unwrap();
        let config = HdcConfig::paper_default()
            .with_dim(130)
            .with_kind(ModelKind::NonBinary)
            .with_seed(43);
        let model = HdcModel::fit_standard(&config, &train).unwrap();
        let snap = ModelSnapshot::from_standard_model(&model);
        let (loaded, _) = ModelSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        let session = loaded.into_session(None).unwrap();
        assert!(hdc_model::ClassifySession::memory(&session).has_int_rows());
        let reference = model.session();
        let row: Vec<u16> = (0..reference.n_features()).map(|_| 1u16).collect();
        assert_eq!(
            hdc_model::ClassifySession::classify(&session, &row),
            reference.classify(&row)
        );
    }
}
