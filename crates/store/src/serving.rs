//! The encoder shape a registry generation serves.
//!
//! A registry swaps between generations that may be standard *or*
//! locked models (a `reload` can change the protection story, not just
//! the weights). [`AnyEncoder`] is the closed sum of the two deployed
//! encoder kinds, forwarding every [`Encoder`] entry point — including
//! the specialized batch paths, so a registry-served model loses none
//! of the word-parallel engine.

use hdc_model::{Encoder, OwnedSession, RecordEncoder};
use hdlock::{KeyVault, LockedEncoder};
use hypervec::{BinaryHv, IntHv};

/// A deployed encoder: standard (stored feature hypervectors) or
/// HDLock-locked (vault-keyed derivation).
#[derive(Debug)]
pub enum AnyEncoder {
    /// Standard record encoder.
    Standard(RecordEncoder),
    /// HDLock locked encoder.
    Locked(LockedEncoder),
}

impl AnyEncoder {
    /// The vault, when this is a locked encoder — `None` for standard
    /// models (nothing to seal).
    #[must_use]
    pub fn vault(&self) -> Option<&KeyVault> {
        match self {
            AnyEncoder::Standard(_) => None,
            AnyEncoder::Locked(enc) => Some(enc.vault()),
        }
    }

    /// The locked encoder, when this is one.
    #[must_use]
    pub fn as_locked(&self) -> Option<&LockedEncoder> {
        match self {
            AnyEncoder::Standard(_) => None,
            AnyEncoder::Locked(enc) => Some(enc),
        }
    }

    /// Whether this encoder derives its feature hypervectors from a
    /// sealed key.
    #[must_use]
    pub fn is_locked(&self) -> bool {
        matches!(self, AnyEncoder::Locked(_))
    }
}

impl Encoder for AnyEncoder {
    fn n_features(&self) -> usize {
        match self {
            AnyEncoder::Standard(e) => e.n_features(),
            AnyEncoder::Locked(e) => e.n_features(),
        }
    }

    fn m_levels(&self) -> usize {
        match self {
            AnyEncoder::Standard(e) => e.m_levels(),
            AnyEncoder::Locked(e) => e.m_levels(),
        }
    }

    fn dim(&self) -> usize {
        match self {
            AnyEncoder::Standard(e) => e.dim(),
            AnyEncoder::Locked(e) => e.dim(),
        }
    }

    fn encode_int(&self, levels: &[u16]) -> IntHv {
        match self {
            AnyEncoder::Standard(e) => e.encode_int(levels),
            AnyEncoder::Locked(e) => e.encode_int(levels),
        }
    }

    fn encode_binary(&self, levels: &[u16]) -> BinaryHv {
        match self {
            AnyEncoder::Standard(e) => e.encode_binary(levels),
            AnyEncoder::Locked(e) => e.encode_binary(levels),
        }
    }

    // The batch entry points forward explicitly: the default trait
    // bodies would encode row-by-row and silently lose the bound-pair
    // cache / single-vault-read batch strategies of the inner encoders.
    fn encode_batch_binary(&self, rows: &[&[u16]]) -> Vec<BinaryHv> {
        match self {
            AnyEncoder::Standard(e) => e.encode_batch_binary(rows),
            AnyEncoder::Locked(e) => e.encode_batch_binary(rows),
        }
    }

    fn encode_batch_int(&self, rows: &[&[u16]]) -> Vec<IntHv> {
        match self {
            AnyEncoder::Standard(e) => e.encode_batch_int(rows),
            AnyEncoder::Locked(e) => e.encode_batch_int(rows),
        }
    }

    fn feature_hv(&self, i: usize) -> BinaryHv {
        match self {
            AnyEncoder::Standard(e) => e.feature_hv(i),
            AnyEncoder::Locked(e) => e.feature_hv(i),
        }
    }

    fn value_hv(&self, v: usize) -> BinaryHv {
        match self {
            AnyEncoder::Standard(e) => e.value_hv(v),
            AnyEncoder::Locked(e) => e.value_hv(v),
        }
    }

    fn is_hardened(&self) -> bool {
        match self {
            AnyEncoder::Standard(_) => false,
            AnyEncoder::Locked(e) => e.is_hardened(),
        }
    }
}

/// The session type a registry generation owns: either deployed encoder
/// kind over the packed class memory.
pub type ServingSession = OwnedSession<AnyEncoder>;

#[cfg(test)]
mod tests {
    use super::*;
    use hdlock::LockConfig;
    use hypervec::HvRng;

    #[test]
    fn any_encoder_is_transparent_for_both_kinds() {
        let mut rng = HvRng::from_seed(5);
        let standard = RecordEncoder::generate(&mut rng, 6, 4, 512).unwrap();
        let locked = LockedEncoder::generate(
            &mut rng,
            &LockConfig {
                n_features: 6,
                m_levels: 4,
                dim: 512,
                pool_size: 12,
                n_layers: 2,
            },
        )
        .unwrap();
        let rows: Vec<Vec<u16>> = (0..5)
            .map(|s| (0..6).map(|i| ((s + i) % 4) as u16).collect())
            .collect();
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();

        let want_std: Vec<BinaryHv> = refs.iter().map(|r| standard.encode_binary(r)).collect();
        let want_lock: Vec<IntHv> = refs.iter().map(|r| locked.encode_int(r)).collect();

        let any_std = AnyEncoder::Standard(standard);
        let any_lock = AnyEncoder::Locked(locked);
        assert!(!any_std.is_locked());
        assert!(any_std.vault().is_none());
        assert!(any_lock.is_locked());
        assert!(any_lock.vault().is_some());
        assert_eq!(any_std.n_features(), 6);
        assert_eq!(any_lock.dim(), 512);

        assert_eq!(any_std.encode_batch_binary(&refs), want_std);
        assert_eq!(any_lock.encode_batch_int(&refs), want_lock);
        assert_eq!(any_std.feature_hv(0).dim(), 512);
        assert_eq!(any_lock.value_hv(1).dim(), 512);
    }
}
