//! Error type for snapshot (de)serialization and registry operations.

use std::fmt;

use hdc_datasets::DataError;
use hdlock::LockError;
use hypervec::HvError;

/// Errors from snapshot encoding/decoding, file I/O and registry swaps.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The input does not start with the expected magic bytes.
    BadMagic {
        /// What the stream expected (`"HDSN"` / `"HDKY"`).
        expected: [u8; 4],
        /// What the first four bytes actually were.
        found: [u8; 4],
    },
    /// The format version is newer than this reader understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Newest version this build reads.
        supported: u16,
    },
    /// The input ended before a field could be read.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// The payload checksum does not match — the file is corrupt (or
    /// truncated past the header). Nothing was loaded.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the bytes actually present.
        found: u64,
    },
    /// The bytes decoded but describe an internally inconsistent model.
    Malformed(String),
    /// A locked snapshot was loaded without its sealed key segment.
    KeyRequired,
    /// The key segment does not belong to this snapshot (shape
    /// disagreement).
    KeyMismatch(String),
    /// A registry operation was invalid in the current state.
    Registry(String),
    /// Hypervector-layer validation failed.
    Hv(HvError),
    /// Lock-layer validation failed.
    Lock(LockError),
    /// Quantizer validation failed.
    Data(DataError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            StoreError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than supported version {supported}"
            ),
            StoreError::Truncated { needed, remaining } => write!(
                f,
                "snapshot truncated: next field needs {needed} bytes, {remaining} remain"
            ),
            StoreError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot corrupt: checksum {found:#018x} does not match recorded {expected:#018x}"
            ),
            StoreError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            StoreError::KeyRequired => write!(
                f,
                "locked snapshot needs its sealed key segment to build a serving session"
            ),
            StoreError::KeyMismatch(msg) => write!(f, "key segment mismatch: {msg}"),
            StoreError::Registry(msg) => write!(f, "registry operation failed: {msg}"),
            StoreError::Hv(e) => write!(f, "snapshot validation failed: {e}"),
            StoreError::Lock(e) => write!(f, "snapshot validation failed: {e}"),
            StoreError::Data(e) => write!(f, "snapshot validation failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Hv(e) => Some(e),
            StoreError::Lock(e) => Some(e),
            StoreError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<HvError> for StoreError {
    fn from(e: HvError) -> Self {
        StoreError::Hv(e)
    }
}

impl From<LockError> for StoreError {
    fn from(e: LockError) -> Self {
        StoreError::Lock(e)
    }
}

impl From<DataError> for StoreError {
    fn from(e: DataError) -> Self {
        StoreError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = StoreError::ChecksumMismatch {
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("corrupt"));
        assert!(StoreError::KeyRequired.to_string().contains("sealed key"));
        let e = StoreError::BadMagic {
            expected: *b"HDSN",
            found: *b"oops",
        };
        assert!(e.to_string().contains("HDSN"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StoreError>();
    }
}
