//! # hdc-store — persistence & registry for deployed HDC models
//!
//! The operational layer HDLock's protection story rests on: the
//! locked encoder is only as safe as the key hygiene around it, so the
//! deployment needs snapshots that ship *without* their key, a rotation
//! path when compromise is suspected, and a serving layer that can swap
//! models under live traffic. This crate provides all three.
//!
//! ## Persistence & registry
//!
//! * **Binary snapshots** ([`snapshot`]) — a versioned, checksummed
//!   format that writes the model's packed `u64` bit planes, `i32`
//!   class rows and `f32` quantizer bounds *verbatim* (magic + format
//!   version + dims + FNV-1a64 checksum). No JSON, no float text
//!   round-trips: a loaded session is bit-identical to the saved one —
//!   same scores, same argmax, same tie order — at any dimension,
//!   word-aligned or not. Saves are atomic (write-then-rename) and
//!   corrupt or truncated files fail fast with
//!   [`StoreError::ChecksumMismatch`] before a single field is
//!   interpreted.
//! * **Sealed key segments** ([`KeySegment`]) — a locked model's
//!   snapshot stores only its *public* material (base pool, value
//!   hypervectors, class rows, key shape). The `N × L` key mapping is a
//!   separate, independently-loadable artifact: a snapshot that ships
//!   without its segment is exactly the public memory dump the HDLock
//!   paper's attacker already has, and
//!   [`ModelSnapshot::into_session`] refuses to serve it
//!   ([`StoreError::KeyRequired`]).
//! * **The registry** ([`registry`]) — [`ModelRegistry`] owns
//!   generations of [`OwnedSession`](hdc_model::OwnedSession)s behind
//!   an atomic pointer swap. Readers grab the current generation with
//!   one refcount bump and finish their batch on it even if a swap
//!   lands mid-batch; `reload` (new snapshot), `rekey` (fresh key →
//!   re-derived encoder + retrained memory, old vault `destroy()`ed)
//!   and `rollback` all build the new generation entirely outside the
//!   swap lock, so in-flight traffic never waits on a load.
//! * **Serving shape** ([`serving`]) — [`AnyEncoder`] is the closed
//!   sum of the deployed encoder kinds (standard / locked), so one
//!   registry can swap between protection stories without the serving
//!   layer caring.
//!
//! The serving layer (`hdc_serve`) drives the registry through admin
//! wire requests (`{"reload":…}`, `{"rekey":…}`, `{"stats":true}`) and
//! reports the active generation id + checksum in its `info` response
//! so clients can detect a swap.
//!
//! ## Example
//!
//! ```
//! use hdc_datasets::Benchmark;
//! use hdc_model::{ClassifySession, HdcConfig, HdcModel};
//! use hdc_store::{KeySegment, ModelRegistry, ModelSnapshot, RekeySource};
//! use hdlock::{LockConfig, LockedEncoder};
//! use hypervec::HvRng;
//!
//! // Train a locked model…
//! let (train, _) = Benchmark::Pamap.generate(0.03, 7)?;
//! let config = HdcConfig::paper_default().with_dim(512).with_seed(7);
//! let mut rng = HvRng::from_seed(7);
//! let encoder = LockedEncoder::generate(&mut rng, &LockConfig {
//!     n_features: train.n_features(),
//!     m_levels: config.m_levels,
//!     dim: config.dim,
//!     pool_size: train.n_features(),
//!     n_layers: 2,
//! })?;
//! let model = HdcModel::fit_with_encoder(&config, encoder, &train)?;
//!
//! // …snapshot it (key ships separately)…
//! let snapshot = ModelSnapshot::from_locked_model(&model);
//! let key = KeySegment::from_locked_encoder(model.encoder())?;
//!
//! // …and serve it from a registry that can rotate the key live.
//! let registry = ModelRegistry::from_snapshot(snapshot, Some(&key))?
//!     .with_rekey_source(RekeySource { config, train });
//! let generation = registry.current();
//! assert_eq!(generation.id(), 1);
//! let rekeyed = registry.rekey(2023)?;
//! assert_eq!(rekeyed.id(), 2);
//! assert!(!generation.session().encoder().vault().unwrap().is_sealed());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod registry;
pub mod serving;
pub mod snapshot;
pub mod stage;
pub mod wire;

pub use error::StoreError;
pub use registry::{Generation, ModelRegistry, RegistryStats, RekeySource};
pub use serving::{AnyEncoder, ServingSession};
pub use snapshot::{EncoderParts, KeySegment, ModelSnapshot, KEY_SECTION, SNAPSHOT_SECTION};
pub use stage::{SnapshotStage, StagedSnapshot};
pub use wire::{fnv1a64, fnv1a64_update};
