//! The model registry: generations of serving sessions behind an
//! atomic swap.
//!
//! A [`ModelRegistry`] owns the *currently serving* generation plus a
//! short rollback history. The swap discipline is the whole point:
//!
//! * **Readers never wait on a load.** The current generation lives in
//!   an `Arc` behind a mutex that is only ever held for a pointer
//!   clone or a pointer swap — never while a snapshot is parsed, a key
//!   re-derived or a model retrained. All of that happens outside the
//!   critical section, so in-flight traffic keeps classifying against
//!   the old generation until the new one is fully built.
//! * **Generations outlive the swap.** A batch that grabbed generation
//!   `G` finishes on `G` even if `G+1` lands mid-batch; `G` is freed
//!   when its last `Arc` drops.
//! * **Rekeying freezes the old vault.** [`ModelRegistry::rekey`]
//!   derives a fresh [`EncodingKey`](hdlock::EncodingKey), retrains the
//!   class memory under it, swaps, and then `destroy()`s the replaced
//!   generation's vault — the old key's read path is frozen even though
//!   the old generation may still be draining (its cached feature
//!   hypervectors keep serving; only privileged key reads die).

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hdc_datasets::Dataset;
use hdc_model::{HdcConfig, HdcModel, OwnedSession};
use hypervec::HvRng;
use parking_lot::Mutex;

use crate::error::StoreError;
use crate::serving::{AnyEncoder, ServingSession};
use crate::snapshot::{KeySegment, ModelSnapshot};

/// Rollback generations kept after a swap.
const ROLLBACK_DEPTH: usize = 4;

/// One immutable serving generation: a session plus the identity a
/// client can observe through the wire (`generation` id and snapshot
/// `checksum` in the `info` response).
#[derive(Debug)]
pub struct Generation {
    id: u64,
    checksum: u64,
    created: std::time::Instant,
    session: ServingSession,
}

impl Generation {
    /// Monotonically increasing generation id (1 is the boot model).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Checksum of the snapshot this generation was built from (or
    /// would serialize to, for rekeyed generations born in memory).
    #[must_use]
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// The serving session.
    #[must_use]
    pub fn session(&self) -> &ServingSession {
        &self.session
    }

    /// Whether this generation serves a locked model.
    #[must_use]
    pub fn is_locked(&self) -> bool {
        self.session.encoder().is_locked()
    }

    /// Whether this generation serves in constant-time hardened mode
    /// (see [`hdc_model::Encoder::is_hardened`]).
    #[must_use]
    pub fn is_hardened(&self) -> bool {
        use hdc_model::Encoder as _;
        self.session.encoder().is_hardened()
    }

    /// Time since this generation was installed — how long the model
    /// has been serving (telemetry reports it on swap events, where a
    /// short-lived generation flags swap churn).
    #[must_use]
    pub fn age(&self) -> std::time::Duration {
        self.created.elapsed()
    }
}

/// What [`ModelRegistry::rekey`] retrains with: the hyperparameters and
/// the training set the deployment owns.
#[derive(Debug)]
pub struct RekeySource {
    /// Hyperparameters for retraining under the fresh key.
    pub config: HdcConfig,
    /// Training data (the model owner's, per the paper's threat model).
    pub train: Dataset,
}

/// Counters and identity reported by the `{"stats":true}` admin
/// request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryStats {
    /// Currently serving generation id.
    pub generation: u64,
    /// Currently serving snapshot checksum.
    pub checksum: u64,
    /// Whether the current generation is a locked model.
    pub locked: bool,
    /// Whether the current generation serves in constant-time hardened
    /// mode.
    pub hardened: bool,
    /// Completed `reload` swaps.
    pub reloads: u64,
    /// Completed `rekey` swaps.
    pub rekeys: u64,
    /// Completed rollbacks.
    pub rollbacks: u64,
}

/// Owner of the serving generations; see the module docs for the swap
/// discipline.
#[derive(Debug)]
pub struct ModelRegistry {
    current: Mutex<Arc<Generation>>,
    previous: Mutex<Vec<Arc<Generation>>>,
    next_id: AtomicU64,
    reloads: AtomicU64,
    rekeys: AtomicU64,
    rollbacks: AtomicU64,
    rekey_source: Option<RekeySource>,
}

impl ModelRegistry {
    /// Boots a registry serving `session` as generation 1.
    #[must_use]
    pub fn new(session: ServingSession, checksum: u64) -> Self {
        ModelRegistry {
            current: Mutex::new(Arc::new(Generation {
                id: 1,
                checksum,
                created: std::time::Instant::now(),
                session,
            })),
            previous: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(2),
            reloads: AtomicU64::new(0),
            rekeys: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            rekey_source: None,
        }
    }

    /// Boots a registry from a snapshot (plus its key segment for
    /// locked snapshots).
    ///
    /// # Errors
    ///
    /// Everything [`ModelSnapshot::into_session`] reports.
    pub fn from_snapshot(
        snapshot: ModelSnapshot,
        key: Option<&KeySegment>,
    ) -> Result<Self, StoreError> {
        let checksum = snapshot.checksum();
        Ok(Self::new(snapshot.into_session(key)?, checksum))
    }

    /// Attaches the retraining source that makes [`ModelRegistry::rekey`]
    /// available.
    #[must_use]
    pub fn with_rekey_source(mut self, source: RekeySource) -> Self {
        self.rekey_source = Some(source);
        self
    }

    /// The currently serving generation. Cost: one mutex-guarded `Arc`
    /// clone (a refcount bump) — cheap enough for every batch to call.
    #[must_use]
    pub fn current(&self) -> Arc<Generation> {
        Arc::clone(&self.current.lock())
    }

    /// Builds a generation record and swaps it in, retiring the old
    /// generation to the rollback stack. Returns the new generation
    /// paired with the generation it *actually* replaced (which may
    /// differ from any generation the caller captured earlier, if
    /// another swap raced this one).
    fn install(
        &self,
        session: ServingSession,
        checksum: u64,
    ) -> (Arc<Generation>, Arc<Generation>) {
        let generation = Arc::new(Generation {
            id: self.next_id.fetch_add(1, Ordering::SeqCst),
            checksum,
            created: std::time::Instant::now(),
            session,
        });
        let replaced = {
            let mut current = self.current.lock();
            std::mem::replace(&mut *current, Arc::clone(&generation))
        };
        let mut previous = self.previous.lock();
        previous.push(Arc::clone(&replaced));
        if previous.len() > ROLLBACK_DEPTH {
            previous.remove(0);
        }
        (generation, replaced)
    }

    /// Swaps in a new generation built from a snapshot (hot reload).
    /// The session is assembled entirely before the swap; traffic on
    /// the old generation is never blocked.
    ///
    /// # Errors
    ///
    /// Everything [`ModelSnapshot::into_session`] reports. On error the
    /// serving generation is untouched.
    pub fn reload(
        &self,
        snapshot: ModelSnapshot,
        key: Option<&KeySegment>,
    ) -> Result<Arc<Generation>, StoreError> {
        let checksum = snapshot.checksum();
        self.reload_with_checksum(snapshot, key, checksum)
    }

    /// [`ModelRegistry::reload`] with a checksum the caller already
    /// verified (the file-load path), avoiding a re-serialization of
    /// the whole snapshot just to recover its trailing 8 bytes.
    fn reload_with_checksum(
        &self,
        snapshot: ModelSnapshot,
        key: Option<&KeySegment>,
        checksum: u64,
    ) -> Result<Arc<Generation>, StoreError> {
        let session = snapshot.into_session(key)?;
        let (generation, _) = self.install(session, checksum);
        self.reloads.fetch_add(1, Ordering::Relaxed);
        Ok(generation)
    }

    /// Loads snapshot (and optional key segment) files and hot-reloads
    /// them — the admin wire request's path.
    ///
    /// # Errors
    ///
    /// File and format errors from loading, then everything
    /// [`ModelRegistry::reload`] reports.
    pub fn reload_files(
        &self,
        snapshot: &Path,
        key: Option<&Path>,
    ) -> Result<Arc<Generation>, StoreError> {
        let (snap, checksum) = ModelSnapshot::load(snapshot)?;
        let seg = match key {
            Some(path) => Some(KeySegment::load(path)?),
            None => None,
        };
        self.reload_with_checksum(snap, seg.as_ref(), checksum)
    }

    /// Re-keys the current locked generation: fresh random key from
    /// `seed` (same depth, same public pool and values), class memory
    /// retrained from the attached [`RekeySource`], atomic swap, old
    /// generation's vault destroyed.
    ///
    /// Deterministic: rekeying with seed `s` produces a model
    /// bit-identical to a cold start under
    /// `EncodingKey::random(HvRng::from_seed(s), …)` with the same
    /// pool, values and training data.
    ///
    /// # Errors
    ///
    /// [`StoreError::Registry`] when the current generation is not a
    /// locked model or no rekey source is attached; retraining errors.
    /// On error the serving generation is untouched.
    pub fn rekey(&self, seed: u64) -> Result<Arc<Generation>, StoreError> {
        let source = self.rekey_source.as_ref().ok_or_else(|| {
            StoreError::Registry("rekey needs a training source (with_rekey_source)".to_owned())
        })?;
        let old = self.current();
        let locked = old.session().encoder().as_locked().ok_or_else(|| {
            StoreError::Registry("current generation is not a locked model".to_owned())
        })?;
        // Everything expensive happens here, outside any lock: key
        // derivation, retraining, packing.
        let mut rng = HvRng::from_seed(seed);
        let fresh = locked.rekeyed(&mut rng)?;
        let model = HdcModel::fit_with_encoder(&source.config, fresh, &source.train)
            .map_err(|e| StoreError::Registry(format!("retraining under new key failed: {e}")))?;
        let checksum = ModelSnapshot::from_locked_model(&model).checksum();
        let (_, encoder, _, memory) = model.into_parts();
        let session = OwnedSession::new(AnyEncoder::Locked(encoder), &memory);
        // Freeze the compromised key (`old`, the generation this rekey
        // was asked to rotate away from) *and* the key of whatever
        // generation the swap actually retired — they differ when a
        // racing swap replaced `old` first, and leaving either vault
        // sealed would keep a superseded key readable. Privileged reads
        // on both fail from here on; retired generations still drain
        // cached-mode traffic (their derived feature hypervectors are
        // data, not key reads).
        let (generation, replaced) = self.install(session, checksum);
        for superseded in [&old, &replaced] {
            if let Some(vault) = superseded.session().encoder().vault() {
                vault.destroy();
            }
        }
        self.rekeys.fetch_add(1, Ordering::Relaxed);
        Ok(generation)
    }

    /// Swaps back to the most recently retired generation, discarding
    /// the one currently serving.
    ///
    /// After a `rekey`, the retired generation's vault has been
    /// destroyed: rolling back to it restores *serving* (cached-mode
    /// inference needs no vault reads) but not privileged key access —
    /// re-load the snapshot + key segment to fully restore a rekeyed-
    /// away generation.
    ///
    /// # Errors
    ///
    /// [`StoreError::Registry`] when no retired generation remains.
    pub fn rollback(&self) -> Result<Arc<Generation>, StoreError> {
        let target = self
            .previous
            .lock()
            .pop()
            .ok_or_else(|| StoreError::Registry("no generation to roll back to".to_owned()))?;
        {
            let mut current = self.current.lock();
            *current = Arc::clone(&target);
        }
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
        Ok(target)
    }

    /// Identity + swap counters for the `stats` admin request.
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        let current = self.current();
        RegistryStats {
            generation: current.id(),
            checksum: current.checksum(),
            locked: current.is_locked(),
            hardened: current.is_hardened(),
            reloads: self.reloads.load(Ordering::Relaxed),
            rekeys: self.rekeys.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_datasets::Benchmark;
    use hdc_model::{ClassifySession, Encoder, ModelKind, RecordEncoder};
    use hdlock::{EncodingKey, LockConfig, LockedEncoder};

    fn train_set() -> Dataset {
        Benchmark::Pamap.generate(0.03, 50).unwrap().0
    }

    fn locked_fixture(dim: usize) -> (ModelRegistry, HdcModel<LockedEncoder>, Dataset) {
        let train = train_set();
        let config = HdcConfig::paper_default().with_dim(dim).with_seed(50);
        let mut rng = HvRng::from_seed(50);
        let enc = LockedEncoder::generate(
            &mut rng,
            &LockConfig {
                n_features: train.n_features(),
                m_levels: config.m_levels,
                dim,
                pool_size: train.n_features(),
                n_layers: 2,
            },
        )
        .unwrap();
        let model = HdcModel::fit_with_encoder(&config, enc, &train).unwrap();
        let snap = ModelSnapshot::from_locked_model(&model);
        let key = KeySegment::from_locked_encoder(model.encoder()).unwrap();
        let registry = ModelRegistry::from_snapshot(snap, Some(&key))
            .unwrap()
            .with_rekey_source(RekeySource {
                config,
                train: train.clone(),
            });
        (registry, model, train)
    }

    #[test]
    fn boot_generation_serves_the_snapshot() {
        let (registry, model, _) = locked_fixture(256);
        let generation = registry.current();
        assert_eq!(generation.id(), 1);
        assert!(generation.is_locked());
        let row: Vec<u16> = (0..model.encoder().n_features() as u16)
            .map(|i| i % 4)
            .collect();
        assert_eq!(
            generation.session().classify(&row),
            model.session().classify(&row)
        );
    }

    #[test]
    fn reload_swaps_and_rollback_returns() {
        let (registry, _, train) = locked_fixture(256);
        let before = registry.current();
        // Reload a *standard* model: the registry can change protection
        // stories, not just weights.
        let config = HdcConfig::paper_default().with_dim(512).with_seed(51);
        let std_model = HdcModel::fit_standard(&config, &train).unwrap();
        let gen2 = registry
            .reload(ModelSnapshot::from_standard_model(&std_model), None)
            .unwrap();
        assert_eq!(gen2.id(), 2);
        assert!(!gen2.is_locked());
        assert_eq!(registry.current().id(), 2);
        assert_ne!(gen2.checksum(), before.checksum());
        // The retired generation still answers in-flight work.
        let row: Vec<u16> = (0..train.n_features() as u16).map(|i| i % 4).collect();
        let _ = before.session().classify(&row);
        // Rollback restores it.
        let back = registry.rollback().unwrap();
        assert_eq!(back.id(), before.id());
        assert_eq!(registry.current().id(), 1);
        let stats = registry.stats();
        assert_eq!(stats.reloads, 1);
        assert_eq!(stats.rollbacks, 1);
        assert!(registry.rollback().is_err());
    }

    #[test]
    fn rekey_is_deterministic_and_freezes_the_old_vault() {
        let (registry, model, train) = locked_fixture(256);
        let old = registry.current();
        let gen2 = registry.rekey(777).unwrap();
        assert_eq!(gen2.id(), 2);
        assert!(gen2.is_locked());

        // The old vault is frozen…
        let old_vault = old.session().encoder().vault().unwrap();
        assert!(!old_vault.is_sealed());
        assert!(old_vault.with_key(|_| ()).is_err());
        // …but the old generation still drains cached-mode traffic.
        let row: Vec<u16> = (0..train.n_features() as u16).map(|i| i % 4).collect();
        let _ = old.session().classify(&row);

        // Bit-identical to a cold start under the same seed.
        let config = HdcConfig::paper_default().with_dim(256).with_seed(50);
        let mut rng = HvRng::from_seed(777);
        let cold_key = EncodingKey::random(
            &mut rng,
            train.n_features(),
            2,
            model.encoder().pool().len(),
            256,
        )
        .unwrap();
        let cold_enc = LockedEncoder::from_parts(
            model.encoder().pool().clone(),
            model.encoder().values().clone(),
            cold_key,
        )
        .unwrap();
        let cold = HdcModel::fit_with_encoder(&config, cold_enc, &train).unwrap();
        let cold_session = cold.session();
        let rows: Vec<Vec<u16>> = (0..16)
            .map(|s| {
                (0..train.n_features())
                    .map(|i| ((s + i) % 8) as u16)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let want = cold_session.scores_batch(&refs);
        let got = gen2.session().scores_batch(&refs);
        assert_eq!(got.best_rows(), want.best_rows());
        for q in 0..refs.len() {
            for (g, w) in got.scores(q).iter().zip(want.scores(q)) {
                assert_eq!(g.to_bits(), w.to_bits());
            }
        }
        assert_eq!(
            gen2.checksum(),
            ModelSnapshot::from_locked_model(&cold).checksum()
        );
        assert_eq!(registry.stats().rekeys, 1);
    }

    #[test]
    fn concurrent_rekeys_freeze_every_superseded_vault() {
        let (registry, _, _) = locked_fixture(256);
        let boot = registry.current();
        let (gen_a, gen_b) = std::thread::scope(|s| {
            let a = s.spawn(|| registry.rekey(61).unwrap());
            let b = s.spawn(|| registry.rekey(62).unwrap());
            (a.join().unwrap(), b.join().unwrap())
        });
        // Whatever the interleaving: the boot vault and the vault of
        // whichever rekeyed generation lost the race are destroyed;
        // only the generation still serving keeps a sealed vault.
        let current_id = registry.current().id();
        assert!(!boot.session().encoder().vault().unwrap().is_sealed());
        for generation in [&gen_a, &gen_b] {
            let sealed = generation.session().encoder().vault().unwrap().is_sealed();
            assert_eq!(
                sealed,
                generation.id() == current_id,
                "generation {} (current {current_id})",
                generation.id()
            );
        }
        assert_eq!(registry.stats().rekeys, 2);
    }

    #[test]
    fn rekey_preserves_hardened_mode() {
        let train = train_set();
        let config = HdcConfig::paper_default().with_dim(256).with_seed(53);
        let mut rng = HvRng::from_seed(53);
        let enc = LockedEncoder::generate(
            &mut rng,
            &LockConfig {
                n_features: train.n_features(),
                m_levels: config.m_levels,
                dim: 256,
                pool_size: train.n_features(),
                n_layers: 2,
            },
        )
        .unwrap();
        let model = HdcModel::fit_with_encoder(&config, enc, &train).unwrap();
        let checksum = ModelSnapshot::from_locked_model(&model).checksum();
        let (_, mut encoder, _, memory) = model.into_parts();
        encoder.set_mode(hdlock::DeriveMode::Hardened);
        let session = OwnedSession::new(AnyEncoder::Locked(encoder), &memory);
        let registry =
            ModelRegistry::new(session, checksum).with_rekey_source(RekeySource { config, train });
        assert!(registry.current().is_hardened());
        assert!(registry.stats().hardened);
        // A rekey is a security recovery action — it must not silently
        // drop the constant-time policy of the generation it replaces.
        let gen2 = registry.rekey(99).unwrap();
        assert!(gen2.is_hardened());
        assert!(registry.stats().hardened);
        assert!(registry.stats().locked);
    }

    #[test]
    fn rekey_requires_locked_model_and_source() {
        let train = train_set();
        let config = HdcConfig::paper_default()
            .with_dim(130)
            .with_kind(ModelKind::Binary)
            .with_seed(52);
        let model: HdcModel<RecordEncoder> = HdcModel::fit_standard(&config, &train).unwrap();
        let snap = ModelSnapshot::from_standard_model(&model);
        let registry = ModelRegistry::from_snapshot(snap, None).unwrap();
        // No source attached:
        assert!(matches!(registry.rekey(1), Err(StoreError::Registry(_))));
        // Source attached but the serving model is standard:
        let registry = registry.with_rekey_source(RekeySource { config, train });
        let err = registry.rekey(1).unwrap_err();
        assert!(err.to_string().contains("not a locked model"), "{err}");
    }

    #[test]
    fn concurrent_readers_see_a_consistent_generation() {
        let (registry, _, train) = locked_fixture(256);
        let row: Vec<u16> = (0..train.n_features() as u16).map(|i| i % 4).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let generation = registry.current();
                        // Shape is stable within a grabbed generation
                        // even while rekeys land underneath.
                        let class = generation.session().classify(&row);
                        assert!(class < generation.session().n_classes());
                    }
                });
            }
            for round in 0..3 {
                registry.rekey(round).unwrap();
            }
        });
        assert_eq!(registry.stats().rekeys, 3);
        assert_eq!(registry.current().id(), 4);
    }
}
