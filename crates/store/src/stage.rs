//! Server-side staging of streamed snapshot transfers.
//!
//! A snapshot too large to buffer in one request body arrives over the
//! wire in chunks. [`SnapshotStage`] accumulates those chunks in a
//! uniquely named temporary file next to nothing the registry serves
//! from, enforcing the declared length, a staging cap, and an eager
//! first-chunk magic check (so a client streaming garbage is rejected
//! on chunk one, not after a gigabyte). [`SnapshotStage::finish`]
//! verifies the full `magic | version | length | payload | fnv1a64`
//! envelope by streaming the staged file back in fixed-size chunks —
//! the checksum is computed incrementally ([`fnv1a64_update`]), so the
//! whole artifact is never resident — and hands back a
//! [`StagedSnapshot`] whose path can be fed straight into
//! [`ModelRegistry::reload_files`](crate::ModelRegistry::reload_files).
//!
//! Both types clean their temporary file up on drop: an aborted or
//! abandoned transfer leaves nothing behind, and a committed one is
//! removed as soon as the reload has consumed it.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::StoreError;
use crate::snapshot::SNAPSHOT_SECTION;
use crate::wire::fnv1a64_update;

/// Hard ceiling on a staged transfer, independent of the declared
/// length: a client cannot reserve more than this much disk.
pub const MAX_STAGED_BYTES: u64 = 1 << 30;

/// Envelope overhead: 16-byte header (magic, version, reserved,
/// payload length) plus the trailing 8-byte checksum.
const ENVELOPE_BYTES: u64 = 24;

/// FNV-1a 64 offset basis (the seed for [`fnv1a64_update`]).
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Distinguishes concurrent stages within one process.
static STAGE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// An in-progress chunked snapshot transfer, staged to a temporary
/// file. Dropped without [`SnapshotStage::finish`], the file is
/// removed.
#[derive(Debug)]
pub struct SnapshotStage {
    file: Option<File>,
    path: PathBuf,
    declared: u64,
    received: u64,
    committed: bool,
}

impl SnapshotStage {
    /// Opens a fresh stage in `dir` for a transfer of exactly
    /// `declared_len` bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] when the declared length is shorter
    /// than the snapshot envelope or over [`MAX_STAGED_BYTES`];
    /// [`StoreError::Io`] when the temporary file cannot be created.
    pub fn begin(dir: &Path, declared_len: u64) -> Result<SnapshotStage, StoreError> {
        if declared_len < ENVELOPE_BYTES {
            return Err(StoreError::Malformed(format!(
                "declared snapshot length {declared_len} is shorter than the \
                 {ENVELOPE_BYTES} byte envelope"
            )));
        }
        if declared_len > MAX_STAGED_BYTES {
            return Err(StoreError::Malformed(format!(
                "declared snapshot length {declared_len} exceeds the \
                 {MAX_STAGED_BYTES} byte staging cap"
            )));
        }
        let name = format!(
            ".hdc-xfer-{}-{}.hdsn.part",
            std::process::id(),
            STAGE_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let path = dir.join(name);
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(StoreError::Io)?;
        Ok(SnapshotStage {
            file: Some(file),
            path,
            declared: declared_len,
            received: 0,
            committed: false,
        })
    }

    /// Bytes staged so far.
    #[must_use]
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Appends one chunk, returning the cumulative byte count.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] when the first bytes do not open with
    /// the snapshot magic or the transfer overruns its declared length;
    /// [`StoreError::Io`] on write failure. Either way the stage is
    /// poisoned — callers should drop it.
    pub fn write_chunk(&mut self, chunk: &[u8]) -> Result<u64, StoreError> {
        // Eager magic check over however much of the 4-byte prefix this
        // chunk covers: garbage is rejected on chunk one.
        let magic = SNAPSHOT_SECTION.magic;
        if (self.received as usize) < magic.len() {
            let have = self.received as usize;
            let want = &magic[have..(have + chunk.len()).min(magic.len())];
            if !chunk.starts_with(want) {
                return Err(StoreError::Malformed(
                    "transfer does not start with the snapshot magic".to_owned(),
                ));
            }
        }
        let total = self.received + chunk.len() as u64;
        if total > self.declared {
            return Err(StoreError::Malformed(format!(
                "transfer overruns its declared length: {} received + {} new > {} declared",
                self.received,
                chunk.len(),
                self.declared
            )));
        }
        self.file
            .as_mut()
            .expect("stage file open until finish")
            .write_all(chunk)
            .map_err(StoreError::Io)?;
        self.received = total;
        Ok(self.received)
    }

    /// Completes the transfer: checks the byte count, then streams the
    /// staged file back through an incremental checksum to verify the
    /// full snapshot envelope before anyone parses a payload byte.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] on short transfers or length
    /// disagreements, [`StoreError::BadMagic`] /
    /// [`StoreError::UnsupportedVersion`] /
    /// [`StoreError::ChecksumMismatch`] from the envelope, and
    /// [`StoreError::Io`] on read failure. The temporary file is
    /// removed on any error.
    pub fn finish(mut self) -> Result<StagedSnapshot, StoreError> {
        drop(self.file.take()); // flush + close before re-reading
        if self.received != self.declared {
            return Err(StoreError::Malformed(format!(
                "transfer incomplete: {} of {} declared bytes received",
                self.received, self.declared
            )));
        }
        self.verify_envelope()?;
        self.committed = true;
        Ok(StagedSnapshot {
            path: self.path.clone(),
        })
    }

    /// Streaming envelope verification: header fields first, then the
    /// payload in fixed chunks through [`fnv1a64_update`], then the
    /// recorded checksum — constant memory at any snapshot size.
    fn verify_envelope(&self) -> Result<(), StoreError> {
        let mut reader = File::open(&self.path).map_err(StoreError::Io)?;
        let mut header = [0u8; 16];
        reader.read_exact(&mut header).map_err(StoreError::Io)?;
        let magic: [u8; 4] = header[..4].try_into().expect("len 4");
        if magic != SNAPSHOT_SECTION.magic {
            return Err(StoreError::BadMagic {
                expected: SNAPSHOT_SECTION.magic,
                found: magic,
            });
        }
        let version = u16::from_le_bytes(header[4..6].try_into().expect("len 2"));
        if version > SNAPSHOT_SECTION.version {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_SECTION.version,
            });
        }
        let payload_len = u64::from_le_bytes(header[8..16].try_into().expect("len 8"));
        if ENVELOPE_BYTES + payload_len != self.declared {
            return Err(StoreError::Malformed(format!(
                "envelope declares a {payload_len} byte payload; the transfer \
                 declared {} total bytes",
                self.declared
            )));
        }
        let mut h = fnv1a64_update(FNV_BASIS, &header);
        let mut remaining = payload_len;
        let mut chunk = vec![0u8; 64 * 1024];
        while remaining > 0 {
            let take = chunk.len().min(remaining as usize);
            reader
                .read_exact(&mut chunk[..take])
                .map_err(StoreError::Io)?;
            h = fnv1a64_update(h, &chunk[..take]);
            remaining -= take as u64;
        }
        let mut tail = [0u8; 8];
        reader.read_exact(&mut tail).map_err(StoreError::Io)?;
        let recorded = u64::from_le_bytes(tail);
        if recorded != h {
            return Err(StoreError::ChecksumMismatch {
                expected: recorded,
                found: h,
            });
        }
        Ok(())
    }
}

impl Drop for SnapshotStage {
    fn drop(&mut self) {
        drop(self.file.take());
        if !self.committed {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// A fully received, envelope-verified snapshot file, ready to reload.
/// The file is removed when this is dropped.
#[derive(Debug)]
pub struct StagedSnapshot {
    path: PathBuf,
}

impl StagedSnapshot {
    /// Path of the verified snapshot file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for StagedSnapshot {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(payload: &[u8]) -> Vec<u8> {
        SNAPSHOT_SECTION.frame(payload)
    }

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join("hdc_store_stage_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn chunked_transfer_roundtrips_and_cleans_up() {
        let bytes = framed(b"stage me in little pieces");
        let dir = temp_dir();
        let mut stage = SnapshotStage::begin(&dir, bytes.len() as u64).unwrap();
        for chunk in bytes.chunks(7) {
            stage.write_chunk(chunk).unwrap();
        }
        assert_eq!(stage.received(), bytes.len() as u64);
        let staged = stage.finish().unwrap();
        assert_eq!(std::fs::read(staged.path()).unwrap(), bytes);
        let path = staged.path().to_path_buf();
        drop(staged);
        assert!(!path.exists(), "staged file removed on drop");
    }

    #[test]
    fn corruption_and_length_lies_are_rejected() {
        let dir = temp_dir();
        let bytes = framed(&[7u8; 128]);

        // A flipped payload byte fails the streamed checksum.
        let mut corrupt = bytes.clone();
        corrupt[40] ^= 0x01;
        let mut stage = SnapshotStage::begin(&dir, corrupt.len() as u64).unwrap();
        stage.write_chunk(&corrupt).unwrap();
        assert!(matches!(
            stage.finish(),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        // Wrong magic dies on the very first chunk.
        let mut stage = SnapshotStage::begin(&dir, 64).unwrap();
        assert!(stage.write_chunk(b"NOPE").is_err());
        drop(stage);

        // Overrunning the declared length is an error, not a bigger file.
        let mut stage = SnapshotStage::begin(&dir, 30).unwrap();
        assert!(stage.write_chunk(&bytes).is_err());
        drop(stage);

        // A short transfer cannot commit.
        let mut stage = SnapshotStage::begin(&dir, bytes.len() as u64).unwrap();
        stage.write_chunk(&bytes[..10]).unwrap();
        let path = {
            let err = stage.finish().unwrap_err();
            assert!(err.to_string().contains("incomplete"), "{err}");
            // finish consumed the stage; its temp file is gone.
            true
        };
        assert!(path);

        // Absurd declarations are rejected up front.
        assert!(SnapshotStage::begin(&dir, 3).is_err());
        assert!(SnapshotStage::begin(&dir, MAX_STAGED_BYTES + 1).is_err());
    }

    #[test]
    fn abandoned_stage_removes_its_file() {
        let dir = temp_dir();
        let bytes = framed(b"abandoned");
        let mut stage = SnapshotStage::begin(&dir, bytes.len() as u64).unwrap();
        stage.write_chunk(&bytes[..8]).unwrap();
        let path = stage.path.clone();
        assert!(path.exists());
        drop(stage);
        assert!(!path.exists(), "aborted transfer leaves nothing behind");
    }
}
