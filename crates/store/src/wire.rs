//! Little-endian framed byte encoding with checksummed sections.
//!
//! The snapshot format's primitive layer: a [`ByteWriter`] appends
//! fixed-width little-endian scalars and raw `u64` plane words; a
//! [`ByteReader`] reads them back with explicit truncation errors
//! instead of panics. [`Section::frame`] wraps a payload in the
//! `magic | version | payload-length | payload | FNV-1a64` envelope
//! every on-disk artifact uses, and [`Section::open`] verifies the
//! envelope *before* any field of the payload is interpreted — a
//! corrupt file fails fast with
//! [`crate::StoreError::ChecksumMismatch`],
//! never with a half-loaded model.

use crate::error::StoreError;

/// FNV-1a 64-bit hash — the snapshot checksum. Not cryptographic (the
/// threat model here is bit rot and truncated writes, not forgery; key
/// *secrecy* is the vault's job), but strong enough that a corrupt
/// plane word cannot slip through unnoticed.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_update(0xcbf2_9ce4_8422_2325, bytes)
}

/// Incremental FNV-1a 64: folds `bytes` into a running hash state, so
/// checksums can be computed over streamed data (chunked snapshot
/// transfers) without buffering the whole artifact. Seed the state with
/// the FNV offset basis — [`fnv1a64`] is exactly
/// `fnv1a64_update(0xcbf2_9ce4_8422_2325, bytes)`.
#[must_use]
pub fn fnv1a64_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its raw bit pattern (no text round-trip, so
    /// reload is bit-identical).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends raw bytes verbatim (strings and opaque payloads).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a row of `u16` values verbatim (the serving wire
    /// protocol's packed quantized-level rows).
    pub fn put_u16s(&mut self, values: &[u16]) {
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends packed plane words verbatim.
    pub fn put_words(&mut self, words: &[u64]) {
        for &w in words {
            self.put_u64(w);
        }
    }

    /// Appends a row of `i32` values verbatim.
    pub fn put_i32s(&mut self, values: &[i32]) {
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Cursor-based little-endian decoder over a borrowed byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the input is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the input is exhausted.
    pub fn get_u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the input is exhausted.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the input is exhausted.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `i64`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the input is exhausted.
    pub fn get_i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `f32` from its raw bit pattern.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the input is exhausted.
    pub fn get_f32(&mut self) -> Result<f32, StoreError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads a `u64` and converts to `usize`, rejecting values that do
    /// not fit (or are absurd for a count field).
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] / [`StoreError::Malformed`].
    pub fn get_usize(&mut self) -> Result<usize, StoreError> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| StoreError::Malformed(format!("count {v} does not fit in usize")))
    }

    /// Reads `n` raw bytes (strings and opaque payloads).
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the input is exhausted.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        self.take(n)
    }

    /// Reads `n` `u16` values (packed quantized-level rows).
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the input is exhausted.
    pub fn get_u16s(&mut self, n: usize) -> Result<Vec<u16>, StoreError> {
        let raw = self.take(
            n.checked_mul(2)
                .ok_or(StoreError::Malformed("value count overflows".to_owned()))?,
        )?;
        Ok(raw
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes(c.try_into().expect("len 2")))
            .collect())
    }

    /// Reads `n` packed plane words.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the input is exhausted.
    pub fn get_words(&mut self, n: usize) -> Result<Vec<u64>, StoreError> {
        let raw = self.take(
            n.checked_mul(8)
                .ok_or(StoreError::Malformed("word count overflows".to_owned()))?,
        )?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("len 8")))
            .collect())
    }

    /// Reads `n` `i32` values.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] when the input is exhausted.
    pub fn get_i32s(&mut self, n: usize) -> Result<Vec<i32>, StoreError> {
        let raw = self.take(
            n.checked_mul(4)
                .ok_or(StoreError::Malformed("value count overflows".to_owned()))?,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().expect("len 4")))
            .collect())
    }
}

/// The shared on-disk envelope: `magic (4) | version (u16) |
/// reserved (u16) | payload_len (u64) | payload | fnv1a64 (u64)`, with
/// the checksum taken over everything before it (header included, so a
/// spliced header cannot go unnoticed either).
#[derive(Debug, Clone, Copy)]
pub struct Section {
    /// Four-byte artifact magic.
    pub magic: [u8; 4],
    /// Newest version this build writes/reads.
    pub version: u16,
}

impl Section {
    /// Wraps `payload` in the checksummed envelope.
    #[must_use]
    pub fn frame(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload.len() + 24);
        out.extend_from_slice(&self.magic);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Verifies the envelope and returns `(payload, checksum)`. The
    /// checksum is compared before any payload byte is interpreted.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`],
    /// [`StoreError::Truncated`] or [`StoreError::ChecksumMismatch`].
    pub fn open<'a>(&self, bytes: &'a [u8]) -> Result<(&'a [u8], u64), StoreError> {
        let mut r = ByteReader::new(bytes);
        let magic: [u8; 4] = r.take(4)?.try_into().expect("len 4");
        if magic != self.magic {
            return Err(StoreError::BadMagic {
                expected: self.magic,
                found: magic,
            });
        }
        let version = r.get_u16()?;
        if version > self.version {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: self.version,
            });
        }
        let _reserved = r.get_u16()?;
        let payload_len = r.get_usize()?;
        let payload = r.take(payload_len)?;
        let recorded = r.get_u64()?;
        let actual = fnv1a64(&bytes[..bytes.len() - r.remaining() - 8]);
        if recorded != actual {
            return Err(StoreError::ChecksumMismatch {
                expected: recorded,
                found: actual,
            });
        }
        if r.remaining() != 0 {
            return Err(StoreError::Malformed(format!(
                "{} trailing bytes after checksum",
                r.remaining()
            )));
        }
        Ok((payload, recorded))
    }
}

/// Atomically writes `bytes` to `path`: the data lands in a sibling
/// temporary file first and is `rename`d into place, so a crash mid-save
/// leaves either the old snapshot or the new one — never a torn file.
///
/// # Errors
///
/// Propagates file I/O errors (the temporary file is cleaned up on
/// failure where possible).
pub fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> Result<(), StoreError> {
    // The suffix appends to the full file name (never replaces the
    // extension), so `v1.hdsn` and `v1.hdky` in one directory get
    // distinct temporaries instead of colliding on `v1.tmp-write`.
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| StoreError::Malformed(format!("{} has no file name", path.display())))?
        .to_os_string();
    tmp_name.push(".tmp-write");
    let tmp = path.with_file_name(tmp_name);
    let result = (|| -> std::io::Result<()> {
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(StoreError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: Section = Section {
        magic: *b"TEST",
        version: 3,
    };

    #[test]
    fn scalars_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(65_000);
        w.put_u32(4_000_000_000);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f32(-0.0);
        w.put_usize(12345);
        w.put_bytes(b"raw");
        w.put_u16s(&[0, u16::MAX, 7]);
        w.put_words(&[1, u64::MAX]);
        w.put_i32s(&[-1, i32::MIN]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 65_000);
        assert_eq!(r.get_u32().unwrap(), 4_000_000_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.get_usize().unwrap(), 12345);
        assert_eq!(r.get_bytes(3).unwrap(), b"raw");
        assert_eq!(r.get_u16s(3).unwrap(), vec![0, u16::MAX, 7]);
        assert_eq!(r.get_words(2).unwrap(), vec![1, u64::MAX]);
        assert_eq!(r.get_i32s(2).unwrap(), vec![-1, i32::MIN]);
        assert_eq!(r.remaining(), 0);
        assert!(matches!(r.get_u8(), Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn frame_open_roundtrip() {
        let framed = SEC.frame(b"hello planes");
        let (payload, checksum) = SEC.open(&framed).unwrap();
        assert_eq!(payload, b"hello planes");
        assert_ne!(checksum, 0);
    }

    #[test]
    fn single_bit_flip_is_detected() {
        let mut framed = SEC.frame(&[0u8; 64]);
        for i in 0..framed.len() - 8 {
            framed[i] ^= 0x10;
            let err = SEC.open(&framed).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::ChecksumMismatch { .. }
                        | StoreError::BadMagic { .. }
                        | StoreError::UnsupportedVersion { .. }
                        | StoreError::Truncated { .. }
                        | StoreError::Malformed(_)
                ),
                "byte {i}: {err}"
            );
            framed[i] ^= 0x10;
        }
        // pristine again
        assert!(SEC.open(&framed).is_ok());
    }

    #[test]
    fn truncation_is_detected() {
        let framed = SEC.frame(&[9u8; 32]);
        for cut in 0..framed.len() {
            assert!(SEC.open(&framed[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn newer_version_is_rejected() {
        let newer = Section {
            magic: *b"TEST",
            version: 4,
        };
        let framed = newer.frame(b"x");
        assert!(matches!(
            SEC.open(&framed),
            Err(StoreError::UnsupportedVersion {
                found: 4,
                supported: 3
            })
        ));
    }

    #[test]
    fn fnv_vectors() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn atomic_write_replaces_content() {
        let dir = std::env::temp_dir().join("hdc_store_wire_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        atomic_write(&path, b"one").unwrap();
        atomic_write(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        assert!(!dir.join("snap.bin.tmp-write").exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn atomic_write_temporaries_do_not_collide_across_extensions() {
        // `v1.hdsn` and `v1.hdky` share a stem; their temp files must
        // not (with_extension-style naming would map both to one path).
        let dir = std::env::temp_dir().join("hdc_store_wire_tmp_collision");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("v1.hdsn");
        let key = dir.join("v1.hdky");
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..50 {
                    atomic_write(&snap, b"snapshot-bytes").unwrap();
                }
            });
            s.spawn(|| {
                for _ in 0..50 {
                    atomic_write(&key, b"key-bytes").unwrap();
                }
            });
        });
        assert_eq!(std::fs::read(&snap).unwrap(), b"snapshot-bytes");
        assert_eq!(std::fs::read(&key).unwrap(), b"key-bytes");
        let _ = std::fs::remove_file(&snap);
        let _ = std::fs::remove_file(&key);
    }
}
