//! Class hypervector storage.

use hypervec::{BinaryHv, BundleAccumulator, IntHv, ShardedClassMemory};
use serde::{Deserialize, Serialize};

use crate::config::ModelKind;

/// The trained state of an HDC classifier: one integer accumulator per
/// class (paper Eq. 4) plus, for binary models, the binarized snapshot
/// used at inference time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassMemory {
    kind: ModelKind,
    accs: Vec<BundleAccumulator>,
    bins: Vec<BinaryHv>,
}

impl ClassMemory {
    /// Creates an empty class memory for `n_classes` classes of
    /// dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0` or `dim == 0`.
    #[must_use]
    pub fn new(kind: ModelKind, n_classes: usize, dim: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        ClassMemory {
            kind,
            accs: (0..n_classes)
                .map(|_| BundleAccumulator::new(dim))
                .collect(),
            bins: (0..n_classes).map(|_| BinaryHv::ones(dim)).collect(),
        }
    }

    /// Model kind this memory serves.
    #[must_use]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Number of classes `C`.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.accs.len()
    }

    /// Hypervector dimensionality `D`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.accs[0].dim()
    }

    /// Mutable access to the accumulator of class `j` (training only).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn acc_mut(&mut self, j: usize) -> &mut BundleAccumulator {
        &mut self.accs[j]
    }

    /// The integer class hypervector of class `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn class_int(&self, j: usize) -> &IntHv {
        self.accs[j].sums()
    }

    /// The binarized class hypervector of class `j` (refresh with
    /// [`ClassMemory::rebinarize`] after training updates).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn class_binary(&self, j: usize) -> &BinaryHv {
        &self.bins[j]
    }

    /// Recomputes every binarized snapshot from the accumulators.
    pub fn rebinarize(&mut self) {
        for (bin, acc) in self.bins.iter_mut().zip(&self.accs) {
            *bin = acc.sums().sign_ties_positive();
        }
    }

    /// Recomputes the binarized snapshot of a single class.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn rebinarize_class(&mut self, j: usize) {
        self.bins[j] = self.accs[j].sums().sign_ties_positive();
    }

    /// Number of training samples currently bundled into class `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn count(&self, j: usize) -> usize {
        self.accs[j].count()
    }

    /// All binarized class rows, in class order.
    #[must_use]
    pub fn binary_rows(&self) -> &[BinaryHv] {
        &self.bins
    }

    /// Validates internal shape consistency against an expected
    /// dimension — the deserialization guard: derived decoding cannot
    /// check cross-field invariants, so untrusted snapshots are
    /// re-checked here, naming the offending class index in the
    /// [`hypervec::HvError::RowDimensionMismatch`] style.
    ///
    /// # Errors
    ///
    /// Returns [`hypervec::HvError::EmptyInput`] for a class-less memory,
    /// [`hypervec::HvError::DimensionMismatch`] when accumulator and binarized row
    /// *counts* disagree, and [`hypervec::HvError::RowDimensionMismatch`] naming
    /// the first class whose accumulator or binarized row has the wrong
    /// dimension.
    pub fn check_consistent(&self, expected_dim: usize) -> Result<(), hypervec::HvError> {
        use hypervec::HvError;
        if self.accs.is_empty() {
            return Err(HvError::EmptyInput);
        }
        if self.bins.len() != self.accs.len() {
            return Err(HvError::DimensionMismatch {
                expected: self.accs.len(),
                found: self.bins.len(),
            });
        }
        for (j, acc) in self.accs.iter().enumerate() {
            if acc.dim() != expected_dim {
                return Err(HvError::RowDimensionMismatch {
                    row: j,
                    expected: expected_dim,
                    found: acc.dim(),
                });
            }
        }
        for (j, bin) in self.bins.iter().enumerate() {
            if bin.dim() != expected_dim {
                return Err(HvError::RowDimensionMismatch {
                    row: j,
                    expected: expected_dim,
                    found: bin.dim(),
                });
            }
        }
        Ok(())
    }

    /// Packs a search-ready snapshot of the current class rows — the
    /// representation [`InferenceSession`](crate::session::InferenceSession)
    /// and the retraining loop classify against. The binarized rows are
    /// always packed as popcount planes; the integer accumulator rows
    /// (cosine search) are attached only for non-binary memories, since
    /// a binary model's query path never reads them. The snapshot does
    /// not track later accumulator updates; refresh touched rows with
    /// [`ShardedClassMemory::update_row`] /
    /// [`ShardedClassMemory::update_int_row`].
    #[must_use]
    pub fn to_sharded(&self) -> ShardedClassMemory {
        let mut sharded = ShardedClassMemory::from_rows(&self.bins)
            .expect("class memory rows share one dimension by construction");
        if self.kind == ModelKind::NonBinary {
            let ints: Vec<IntHv> = self.accs.iter().map(|a| a.sums().clone()).collect();
            sharded
                .set_int_rows(&ints)
                .expect("accumulators share the binarized rows' dimension");
        }
        sharded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypervec::HvRng;

    #[test]
    fn starts_empty() {
        let cm = ClassMemory::new(ModelKind::Binary, 3, 64);
        assert_eq!(cm.n_classes(), 3);
        assert_eq!(cm.dim(), 64);
        assert_eq!(cm.count(0), 0);
    }

    #[test]
    fn accumulate_and_rebinarize() {
        let mut rng = HvRng::from_seed(1);
        let hv = rng.binary_hv(128);
        let mut cm = ClassMemory::new(ModelKind::Binary, 2, 128);
        cm.acc_mut(0).add(&hv);
        cm.rebinarize();
        assert_eq!(cm.class_binary(0), &hv);
        assert_eq!(cm.count(0), 1);
        assert_eq!(cm.count(1), 0);
    }

    #[test]
    fn sharded_snapshot_matches_rows() {
        let mut rng = HvRng::from_seed(3);
        let a = rng.binary_hv(130);
        let b = rng.binary_hv(130);
        // Binary memories pack only the popcount planes.
        let mut cm = ClassMemory::new(ModelKind::Binary, 2, 130);
        cm.acc_mut(0).add(&a);
        cm.acc_mut(1).add(&b);
        cm.rebinarize();
        let sharded = cm.to_sharded();
        assert_eq!(sharded.n_rows(), 2);
        assert_eq!(sharded.dim(), 130);
        assert!(!sharded.has_int_rows());
        assert_eq!(sharded.search_binary(&a).unwrap(), (0, 0));
        // Non-binary memories additionally attach the integer rows.
        let mut cm = ClassMemory::new(ModelKind::NonBinary, 2, 130);
        cm.acc_mut(0).add(&a);
        cm.acc_mut(1).add(&b);
        cm.rebinarize();
        let sharded = cm.to_sharded();
        assert!(sharded.has_int_rows());
        assert_eq!(sharded.search_int(&b.to_int()).unwrap().0, 1);
    }

    #[test]
    fn check_consistent_names_offending_dimension() {
        let cm = ClassMemory::new(ModelKind::Binary, 3, 64);
        assert!(cm.check_consistent(64).is_ok());
        // Every class is "wrong" against a different expected dim; the
        // error must name the first one.
        assert_eq!(
            cm.check_consistent(128).unwrap_err(),
            hypervec::HvError::RowDimensionMismatch {
                row: 0,
                expected: 128,
                found: 64
            }
        );
    }

    #[test]
    fn class_int_tracks_sums() {
        let mut rng = HvRng::from_seed(2);
        let a = rng.binary_hv(64);
        let mut cm = ClassMemory::new(ModelKind::NonBinary, 1, 64);
        cm.acc_mut(0).add(&a);
        cm.acc_mut(0).add(&a);
        for i in 0..64 {
            assert_eq!(cm.class_int(0).get(i), 2 * i32::from(a.polarity(i)));
        }
    }
}
