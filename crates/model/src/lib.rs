//! # hdc-model — the HDC classifier substrate
//!
//! A complete hyperdimensional-computing classification pipeline as
//! described in Sec. 2 of the HDLock paper: record-based **encoding**
//! (Eq. 2/3), single-pass **training** with class-hypervector bundling
//! (Eq. 4) plus QuantHD-style retraining, and similarity-comparison
//! **inference** (Hamming for binary models, cosine for non-binary).
//!
//! The [`Encoder`] trait is the seam HDLock plugs into: everything else
//! (training, inference, the attack oracle) is generic over it.
//!
//! ## Example
//!
//! ```
//! use hdc_datasets::Benchmark;
//! use hdc_model::{HdcConfig, HdcModel, ModelKind};
//!
//! let (train, test) = Benchmark::Pamap.generate(0.02, 1)?;
//! let config = HdcConfig::paper_default()
//!     .with_dim(2048)
//!     .with_kind(ModelKind::Binary);
//! let model = HdcModel::fit_standard(&config, &train)?;
//! let result = model.evaluate(&test)?;
//! assert!(result.accuracy > 0.3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod classhv;
pub mod config;
pub mod encoder;
pub mod infer;
pub mod metrics;
pub mod model;
pub mod ngram;
pub mod persist;
pub mod session;
pub mod train;

pub use classhv::ClassMemory;
pub use config::{HdcConfig, ModelKind};
pub use encoder::{Encoder, RecordEncoder};
pub use infer::{class_scores, classify, evaluate};
pub use metrics::{ConfusionMatrix, EvalResult, LatencyStats};
pub use model::HdcModel;
pub use ngram::NgramEncoder;
pub use persist::{PersistError, SavedModel};
pub use session::{ClassifySession, InferenceSession, OwnedSession, TopKSession};
pub use train::{encode_dataset, train, train_online};
