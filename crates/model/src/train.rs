//! Training: single-pass bundling plus QuantHD-style retraining.
//!
//! Initial training sums each class's encoded samples into a class
//! hypervector (paper Eq. 4). Retraining then iterates over the training
//! set: each misclassified sample is *added* to its true class
//! accumulator and *subtracted* from the wrongly predicted one, scaled
//! by an integer learning rate — the "retraining rounds and learning
//! rate" hyperparameter tuning the paper cites from QuantHD as part of
//! what makes a trained model valuable IP.
//!
//! The retraining loops classify against a packed
//! [`ShardedClassMemory`] mirror of the class rows (the same kernel
//! inference and serving use) instead of re-scanning `BinaryHv` rows
//! one at a time; after each misclassification only the two touched
//! rows are refreshed in the mirror. The kernels are bit-identical to
//! the scalar scan, so training results are unchanged.

use hdc_datasets::QuantizedDataset;
use hypervec::{BinaryHv, IntHv, ShardedClassMemory};

use crate::classhv::ClassMemory;
use crate::config::{HdcConfig, ModelKind};
use crate::encoder::Encoder;

/// A sample pre-encoded in the representation its model kind trains on.
#[derive(Debug, Clone)]
pub enum EncodedSample {
    /// Binary model: binarized encoding.
    Binary(BinaryHv),
    /// Non-binary model: integer encoding.
    Int(IntHv),
}

/// Encodes the whole training set once through the encoder's batch path
/// (word-parallel engine + chunked fan-out).
///
/// Training touches every sample `1 + epochs` times; pre-encoding makes
/// each pass an O(D) accumulator update instead of an O(N·D) re-encode.
#[must_use]
pub fn encode_dataset<E: Encoder + Sync>(
    encoder: &E,
    kind: ModelKind,
    data: &QuantizedDataset,
) -> Vec<EncodedSample> {
    let rows: Vec<&[u16]> = (0..data.len()).map(|i| data.row(i)).collect();
    match kind {
        ModelKind::Binary => encoder
            .encode_batch_binary(&rows)
            .into_iter()
            .map(EncodedSample::Binary)
            .collect(),
        ModelKind::NonBinary => encoder
            .encode_batch_int(&rows)
            .into_iter()
            .map(EncodedSample::Int)
            .collect(),
    }
}

/// Trains a class memory from scratch on `data`.
///
/// Runs the single bundling pass and then `config.epochs` retraining
/// rounds with `config.learning_rate`.
///
/// # Panics
///
/// Panics if the encoder and dataset disagree on feature count or the
/// dataset labels exceed its declared class count (dataset construction
/// prevents the latter).
#[must_use]
pub fn train<E: Encoder + Sync>(
    encoder: &E,
    config: &HdcConfig,
    data: &QuantizedDataset,
) -> ClassMemory {
    assert_eq!(
        encoder.n_features(),
        data.n_features(),
        "encoder expects {} features, dataset has {}",
        encoder.n_features(),
        data.n_features()
    );
    let encoded = encode_dataset(encoder, config.kind, data);
    let mut memory = ClassMemory::new(config.kind, data.n_classes(), encoder.dim());

    // Single-pass bundling (Eq. 4).
    for (i, enc) in encoded.iter().enumerate() {
        let label = data.label(i);
        match enc {
            EncodedSample::Binary(hv) => memory.acc_mut(label).add(hv),
            EncodedSample::Int(hv) => memory.acc_mut(label).add_int(hv),
        }
    }
    memory.rebinarize();

    // Retraining rounds, classifying against the packed mirror.
    let mut mirror = memory.to_sharded();
    for _ in 0..config.epochs {
        let mut any_update = false;
        for (i, enc) in encoded.iter().enumerate() {
            let label = data.label(i);
            let predicted = match enc {
                EncodedSample::Binary(hv) => {
                    mirror
                        .search_binary(hv)
                        .expect("mirror matches encoded dimension")
                        .0
                }
                EncodedSample::Int(hv) => {
                    mirror
                        .search_int(hv)
                        .expect("mirror matches encoded dimension")
                        .0
                }
            };
            if predicted != label {
                any_update = true;
                match enc {
                    EncodedSample::Binary(hv) => {
                        memory
                            .acc_mut(label)
                            .adjust_binary(hv, config.learning_rate);
                        memory
                            .acc_mut(predicted)
                            .adjust_binary(hv, -config.learning_rate);
                    }
                    EncodedSample::Int(hv) => {
                        memory.acc_mut(label).adjust_int(hv, config.learning_rate);
                        memory
                            .acc_mut(predicted)
                            .adjust_int(hv, -config.learning_rate);
                    }
                }
                // Refresh only the two touched rows in the mirror, in
                // the representation this kind classifies with.
                refresh_mirror(&mut mirror, &mut memory, config.kind, label);
                refresh_mirror(&mut mirror, &mut memory, config.kind, predicted);
            }
        }
        memory.rebinarize();
        if !any_update {
            break; // converged
        }
    }
    memory
}

/// Refreshes class `j` of a packed training mirror after its
/// accumulator changed: binary models re-binarize and repack the
/// popcount row, non-binary models repack the integer row (the
/// binarized snapshot is refreshed at epoch end by `rebinarize`).
fn refresh_mirror(
    mirror: &mut ShardedClassMemory,
    memory: &mut ClassMemory,
    kind: ModelKind,
    j: usize,
) {
    match kind {
        ModelKind::Binary => {
            memory.rebinarize_class(j);
            mirror
                .update_row(j, memory.class_binary(j))
                .expect("mirror row matches class memory");
        }
        ModelKind::NonBinary => {
            mirror
                .update_int_row(j, memory.class_int(j))
                .expect("mirror row matches class memory");
        }
    }
}

/// Adaptive single-pass training in the style of OnlineHD: each sample
/// updates its class accumulator with a weight proportional to how
/// *badly* the current model represents it (`1 − similarity`), and a
/// misprediction additionally pushes the sample out of the wrong class
/// with the symmetric weight.
///
/// Weights are fixed-point with `scale` steps (integer accumulators);
/// `scale = 8` reproduces the usual float behaviour closely. Included
/// as an alternative trainer because the paper's IP argument — models
/// are expensive to produce — covers whichever training recipe built
/// them; the attack and the lock are agnostic to it.
///
/// # Panics
///
/// Panics if the encoder and dataset disagree on feature count or
/// `scale == 0`.
#[must_use]
pub fn train_online<E: Encoder + Sync>(
    encoder: &E,
    config: &HdcConfig,
    data: &QuantizedDataset,
    scale: i32,
) -> ClassMemory {
    assert!(scale > 0, "fixed-point scale must be positive");
    assert_eq!(
        encoder.n_features(),
        data.n_features(),
        "encoder expects {} features, dataset has {}",
        encoder.n_features(),
        data.n_features()
    );
    let encoded = encode_dataset(encoder, config.kind, data);
    let mut memory = ClassMemory::new(config.kind, data.n_classes(), encoder.dim());
    let mut mirror = memory.to_sharded();
    let mut seen = vec![false; data.n_classes()];

    for (i, enc) in encoded.iter().enumerate() {
        let label = data.label(i);
        match enc {
            EncodedSample::Binary(hv) => {
                let predicted = mirror
                    .search_binary(hv)
                    .expect("mirror matches encoded dimension")
                    .0;
                let sim = if seen[label] {
                    memory.class_binary(label).cosine(hv)
                } else {
                    0.0
                };
                memory.acc_mut(label).adjust_binary(hv, weight(sim, scale));
                refresh_mirror(&mut mirror, &mut memory, ModelKind::Binary, label);
                if predicted != label && seen[predicted] {
                    let sim_wrong = memory.class_binary(predicted).cosine(hv);
                    memory
                        .acc_mut(predicted)
                        .adjust_binary(hv, -weight(sim_wrong, scale));
                    refresh_mirror(&mut mirror, &mut memory, ModelKind::Binary, predicted);
                }
            }
            EncodedSample::Int(hv) => {
                let predicted = mirror
                    .search_int(hv)
                    .expect("mirror matches encoded dimension")
                    .0;
                let sim = memory.class_int(label).cosine(hv);
                memory.acc_mut(label).adjust_int(hv, weight(sim, scale));
                refresh_mirror(&mut mirror, &mut memory, ModelKind::NonBinary, label);
                if predicted != label && seen[predicted] {
                    let sim_wrong = memory.class_int(predicted).cosine(hv);
                    memory
                        .acc_mut(predicted)
                        .adjust_int(hv, -weight(sim_wrong, scale));
                    refresh_mirror(&mut mirror, &mut memory, ModelKind::NonBinary, predicted);
                }
            }
        }
        seen[label] = true;
    }
    memory.rebinarize();
    memory
}

/// Fixed-point `(1 − sim)·scale` update weight, at least 1.
fn weight(similarity: f64, scale: i32) -> i32 {
    (((1.0 - similarity).clamp(0.0, 2.0) * f64::from(scale)).round() as i32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::RecordEncoder;
    use crate::infer;
    use hdc_datasets::{Benchmark, Discretizer};
    use hypervec::HvRng;

    fn setup(kind: ModelKind) -> (RecordEncoder, HdcConfig, QuantizedDataset, QuantizedDataset) {
        let (train_ds, test_ds) = Benchmark::Pamap.generate(0.1, 7).unwrap();
        let config = HdcConfig {
            dim: 2048,
            m_levels: 8,
            kind,
            epochs: 3,
            learning_rate: 1,
            seed: 7,
        };
        let disc = Discretizer::fit(&train_ds, config.m_levels).unwrap();
        let train_q = disc.discretize(&train_ds).unwrap();
        let test_q = disc.discretize(&test_ds).unwrap();
        let mut rng = HvRng::from_seed(config.seed);
        let enc =
            RecordEncoder::generate(&mut rng, train_q.n_features(), config.m_levels, config.dim)
                .unwrap();
        (enc, config, train_q, test_q)
    }

    #[test]
    fn binary_model_learns_synthetic_task() {
        let (enc, config, train_q, test_q) = setup(ModelKind::Binary);
        let memory = train(&enc, &config, &train_q);
        let result = infer::evaluate(&enc, &memory, &test_q);
        assert!(
            result.accuracy > 0.6,
            "binary accuracy too low: {}",
            result.accuracy
        );
    }

    #[test]
    fn nonbinary_model_learns_synthetic_task() {
        let (enc, config, train_q, test_q) = setup(ModelKind::NonBinary);
        let memory = train(&enc, &config, &train_q);
        let result = infer::evaluate(&enc, &memory, &test_q);
        assert!(
            result.accuracy > 0.6,
            "non-binary accuracy too low: {}",
            result.accuracy
        );
    }

    #[test]
    fn retraining_does_not_hurt_training_accuracy() {
        let (enc, mut config, train_q, _) = setup(ModelKind::Binary);
        config.epochs = 0;
        let single = train(&enc, &config, &train_q);
        config.epochs = 3;
        let retrained = train(&enc, &config, &train_q);
        let acc_single = infer::evaluate(&enc, &single, &train_q).accuracy;
        let acc_retrained = infer::evaluate(&enc, &retrained, &train_q).accuracy;
        assert!(
            acc_retrained >= acc_single - 0.02,
            "retraining regressed: {acc_single} -> {acc_retrained}"
        );
    }

    #[test]
    fn class_counts_match_training_data() {
        let (enc, config, train_q, _) = setup(ModelKind::Binary);
        let memory = train(&enc, &config, &train_q);
        // single-pass adds exactly one bundle entry per sample
        let bundled: usize = (0..memory.n_classes()).map(|j| memory.count(j)).sum();
        assert_eq!(bundled, train_q.len());
    }

    #[test]
    fn training_is_deterministic() {
        let (enc, config, train_q, _) = setup(ModelKind::Binary);
        let a = train(&enc, &config, &train_q);
        let b = train(&enc, &config, &train_q);
        assert_eq!(a, b);
    }

    #[test]
    fn online_training_learns_binary() {
        let (enc, config, train_q, test_q) = setup(ModelKind::Binary);
        let memory = train_online(&enc, &config, &train_q, 8);
        let acc = infer::evaluate(&enc, &memory, &test_q).accuracy;
        assert!(acc > 0.55, "online binary accuracy too low: {acc}");
    }

    #[test]
    fn online_training_learns_nonbinary() {
        let (enc, config, train_q, test_q) = setup(ModelKind::NonBinary);
        let memory = train_online(&enc, &config, &train_q, 8);
        let acc = infer::evaluate(&enc, &memory, &test_q).accuracy;
        assert!(acc > 0.55, "online non-binary accuracy too low: {acc}");
    }

    #[test]
    fn online_training_is_deterministic() {
        let (enc, config, train_q, _) = setup(ModelKind::Binary);
        let a = train_online(&enc, &config, &train_q, 8);
        let b = train_online(&enc, &config, &train_q, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn weight_is_clamped_and_positive() {
        assert_eq!(weight(1.0, 8), 1);
        assert_eq!(weight(0.0, 8), 8);
        assert_eq!(weight(-1.0, 8), 16);
        assert_eq!(weight(2.0, 8), 1); // clamp below zero → min 1
    }
}
