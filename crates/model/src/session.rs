//! Batched inference sessions: encoder + packed class memory as one
//! query-side unit.
//!
//! HDLock's threat model assumes the deployed model is driven at high
//! query volume; Prive-HD argues the deployed encoder + memory should
//! be one hardened pipeline rather than loose library calls. A session
//! is that pipeline's software shape: it snapshots the trained
//! [`ClassMemory`] into a search-packed
//! [`ShardedClassMemory`] once, then serves every query through the
//! fused `encode_batch_* → search_batch_*` path — one word-parallel
//! encoding pass (per-worker scratch accumulators, no per-sample
//! allocation beyond the encoded block) feeding one word-parallel
//! popcount/dot scan (per-worker distance matrices). The evaluation
//! loop, the serving layer (`hdc_serve`) and the attack harness all
//! run on the same session, so measured attack cost and served
//! throughput describe the same code path.
//!
//! Two ownership shapes share one implementation:
//!
//! * [`InferenceSession`] **borrows** its encoder — the ergonomic form
//!   for "build a model, serve it from this stack frame" (training
//!   loops, tests, the single-model server).
//! * [`OwnedSession`] **owns** its encoder — the form a model registry
//!   needs: a generation that can be handed around behind an `Arc` and
//!   hot-swapped without any borrow tying it to the loading frame.
//!
//! The [`ClassifySession`] trait is the seam the serving layer is
//! generic over, so batch workers and connection handlers accept either
//! shape (and any future one) without duplication.
//!
//! Results are bit-identical to the scalar per-sample pipeline
//! (`encode_binary` + the one-row-at-a-time scan), including
//! lowest-index tie-breaking — pinned by the `session_equivalence`
//! integration tests.

use hdc_datasets::QuantizedDataset;
use hypervec::{
    BatchSearchResult, BatchTopKResult, BinaryHv, IntHv, ProbeConfig, ShardedClassMemory,
};

use crate::classhv::ClassMemory;
use crate::config::ModelKind;
use crate::encoder::Encoder;
use crate::metrics::{ConfusionMatrix, EvalResult};

/// Samples encoded per block when streaming a dataset through the
/// session: large enough to feed every batch worker, small enough that
/// the encoded block (not the whole dataset) bounds peak memory.
pub const SESSION_BLOCK: usize = 1024;

/// The query surface shared by every session shape — what the serving
/// layer ([`hdc_serve`](crate::session)), the batch workers and the
/// registry swap logic are generic over.
///
/// All implementations promise bit-identical results to the scalar
/// per-sample pipeline, including lowest-index tie-breaking.
pub trait ClassifySession: Sync {
    /// Model kind (binary → Hamming search, non-binary → cosine).
    fn kind(&self) -> ModelKind;

    /// Number of classes `C`.
    fn n_classes(&self) -> usize;

    /// Number of input features `N`.
    fn n_features(&self) -> usize;

    /// Number of value levels `M`.
    fn m_levels(&self) -> usize;

    /// Hypervector dimensionality `D`.
    fn dim(&self) -> usize;

    /// The packed class-memory snapshot.
    fn memory(&self) -> &ShardedClassMemory;

    /// Fused classify of a batch of quantized rows: one batch encode,
    /// one batch search, top-1 class per row in input order.
    ///
    /// # Panics
    ///
    /// Panics if any row's width does not match the encoder.
    fn classify_batch(&self, rows: &[&[u16]]) -> Vec<usize>;

    /// Fused classify of a batch, returning top-1 *and* the full
    /// per-class score vector for every row (higher is more similar;
    /// bipolar cosine for binary models, cosine for non-binary).
    ///
    /// # Panics
    ///
    /// Panics if any row's width does not match the encoder.
    fn scores_batch(&self, rows: &[&[u16]]) -> BatchSearchResult;

    /// Classifies a single quantized row (a batch of one).
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the encoder.
    fn classify(&self, levels: &[u16]) -> usize;

    /// Fused top-k similarity search of a batch of quantized rows: one
    /// batch encode, one heap top-k search over the memory rows. With a
    /// [`ProbeConfig`] the search runs the pruned coarse/rescore path —
    /// leading packed words for binary models, the i16-quantized
    /// leading dimension blocks for non-binary (cosine) models; `None`
    /// is the exact scan. Matches are best-first with lowest-index tie
    /// order, bit-identical to sorting the full
    /// [`ClassifySession::scores_batch`] score vector.
    ///
    /// # Panics
    ///
    /// Panics if any row's width does not match the encoder.
    fn search_topk_batch(
        &self,
        rows: &[&[u16]],
        k: usize,
        probe: Option<&ProbeConfig>,
    ) -> BatchTopKResult;

    /// Name of the SIMD kernel backend every encode and search in this
    /// session runs on (`"scalar"`, `"avx2"`, or `"portable"`) —
    /// surfaced so operators can verify what is actually executing.
    fn kernel_backend(&self) -> &'static str {
        hypervec::kernel::name()
    }

    /// Whether this session serves in constant-time hardened mode (see
    /// [`Encoder::is_hardened`]). Surfaced through `info`/`stats` and
    /// the `hdc_hardened` metrics gauge so operators can audit what a
    /// deployment actually runs.
    fn hardened(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------
// Shared implementation: every session shape delegates here.
// ---------------------------------------------------------------------

fn classify_batch_impl<E: Encoder + Sync>(
    encoder: &E,
    kind: ModelKind,
    sharded: &ShardedClassMemory,
    rows: &[&[u16]],
) -> Vec<usize> {
    if rows.is_empty() {
        return Vec::new();
    }
    match kind {
        ModelKind::Binary => {
            let encoded = encoder.encode_batch_binary(rows);
            let refs: Vec<&BinaryHv> = encoded.iter().collect();
            sharded
                .search_batch_binary(&refs)
                .expect("session dimensions are consistent by construction")
                .into_best_rows()
        }
        ModelKind::NonBinary => {
            let encoded = encoder.encode_batch_int(rows);
            let refs: Vec<&IntHv> = encoded.iter().collect();
            sharded
                .search_batch_int(&refs)
                .expect("session dimensions are consistent by construction")
                .into_best_rows()
        }
    }
}

fn scores_batch_impl<E: Encoder + Sync>(
    encoder: &E,
    kind: ModelKind,
    sharded: &ShardedClassMemory,
    rows: &[&[u16]],
) -> BatchSearchResult {
    match kind {
        ModelKind::Binary => {
            let encoded = encoder.encode_batch_binary(rows);
            let refs: Vec<&BinaryHv> = encoded.iter().collect();
            sharded
                .search_batch_binary(&refs)
                .expect("session dimensions are consistent by construction")
        }
        ModelKind::NonBinary => {
            let encoded = encoder.encode_batch_int(rows);
            let refs: Vec<&IntHv> = encoded.iter().collect();
            sharded
                .search_batch_int(&refs)
                .expect("session dimensions are consistent by construction")
        }
    }
}

fn search_topk_impl<E: Encoder + Sync>(
    encoder: &E,
    kind: ModelKind,
    sharded: &ShardedClassMemory,
    rows: &[&[u16]],
    k: usize,
    probe: Option<&ProbeConfig>,
) -> BatchTopKResult {
    // A hardened encoder promises fixed work per query; the pruned
    // coarse/rescore scan's candidate set (and thus its latency) is
    // score-dependent, so hardened sessions always take the exact
    // fixed-shape scan regardless of the caller's probe tuning.
    let probe = if encoder.is_hardened() { None } else { probe };
    match kind {
        ModelKind::Binary => {
            let encoded = encoder.encode_batch_binary(rows);
            let refs: Vec<&BinaryHv> = encoded.iter().collect();
            match probe {
                Some(p) => sharded.search_topk_binary_pruned(&refs, k, p),
                None => sharded.search_topk_binary(&refs, k),
            }
            .expect("session dimensions are consistent by construction")
        }
        ModelKind::NonBinary => {
            let encoded = encoder.encode_batch_int(rows);
            let refs: Vec<&IntHv> = encoded.iter().collect();
            match probe {
                Some(p) => sharded.search_topk_int_pruned(&refs, k, p),
                None => sharded.search_topk_int(&refs, k),
            }
            .expect("session dimensions are consistent by construction")
        }
    }
}

fn classify_one_impl<E: Encoder>(
    encoder: &E,
    kind: ModelKind,
    sharded: &ShardedClassMemory,
    levels: &[u16],
) -> usize {
    match kind {
        ModelKind::Binary => {
            sharded
                .search_binary(&encoder.encode_binary(levels))
                .expect("session dimensions are consistent by construction")
                .0
        }
        ModelKind::NonBinary => {
            sharded
                .search_int(&encoder.encode_int(levels))
                .expect("session dimensions are consistent by construction")
                .0
        }
    }
}

fn evaluate_impl<S: ClassifySession + ?Sized>(session: &S, data: &QuantizedDataset) -> EvalResult {
    let rows: Vec<&[u16]> = (0..data.len()).map(|i| data.row(i)).collect();
    let mut confusion = ConfusionMatrix::new(data.n_classes());
    for block_start in (0..rows.len()).step_by(SESSION_BLOCK) {
        let block_end = (block_start + SESSION_BLOCK).min(rows.len());
        let block = &rows[block_start..block_end];
        for (off, &predicted) in session.classify_batch(block).iter().enumerate() {
            confusion.record(data.label(block_start + off), predicted);
        }
    }
    EvalResult {
        accuracy: confusion.accuracy(),
        confusion,
    }
}

fn check_shape(encoder_dim: usize, memory_dim: usize) {
    assert_eq!(
        encoder_dim, memory_dim,
        "encoder dimension {encoder_dim} does not match class memory dimension {memory_dim}"
    );
}

/// A query-side inference pipeline: borrowed encoder plus an owned,
/// search-packed snapshot of the class memory.
///
/// # Examples
///
/// ```
/// use hdc_datasets::Benchmark;
/// use hdc_model::{HdcConfig, HdcModel, InferenceSession};
///
/// let (train, test) = Benchmark::Face.generate(0.05, 3)?;
/// let config = HdcConfig::paper_default().with_dim(1024);
/// let model = HdcModel::fit_standard(&config, &train)?;
/// let session = InferenceSession::new(model.encoder(), model.memory());
/// let levels = model.discretizer().discretize_row(&test.samples()[0].features);
/// let class = session.classify(&levels);
/// assert!(class < model.memory().n_classes());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct InferenceSession<'a, E> {
    encoder: &'a E,
    kind: ModelKind,
    sharded: ShardedClassMemory,
}

impl<'a, E: Encoder + Sync> InferenceSession<'a, E> {
    /// Builds a session by snapshotting `memory` into packed form.
    ///
    /// # Panics
    ///
    /// Panics if encoder and memory disagree on dimensionality.
    #[must_use]
    pub fn new(encoder: &'a E, memory: &ClassMemory) -> Self {
        check_shape(encoder.dim(), memory.dim());
        InferenceSession {
            encoder,
            kind: memory.kind(),
            sharded: memory.to_sharded(),
        }
    }

    /// The encoder this session serves.
    #[must_use]
    pub fn encoder(&self) -> &E {
        self.encoder
    }

    /// Model kind (binary → Hamming search, non-binary → cosine).
    #[must_use]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The packed class-memory snapshot.
    #[must_use]
    pub fn memory(&self) -> &ShardedClassMemory {
        &self.sharded
    }

    /// Number of classes `C`.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.sharded.n_rows()
    }

    /// Number of input features `N`.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.encoder.n_features()
    }

    /// Number of value levels `M`.
    #[must_use]
    pub fn m_levels(&self) -> usize {
        self.encoder.m_levels()
    }

    /// Hypervector dimensionality `D`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.encoder.dim()
    }

    /// Name of the SIMD kernel backend every encode and search in this
    /// session runs on (`"scalar"`, `"avx2"`, or `"portable"`).
    #[must_use]
    pub fn kernel_backend(&self) -> &'static str {
        hypervec::kernel::name()
    }

    /// Fused classify of a batch of quantized rows: one batch encode,
    /// one batch search, top-1 class per row in input order.
    ///
    /// # Panics
    ///
    /// Panics if any row's width does not match the encoder.
    #[must_use]
    pub fn classify_batch(&self, rows: &[&[u16]]) -> Vec<usize> {
        classify_batch_impl(self.encoder, self.kind, &self.sharded, rows)
    }

    /// Fused classify of a batch, returning top-1 *and* the full
    /// per-class score vector for every row.
    ///
    /// # Panics
    ///
    /// Panics if any row's width does not match the encoder.
    #[must_use]
    pub fn scores_batch(&self, rows: &[&[u16]]) -> BatchSearchResult {
        scores_batch_impl(self.encoder, self.kind, &self.sharded, rows)
    }

    /// Classifies a single quantized row (a batch of one).
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the encoder.
    #[must_use]
    pub fn classify(&self, levels: &[u16]) -> usize {
        classify_one_impl(self.encoder, self.kind, &self.sharded, levels)
    }

    /// Fused top-k similarity search (see
    /// [`ClassifySession::search_topk_batch`]).
    ///
    /// # Panics
    ///
    /// Panics if any row's width does not match the encoder.
    #[must_use]
    pub fn search_topk_batch(
        &self,
        rows: &[&[u16]],
        k: usize,
        probe: Option<&ProbeConfig>,
    ) -> BatchTopKResult {
        search_topk_impl(self.encoder, self.kind, &self.sharded, rows, k, probe)
    }

    /// Evaluates the session over a quantized dataset, streaming it in
    /// [`SESSION_BLOCK`]-sized blocks through the fused batch path.
    ///
    /// # Panics
    ///
    /// Panics if the dataset width does not match the encoder.
    #[must_use]
    pub fn evaluate(&self, data: &QuantizedDataset) -> EvalResult {
        evaluate_impl(self, data)
    }
}

impl<E: Encoder + Sync> ClassifySession for InferenceSession<'_, E> {
    fn kind(&self) -> ModelKind {
        InferenceSession::kind(self)
    }

    fn n_classes(&self) -> usize {
        InferenceSession::n_classes(self)
    }

    fn n_features(&self) -> usize {
        InferenceSession::n_features(self)
    }

    fn m_levels(&self) -> usize {
        InferenceSession::m_levels(self)
    }

    fn dim(&self) -> usize {
        InferenceSession::dim(self)
    }

    fn memory(&self) -> &ShardedClassMemory {
        InferenceSession::memory(self)
    }

    fn classify_batch(&self, rows: &[&[u16]]) -> Vec<usize> {
        InferenceSession::classify_batch(self, rows)
    }

    fn scores_batch(&self, rows: &[&[u16]]) -> BatchSearchResult {
        InferenceSession::scores_batch(self, rows)
    }

    fn classify(&self, levels: &[u16]) -> usize {
        InferenceSession::classify(self, levels)
    }

    fn search_topk_batch(
        &self,
        rows: &[&[u16]],
        k: usize,
        probe: Option<&ProbeConfig>,
    ) -> BatchTopKResult {
        InferenceSession::search_topk_batch(self, rows, k, probe)
    }

    fn hardened(&self) -> bool {
        self.encoder.is_hardened()
    }
}

/// A self-contained inference pipeline: the session *owns* its encoder.
///
/// This is the generation unit a model registry swaps: unlike
/// [`InferenceSession`] it carries no borrow, so it can live behind an
/// `Arc`, outlive the stack frame that loaded the snapshot, and be
/// retired whenever the last in-flight batch drops its reference.
///
/// # Examples
///
/// ```
/// use hdc_datasets::Benchmark;
/// use hdc_model::{ClassifySession, HdcConfig, HdcModel, OwnedSession};
///
/// let (train, _) = Benchmark::Face.generate(0.05, 3)?;
/// let config = HdcConfig::paper_default().with_dim(1024);
/// let model = HdcModel::fit_standard(&config, &train)?;
/// let (_, encoder, _, memory) = model.into_parts();
/// let session = OwnedSession::new(encoder, &memory);
/// assert_eq!(session.dim(), 1024);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct OwnedSession<E> {
    encoder: E,
    kind: ModelKind,
    sharded: ShardedClassMemory,
}

impl<E: Encoder + Sync> OwnedSession<E> {
    /// Builds an owning session by snapshotting `memory` into packed
    /// form.
    ///
    /// # Panics
    ///
    /// Panics if encoder and memory disagree on dimensionality.
    #[must_use]
    pub fn new(encoder: E, memory: &ClassMemory) -> Self {
        check_shape(encoder.dim(), memory.dim());
        OwnedSession {
            encoder,
            kind: memory.kind(),
            sharded: memory.to_sharded(),
        }
    }

    /// Assembles an owning session from an already-packed class memory —
    /// the binary-snapshot load path, which deserializes the packed
    /// planes directly and must not round-trip them through
    /// [`ClassMemory`].
    ///
    /// # Panics
    ///
    /// Panics if encoder and packed memory disagree on dimensionality,
    /// or if a non-binary session is assembled without integer rows.
    #[must_use]
    pub fn from_packed(encoder: E, kind: ModelKind, sharded: ShardedClassMemory) -> Self {
        check_shape(encoder.dim(), sharded.dim());
        assert!(
            kind == ModelKind::Binary || sharded.has_int_rows(),
            "non-binary session needs integer class rows for cosine search"
        );
        OwnedSession {
            encoder,
            kind,
            sharded,
        }
    }

    /// The encoder this session serves.
    #[must_use]
    pub fn encoder(&self) -> &E {
        &self.encoder
    }

    /// Evaluates the session over a quantized dataset, streaming it in
    /// [`SESSION_BLOCK`]-sized blocks through the fused batch path.
    ///
    /// # Panics
    ///
    /// Panics if the dataset width does not match the encoder.
    #[must_use]
    pub fn evaluate(&self, data: &QuantizedDataset) -> EvalResult {
        evaluate_impl(self, data)
    }
}

impl<E: Encoder + Sync> ClassifySession for OwnedSession<E> {
    fn kind(&self) -> ModelKind {
        self.kind
    }

    fn n_classes(&self) -> usize {
        self.sharded.n_rows()
    }

    fn n_features(&self) -> usize {
        self.encoder.n_features()
    }

    fn m_levels(&self) -> usize {
        self.encoder.m_levels()
    }

    fn dim(&self) -> usize {
        self.encoder.dim()
    }

    fn memory(&self) -> &ShardedClassMemory {
        &self.sharded
    }

    fn classify_batch(&self, rows: &[&[u16]]) -> Vec<usize> {
        classify_batch_impl(&self.encoder, self.kind, &self.sharded, rows)
    }

    fn scores_batch(&self, rows: &[&[u16]]) -> BatchSearchResult {
        scores_batch_impl(&self.encoder, self.kind, &self.sharded, rows)
    }

    fn classify(&self, levels: &[u16]) -> usize {
        classify_one_impl(&self.encoder, self.kind, &self.sharded, levels)
    }

    fn search_topk_batch(
        &self,
        rows: &[&[u16]],
        k: usize,
        probe: Option<&ProbeConfig>,
    ) -> BatchTopKResult {
        search_topk_impl(&self.encoder, self.kind, &self.sharded, rows, k, probe)
    }

    fn hardened(&self) -> bool {
        self.encoder.is_hardened()
    }
}

/// A top-k query surface bound to a session: the `k` and probe tuning
/// travel with the session reference, so callers (the serving batch
/// workers, benchmarks) issue `search_batch(rows)` without re-threading
/// search parameters through every call site.
///
/// # Examples
///
/// ```
/// use hdc_datasets::Benchmark;
/// use hdc_model::{HdcConfig, HdcModel, InferenceSession, TopKSession};
///
/// let (train, _) = Benchmark::Face.generate(0.05, 3)?;
/// let config = HdcConfig::paper_default().with_dim(1024);
/// let model = HdcModel::fit_standard(&config, &train)?;
/// let session = InferenceSession::new(model.encoder(), model.memory());
/// let topk = TopKSession::new(&session, 2);
/// let query = vec![0u16; session.n_features()];
/// let hits = topk.search_batch(&[&query[..]]);
/// assert_eq!(hits.matches(0).len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TopKSession<'a, S: ?Sized> {
    session: &'a S,
    k: usize,
    probe: Option<ProbeConfig>,
}

impl<'a, S: ClassifySession + ?Sized> TopKSession<'a, S> {
    /// Binds an exact top-`k` search surface to `session`.
    #[must_use]
    pub fn new(session: &'a S, k: usize) -> Self {
        TopKSession {
            session,
            k,
            probe: None,
        }
    }

    /// Switches the search path to the pruned coarse/rescore scan:
    /// leading packed words for binary models, the i16-quantized
    /// leading dimension blocks for non-binary (cosine) models. At
    /// full probe width both are bit-identical to the exact scan.
    #[must_use]
    pub fn with_probe(mut self, probe: ProbeConfig) -> Self {
        self.probe = Some(probe);
        self
    }

    /// The bound `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The bound probe tuning, if any.
    #[must_use]
    pub fn probe(&self) -> Option<&ProbeConfig> {
        self.probe.as_ref()
    }

    /// The underlying session.
    #[must_use]
    pub fn session(&self) -> &S {
        self.session
    }

    /// Top-k search of a batch of quantized rows with the bound
    /// parameters (see [`ClassifySession::search_topk_batch`]).
    ///
    /// # Panics
    ///
    /// Panics if any row's width does not match the encoder.
    #[must_use]
    pub fn search_batch(&self, rows: &[&[u16]]) -> BatchTopKResult {
        self.session
            .search_topk_batch(rows, self.k, self.probe.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::RecordEncoder;
    use crate::infer;
    use hypervec::HvRng;

    fn setup(kind: ModelKind, dim: usize) -> (RecordEncoder, ClassMemory, Vec<Vec<u16>>) {
        let mut rng = HvRng::from_seed(9);
        let enc = RecordEncoder::generate(&mut rng, 7, 4, dim).unwrap();
        let mut memory = ClassMemory::new(kind, 3, dim);
        let protos: Vec<Vec<u16>> = vec![vec![0u16; 7], vec![2u16; 7], vec![3u16; 7]];
        for (j, p) in protos.iter().enumerate() {
            memory.acc_mut(j).add(&enc.encode_binary(p));
        }
        memory.rebinarize();
        let rows: Vec<Vec<u16>> = (0..20)
            .map(|s| (0..7).map(|i| ((s + i) % 4) as u16).collect())
            .collect();
        (enc, memory, rows)
    }

    #[test]
    fn batch_classify_matches_scalar_pipeline_binary() {
        let (enc, memory, rows) = setup(ModelKind::Binary, 1030);
        let session = InferenceSession::new(&enc, &memory);
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let batch = session.classify_batch(&refs);
        for (i, row) in refs.iter().enumerate() {
            let want = infer::classify_binary_hv(&memory, &enc.encode_binary(row));
            assert_eq!(batch[i], want, "row {i}");
            assert_eq!(session.classify(row), want, "row {i}");
        }
    }

    #[test]
    fn batch_classify_matches_scalar_pipeline_nonbinary() {
        let (enc, memory, rows) = setup(ModelKind::NonBinary, 512);
        let session = InferenceSession::new(&enc, &memory);
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let batch = session.classify_batch(&refs);
        for (i, row) in refs.iter().enumerate() {
            let want = infer::classify_int_hv(&memory, &enc.encode_int(row));
            assert_eq!(batch[i], want, "row {i}");
            assert_eq!(session.classify(row), want, "row {i}");
        }
    }

    #[test]
    fn scores_batch_matches_class_scores() {
        for kind in [ModelKind::Binary, ModelKind::NonBinary] {
            let (enc, memory, rows) = setup(kind, 256);
            let session = InferenceSession::new(&enc, &memory);
            let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
            let hits = session.scores_batch(&refs);
            for (i, row) in refs.iter().enumerate() {
                let want = infer::class_scores(&enc, &memory, row);
                for (j, &s) in hits.scores(i).iter().enumerate() {
                    assert_eq!(s.to_bits(), want[j].to_bits(), "{kind:?} row {i} class {j}");
                }
            }
        }
    }

    #[test]
    fn owned_session_is_bit_identical_to_borrowed() {
        for kind in [ModelKind::Binary, ModelKind::NonBinary] {
            let (enc, memory, rows) = setup(kind, 130);
            let borrowed = InferenceSession::new(&enc, &memory);
            let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
            let want = borrowed.scores_batch(&refs);
            let owned = OwnedSession::new(enc, &memory);
            assert_eq!(owned.kind(), kind);
            assert_eq!(owned.n_classes(), 3);
            let got = owned.scores_batch(&refs);
            assert_eq!(got.best_rows(), want.best_rows());
            for (q, row) in refs.iter().enumerate() {
                for (g, w) in got.scores(q).iter().zip(want.scores(q)) {
                    assert_eq!(g.to_bits(), w.to_bits());
                }
                assert_eq!(owned.classify(row), want.best(q));
            }
        }
    }

    #[test]
    fn owned_session_moves_behind_arc() {
        let (enc, memory, rows) = setup(ModelKind::Binary, 256);
        let want: Vec<usize> = {
            let session = InferenceSession::new(&enc, &memory);
            let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
            session.classify_batch(&refs)
        };
        let session = std::sync::Arc::new(OwnedSession::new(enc, &memory));
        // The Arc'd session serves from another thread with no borrow of
        // the constructing frame — the property the registry relies on.
        let cloned = std::sync::Arc::clone(&session);
        let rows2 = rows.clone();
        let got = std::thread::spawn(move || {
            let refs: Vec<&[u16]> = rows2.iter().map(Vec::as_slice).collect();
            cloned.classify_batch(&refs)
        })
        .join()
        .unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn topk_session_matches_sorted_scores() {
        for kind in [ModelKind::Binary, ModelKind::NonBinary] {
            let (enc, memory, rows) = setup(kind, 1030);
            let session = InferenceSession::new(&enc, &memory);
            let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
            let topk = TopKSession::new(&session, 2);
            let hits = topk.search_batch(&refs);
            let full = session.scores_batch(&refs);
            for q in 0..refs.len() {
                let scores = full.scores(q);
                let mut order: Vec<usize> = (0..scores.len()).collect();
                order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
                let matches = hits.matches(q);
                assert_eq!(matches.len(), 2, "{kind:?} q {q}");
                for (m, &want_row) in matches.iter().zip(order.iter()) {
                    assert_eq!(m.row, want_row, "{kind:?} q {q}");
                    assert_eq!(
                        m.score.to_bits(),
                        scores[want_row].to_bits(),
                        "{kind:?} q {q}"
                    );
                }
                assert_eq!(matches[0].row, full.best(q), "{kind:?} q {q}");
            }
        }
    }

    #[test]
    fn topk_session_pruned_full_width_matches_exact_binary() {
        let (enc, memory, rows) = setup(ModelKind::Binary, 1030);
        let session = InferenceSession::new(&enc, &memory);
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let exact = TopKSession::new(&session, 3).search_batch(&refs);
        let probe = ProbeConfig {
            probe_words: session.dim().div_ceil(64),
            probe_factor: 2,
            exact_threshold: 0,
        };
        let pruned = TopKSession::new(&session, 3)
            .with_probe(probe)
            .search_batch(&refs);
        assert_eq!(exact, pruned);
    }

    #[test]
    fn topk_session_pruned_full_width_matches_exact_nonbinary() {
        let (enc, memory, rows) = setup(ModelKind::NonBinary, 1030);
        let session = InferenceSession::new(&enc, &memory);
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let exact = TopKSession::new(&session, 3).search_batch(&refs);
        let probe = ProbeConfig {
            probe_words: session.dim().div_ceil(64),
            probe_factor: 2,
            exact_threshold: 0,
        };
        let pruned = TopKSession::new(&session, 3)
            .with_probe(probe)
            .search_batch(&refs);
        assert_eq!(exact, pruned);
    }

    #[test]
    fn topk_session_narrow_probe_nonbinary_returns_exact_scores() {
        // A narrow int probe routes through the quantized coarse pass;
        // whatever it returns must carry exact cosine scores.
        let (enc, memory, rows) = setup(ModelKind::NonBinary, 2048);
        let session = InferenceSession::new(&enc, &memory);
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let probe = ProbeConfig {
            probe_words: 1,
            probe_factor: 1,
            exact_threshold: 0,
        };
        let hits = TopKSession::new(&session, 2)
            .with_probe(probe)
            .search_batch(&refs);
        let full = session.scores_batch(&refs);
        for q in 0..refs.len() {
            for m in hits.matches(q) {
                assert_eq!(m.score.to_bits(), full.scores(q)[m.row].to_bits(), "q {q}");
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (enc, memory, _) = setup(ModelKind::Binary, 128);
        let session = InferenceSession::new(&enc, &memory);
        assert!(session.classify_batch(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match class memory dimension")]
    fn dimension_disagreement_panics() {
        let mut rng = HvRng::from_seed(1);
        let enc = RecordEncoder::generate(&mut rng, 4, 4, 128).unwrap();
        let memory = ClassMemory::new(ModelKind::Binary, 2, 256);
        let _ = InferenceSession::new(&enc, &memory);
    }

    #[test]
    #[should_panic(expected = "non-binary session needs integer class rows")]
    fn from_packed_rejects_missing_int_rows() {
        let (enc, memory, _) = setup(ModelKind::Binary, 128);
        // A binary memory's packed snapshot carries no integer rows.
        let sharded = memory.to_sharded();
        let _ = OwnedSession::from_packed(enc, ModelKind::NonBinary, sharded);
    }
}
