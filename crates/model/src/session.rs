//! Batched inference sessions: encoder + packed class memory as one
//! query-side unit.
//!
//! HDLock's threat model assumes the deployed model is driven at high
//! query volume; Prive-HD argues the deployed encoder + memory should
//! be one hardened pipeline rather than loose library calls. An
//! [`InferenceSession`] is that pipeline's software shape: it snapshots
//! the trained [`ClassMemory`] into a search-packed
//! [`ShardedClassMemory`] once, then serves every query through the
//! fused `encode_batch_* → search_batch_*` path — one word-parallel
//! encoding pass (per-worker scratch accumulators, no per-sample
//! allocation beyond the encoded block) feeding one word-parallel
//! popcount/dot scan (per-worker distance matrices). The evaluation
//! loop, the serving layer (`hdc_serve`) and the attack harness all
//! run on the same session, so measured attack cost and served
//! throughput describe the same code path.
//!
//! Results are bit-identical to the scalar per-sample pipeline
//! (`encode_binary` + the one-row-at-a-time scan), including
//! lowest-index tie-breaking — pinned by the `session_equivalence`
//! integration tests.

use hdc_datasets::QuantizedDataset;
use hypervec::{BatchSearchResult, BinaryHv, IntHv, ShardedClassMemory};

use crate::classhv::ClassMemory;
use crate::config::ModelKind;
use crate::encoder::Encoder;
use crate::metrics::{ConfusionMatrix, EvalResult};

/// Samples encoded per block when streaming a dataset through the
/// session: large enough to feed every batch worker, small enough that
/// the encoded block (not the whole dataset) bounds peak memory.
pub const SESSION_BLOCK: usize = 1024;

/// A query-side inference pipeline: borrowed encoder plus an owned,
/// search-packed snapshot of the class memory.
///
/// # Examples
///
/// ```
/// use hdc_datasets::Benchmark;
/// use hdc_model::{HdcConfig, HdcModel, InferenceSession};
///
/// let (train, test) = Benchmark::Face.generate(0.05, 3)?;
/// let config = HdcConfig::paper_default().with_dim(1024);
/// let model = HdcModel::fit_standard(&config, &train)?;
/// let session = InferenceSession::new(model.encoder(), model.memory());
/// let levels = model.discretizer().discretize_row(&test.samples()[0].features);
/// let class = session.classify(&levels);
/// assert!(class < model.memory().n_classes());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct InferenceSession<'a, E> {
    encoder: &'a E,
    kind: ModelKind,
    sharded: ShardedClassMemory,
}

impl<'a, E: Encoder + Sync> InferenceSession<'a, E> {
    /// Builds a session by snapshotting `memory` into packed form.
    ///
    /// # Panics
    ///
    /// Panics if encoder and memory disagree on dimensionality.
    #[must_use]
    pub fn new(encoder: &'a E, memory: &ClassMemory) -> Self {
        assert_eq!(
            encoder.dim(),
            memory.dim(),
            "encoder dimension {} does not match class memory dimension {}",
            encoder.dim(),
            memory.dim()
        );
        InferenceSession {
            encoder,
            kind: memory.kind(),
            sharded: memory.to_sharded(),
        }
    }

    /// The encoder this session serves.
    #[must_use]
    pub fn encoder(&self) -> &E {
        self.encoder
    }

    /// Model kind (binary → Hamming search, non-binary → cosine).
    #[must_use]
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The packed class-memory snapshot.
    #[must_use]
    pub fn memory(&self) -> &ShardedClassMemory {
        &self.sharded
    }

    /// Number of classes `C`.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.sharded.n_rows()
    }

    /// Number of input features `N`.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.encoder.n_features()
    }

    /// Number of value levels `M`.
    #[must_use]
    pub fn m_levels(&self) -> usize {
        self.encoder.m_levels()
    }

    /// Hypervector dimensionality `D`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.encoder.dim()
    }

    /// Name of the SIMD kernel backend every encode and search in this
    /// session runs on (`"scalar"`, `"avx2"`, or `"portable"`) —
    /// surfaced so operators can verify what is actually executing.
    #[must_use]
    pub fn kernel_backend(&self) -> &'static str {
        hypervec::kernel::name()
    }

    /// Fused classify of a batch of quantized rows: one batch encode,
    /// one batch search, top-1 class per row in input order.
    ///
    /// # Panics
    ///
    /// Panics if any row's width does not match the encoder.
    #[must_use]
    pub fn classify_batch(&self, rows: &[&[u16]]) -> Vec<usize> {
        if rows.is_empty() {
            return Vec::new();
        }
        match self.kind {
            ModelKind::Binary => {
                let encoded = self.encoder.encode_batch_binary(rows);
                let refs: Vec<&BinaryHv> = encoded.iter().collect();
                self.sharded
                    .search_batch_binary(&refs)
                    .expect("session dimensions are consistent by construction")
                    .into_best_rows()
            }
            ModelKind::NonBinary => {
                let encoded = self.encoder.encode_batch_int(rows);
                let refs: Vec<&IntHv> = encoded.iter().collect();
                self.sharded
                    .search_batch_int(&refs)
                    .expect("session dimensions are consistent by construction")
                    .into_best_rows()
            }
        }
    }

    /// Fused classify of a batch, returning top-1 *and* the full
    /// per-class score vector for every row (higher is more similar;
    /// bipolar cosine for binary models, cosine for non-binary).
    ///
    /// # Panics
    ///
    /// Panics if any row's width does not match the encoder.
    #[must_use]
    pub fn scores_batch(&self, rows: &[&[u16]]) -> BatchSearchResult {
        match self.kind {
            ModelKind::Binary => {
                let encoded = self.encoder.encode_batch_binary(rows);
                let refs: Vec<&BinaryHv> = encoded.iter().collect();
                self.sharded
                    .search_batch_binary(&refs)
                    .expect("session dimensions are consistent by construction")
            }
            ModelKind::NonBinary => {
                let encoded = self.encoder.encode_batch_int(rows);
                let refs: Vec<&IntHv> = encoded.iter().collect();
                self.sharded
                    .search_batch_int(&refs)
                    .expect("session dimensions are consistent by construction")
            }
        }
    }

    /// Classifies a single quantized row (a batch of one).
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the encoder.
    #[must_use]
    pub fn classify(&self, levels: &[u16]) -> usize {
        match self.kind {
            ModelKind::Binary => {
                self.sharded
                    .search_binary(&self.encoder.encode_binary(levels))
                    .expect("session dimensions are consistent by construction")
                    .0
            }
            ModelKind::NonBinary => {
                self.sharded
                    .search_int(&self.encoder.encode_int(levels))
                    .expect("session dimensions are consistent by construction")
                    .0
            }
        }
    }

    /// Evaluates the session over a quantized dataset, streaming it in
    /// [`SESSION_BLOCK`]-sized blocks through the fused batch path.
    ///
    /// # Panics
    ///
    /// Panics if the dataset width does not match the encoder.
    #[must_use]
    pub fn evaluate(&self, data: &QuantizedDataset) -> EvalResult {
        let rows: Vec<&[u16]> = (0..data.len()).map(|i| data.row(i)).collect();
        let mut confusion = ConfusionMatrix::new(data.n_classes());
        for block_start in (0..rows.len()).step_by(SESSION_BLOCK) {
            let block_end = (block_start + SESSION_BLOCK).min(rows.len());
            let block = &rows[block_start..block_end];
            for (off, &predicted) in self.classify_batch(block).iter().enumerate() {
                confusion.record(data.label(block_start + off), predicted);
            }
        }
        EvalResult {
            accuracy: confusion.accuracy(),
            confusion,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::RecordEncoder;
    use crate::infer;
    use hypervec::HvRng;

    fn setup(kind: ModelKind, dim: usize) -> (RecordEncoder, ClassMemory, Vec<Vec<u16>>) {
        let mut rng = HvRng::from_seed(9);
        let enc = RecordEncoder::generate(&mut rng, 7, 4, dim).unwrap();
        let mut memory = ClassMemory::new(kind, 3, dim);
        let protos: Vec<Vec<u16>> = vec![vec![0u16; 7], vec![2u16; 7], vec![3u16; 7]];
        for (j, p) in protos.iter().enumerate() {
            memory.acc_mut(j).add(&enc.encode_binary(p));
        }
        memory.rebinarize();
        let rows: Vec<Vec<u16>> = (0..20)
            .map(|s| (0..7).map(|i| ((s + i) % 4) as u16).collect())
            .collect();
        (enc, memory, rows)
    }

    #[test]
    fn batch_classify_matches_scalar_pipeline_binary() {
        let (enc, memory, rows) = setup(ModelKind::Binary, 1030);
        let session = InferenceSession::new(&enc, &memory);
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let batch = session.classify_batch(&refs);
        for (i, row) in refs.iter().enumerate() {
            let want = infer::classify_binary_hv(&memory, &enc.encode_binary(row));
            assert_eq!(batch[i], want, "row {i}");
            assert_eq!(session.classify(row), want, "row {i}");
        }
    }

    #[test]
    fn batch_classify_matches_scalar_pipeline_nonbinary() {
        let (enc, memory, rows) = setup(ModelKind::NonBinary, 512);
        let session = InferenceSession::new(&enc, &memory);
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let batch = session.classify_batch(&refs);
        for (i, row) in refs.iter().enumerate() {
            let want = infer::classify_int_hv(&memory, &enc.encode_int(row));
            assert_eq!(batch[i], want, "row {i}");
            assert_eq!(session.classify(row), want, "row {i}");
        }
    }

    #[test]
    fn scores_batch_matches_class_scores() {
        for kind in [ModelKind::Binary, ModelKind::NonBinary] {
            let (enc, memory, rows) = setup(kind, 256);
            let session = InferenceSession::new(&enc, &memory);
            let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
            let hits = session.scores_batch(&refs);
            for (i, row) in refs.iter().enumerate() {
                let want = infer::class_scores(&enc, &memory, row);
                for (j, &s) in hits.scores(i).iter().enumerate() {
                    assert_eq!(s.to_bits(), want[j].to_bits(), "{kind:?} row {i} class {j}");
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (enc, memory, _) = setup(ModelKind::Binary, 128);
        let session = InferenceSession::new(&enc, &memory);
        assert!(session.classify_batch(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match class memory dimension")]
    fn dimension_disagreement_panics() {
        let mut rng = HvRng::from_seed(1);
        let enc = RecordEncoder::generate(&mut rng, 4, 4, 128).unwrap();
        let memory = ClassMemory::new(ModelKind::Binary, 2, 256);
        let _ = InferenceSession::new(&enc, &memory);
    }
}
