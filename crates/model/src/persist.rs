//! Model persistence: JSON save/load for standard-encoder models.
//!
//! The serialized form contains everything the paper's threat model
//! treats as the model owner's IP — feature and value hypervectors
//! *with their index mapping*, class hypervectors and the quantizer —
//! which is exactly why such a file must never leave a trusted
//! environment unprotected.

use hdc_datasets::Discretizer;
use hypervec::{ItemMemory, LevelHvs};
use serde::{Deserialize, Serialize};

use crate::classhv::ClassMemory;
use crate::config::HdcConfig;
use crate::encoder::RecordEncoder;
use crate::model::HdcModel;

/// Serializable snapshot of a trained standard-encoder model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedModel {
    /// Hyperparameters.
    pub config: HdcConfig,
    /// Feature hypervectors in index order.
    pub features: ItemMemory,
    /// Value hypervectors in level order.
    pub values: LevelHvs,
    /// Fitted quantizer.
    pub discretizer: Discretizer,
    /// Trained class memory.
    pub memory: ClassMemory,
}

/// Error raised by model (de)serialization.
#[derive(Debug)]
pub struct PersistError {
    message: String,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model persistence failed: {}", self.message)
    }
}

impl std::error::Error for PersistError {}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError {
            message: e.to_string(),
        }
    }
}

impl HdcModel<RecordEncoder> {
    /// Serializes the complete model to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on serialization failure.
    pub fn to_json(&self) -> Result<String, PersistError> {
        let saved = SavedModel {
            config: *self.config(),
            features: self.encoder().features().clone(),
            values: self.encoder().values().clone(),
            discretizer: self.discretizer().clone(),
            memory: self.memory().clone(),
        };
        Ok(serde_json::to_string(&saved)?)
    }

    /// Restores a model from its JSON snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on malformed input or inconsistent
    /// hypervector shapes. Shape errors name the offending row/class
    /// index in the `RowDimensionMismatch` style of
    /// [`hypervec::ItemMemory`] — "which row is wrong", not just "the
    /// shapes disagree".
    pub fn from_json(json: &str) -> Result<Self, PersistError> {
        let saved: SavedModel = serde_json::from_str(json)?;
        let dim = saved.features.dim();
        if saved.config.dim != dim {
            return Err(PersistError {
                message: format!(
                    "config dimension {} does not match feature rows of dimension {dim}",
                    saved.config.dim
                ),
            });
        }
        saved
            .memory
            .check_consistent(dim)
            .map_err(|e| PersistError {
                message: format!("class memory: {e}"),
            })?;
        if saved.discretizer.n_features() != saved.features.len() {
            return Err(PersistError {
                message: format!(
                    "discretizer covers {} features, feature memory stores {}",
                    saved.discretizer.n_features(),
                    saved.features.len()
                ),
            });
        }
        let encoder =
            RecordEncoder::from_parts(saved.features, saved.values).map_err(|e| PersistError {
                message: e.to_string(),
            })?;
        Ok(HdcModel::from_parts(
            saved.config,
            encoder,
            saved.discretizer,
            saved.memory,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_datasets::Benchmark;

    #[test]
    fn model_roundtrips_through_json() {
        let (train_ds, test_ds) = Benchmark::Pamap.generate(0.05, 31).unwrap();
        let config = HdcConfig::paper_default().with_dim(1024).with_seed(31);
        let model = HdcModel::fit_standard(&config, &train_ds).unwrap();
        let json = model.to_json().unwrap();
        let restored = HdcModel::from_json(&json).unwrap();
        // bit-identical behaviour
        let a = model.evaluate(&test_ds).unwrap();
        let b = restored.evaluate(&test_ds).unwrap();
        assert_eq!(a, b);
        for s in test_ds.samples().iter().take(5) {
            assert_eq!(model.predict(&s.features), restored.predict(&s.features));
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(HdcModel::from_json("{not json").is_err());
        assert!(HdcModel::from_json("{}").is_err());
    }

    #[test]
    fn tampered_class_row_is_rejected_naming_the_class() {
        let (train_ds, _) = Benchmark::Pamap.generate(0.03, 33).unwrap();
        let config = HdcConfig::paper_default().with_dim(512).with_seed(33);
        let model = HdcModel::fit_standard(&config, &train_ds).unwrap();
        let json = model.to_json().unwrap();
        // Truncate the binarized row of class 1 to half the dimension:
        // the error must name class 1, not just "shapes disagree".
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let bins = v["memory"]["bins"].as_array().unwrap().to_vec();
        let mut short = bins.clone();
        short[1] = serde_json::from_str("{\"bits\":{\"words\":[0,0,0,0],\"len\":256}}").unwrap();
        v["memory"]["bins"] = serde_json::Value::Array(short);
        let err = HdcModel::from_json(&v.to_string()).unwrap_err().to_string();
        assert!(err.contains("row 1"), "error should name class 1: {err}");
        assert!(err.contains("512") && err.contains("256"), "{err}");
    }

    #[test]
    fn mismatched_config_dim_is_rejected() {
        let (train_ds, _) = Benchmark::Pamap.generate(0.03, 34).unwrap();
        let config = HdcConfig::paper_default().with_dim(512).with_seed(34);
        let model = HdcModel::fit_standard(&config, &train_ds).unwrap();
        let json = model.to_json().unwrap();
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        v["config"]["dim"] = serde_json::from_str("1024").unwrap();
        let err = HdcModel::from_json(&v.to_string()).unwrap_err().to_string();
        assert!(err.contains("1024") && err.contains("512"), "{err}");
    }

    #[test]
    fn tampered_shapes_are_rejected() {
        let (train_ds, _) = Benchmark::Pamap.generate(0.03, 32).unwrap();
        let config = HdcConfig::paper_default().with_dim(512).with_seed(32);
        let model = HdcModel::fit_standard(&config, &train_ds).unwrap();
        let json = model.to_json().unwrap();
        // break the value family: drop all levels but one (validated
        // deserialization must reject a single-level family)
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let levels = v["values"].as_array().unwrap()[..1].to_vec();
        v["values"] = serde_json::Value::Array(levels);
        let err = HdcModel::from_json(&v.to_string()).unwrap_err();
        assert!(err.to_string().contains("persistence failed"));
    }
}
