//! Model hyperparameters.

use serde::{Deserialize, Serialize};

/// Whether a model keeps full integer class hypervectors (non-binary) or
/// binarized ones (binary). Binary models compare by Hamming distance,
/// non-binary by cosine (paper Sec. 2, Inference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ModelKind {
    /// Binarized class hypervectors + Hamming-distance inference.
    #[default]
    Binary,
    /// Integer class hypervectors + cosine inference.
    NonBinary,
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ModelKind::Binary => "binary",
            ModelKind::NonBinary => "non-binary",
        })
    }
}

/// Hyperparameters of an HDC classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HdcConfig {
    /// Hypervector dimensionality `D` (the paper uses 10 000).
    pub dim: usize,
    /// Number of quantized value levels `M`.
    pub m_levels: usize,
    /// Binary or non-binary model.
    pub kind: ModelKind,
    /// Retraining epochs after the initial single pass (QuantHD-style).
    pub epochs: usize,
    /// Retraining update weight ("learning rate" in the paper's terms;
    /// integer because class accumulators are integer counters).
    pub learning_rate: i32,
    /// Seed for every stochastic choice (hypervector generation,
    /// tie-breaks).
    pub seed: u64,
}

impl HdcConfig {
    /// Paper-default configuration: `D = 10 000`, `M = 16`, binary,
    /// two retraining epochs with unit learning rate.
    #[must_use]
    pub fn paper_default() -> Self {
        HdcConfig {
            dim: 10_000,
            m_levels: 16,
            kind: ModelKind::Binary,
            epochs: 2,
            learning_rate: 1,
            seed: 2022,
        }
    }

    /// Returns a copy with a different dimensionality.
    #[must_use]
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Returns a copy with a different model kind.
    #[must_use]
    pub fn with_kind(mut self, kind: ModelKind) -> Self {
        self.kind = kind;
        self
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for HdcConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_paper() {
        let c = HdcConfig::paper_default();
        assert_eq!(c.dim, 10_000);
        assert_eq!(c.kind, ModelKind::Binary);
    }

    #[test]
    fn builders_update_fields() {
        let c = HdcConfig::paper_default()
            .with_dim(2048)
            .with_kind(ModelKind::NonBinary)
            .with_seed(7);
        assert_eq!(c.dim, 2048);
        assert_eq!(c.kind, ModelKind::NonBinary);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelKind::Binary.to_string(), "binary");
        assert_eq!(ModelKind::NonBinary.to_string(), "non-binary");
    }
}
