//! The encoding module: feature vectors → hypervectors.
//!
//! [`Encoder`] abstracts the encoding so the standard [`RecordEncoder`]
//! (paper Eq. 2/3) and HDLock's locked encoder (Eq. 10) are
//! interchangeable everywhere — training, inference, and the attack
//! oracle.
//!
//! Encoding is the system's hot path: training touches every sample
//! `1 + epochs` times and the attack-cost analysis is bounded by
//! encode+compare throughput. Both built-in encoders therefore run on
//! the word-parallel engine ([`BitSliceAccumulator`]) and expose batch
//! entry points ([`Encoder::encode_batch_binary`] /
//! [`Encoder::encode_batch_int`]) that fan samples out per chunk with
//! per-worker scratch state. The engine is bit-exact with the scalar
//! reference path ([`RecordEncoder::encode_int_scalar`]), which is kept
//! for validation and as the benchmark baseline.

use hypervec::{
    par, BinaryHv, BitSliceAccumulator, BoundPairCache, HvError, HvRng, IntHv, ItemMemory, LevelHvs,
};

/// An HDC encoding module mapping a quantized feature row (level indices
/// `0..m_levels` per feature) to a hypervector.
///
/// Implementations must be deterministic: the same input row always
/// produces the same output. (`sign(0)` ties in the binary output are
/// broken towards +1; see `DESIGN.md` §4.2 — for odd feature counts no
/// tie can occur, and the attack experiments hold under either policy.)
pub trait Encoder {
    /// Number of input features `N`.
    fn n_features(&self) -> usize;

    /// Number of value levels `M`.
    fn m_levels(&self) -> usize;

    /// Hypervector dimensionality `D`.
    fn dim(&self) -> usize;

    /// Non-binary encoding `H_nb = Σ ValHV_{f_i} × FeaHV_i` (Eq. 2).
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != self.n_features()` or any level is out
    /// of range.
    fn encode_int(&self, levels: &[u16]) -> IntHv;

    /// Binary encoding `H_b = sign(H_nb)` (Eq. 3).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Encoder::encode_int`].
    fn encode_binary(&self, levels: &[u16]) -> BinaryHv {
        self.encode_int(levels).sign_ties_positive()
    }

    /// Encodes a batch of rows to binary hypervectors.
    ///
    /// The default implementation chunks the batch across worker threads
    /// (see [`hypervec::par`]) and encodes row-by-row; implementations
    /// with cheaper batch strategies (cached bound pairs, reusable
    /// accumulators) override it. Output order matches input order and
    /// every element is bit-exact with [`Encoder::encode_binary`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Encoder::encode_binary`], for any row.
    fn encode_batch_binary(&self, rows: &[&[u16]]) -> Vec<BinaryHv>
    where
        Self: Sync,
    {
        par::par_chunk_map(rows.len(), 8, |range| {
            range.map(|r| self.encode_binary(rows[r])).collect()
        })
    }

    /// Encodes a batch of rows to integer hypervectors; the non-binary
    /// sibling of [`Encoder::encode_batch_binary`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Encoder::encode_int`], for any row.
    fn encode_batch_int(&self, rows: &[&[u16]]) -> Vec<IntHv>
    where
        Self: Sync,
    {
        par::par_chunk_map(rows.len(), 8, |range| {
            range.map(|r| self.encode_int(rows[r])).collect()
        })
    }

    /// The effective feature hypervector for feature `i` — the vector
    /// that multiplies `ValHV_{f_i}` in the encoding sum. For the
    /// standard encoder this is a stored row; for HDLock it is derived
    /// from the key (Eq. 9).
    fn feature_hv(&self, i: usize) -> BinaryHv;

    /// The value hypervector for level `v`.
    fn value_hv(&self, v: usize) -> BinaryHv;

    /// Whether this encoder runs in a constant-time hardened mode
    /// (fixed work per query, cache-oblivious memory access). Sessions
    /// consult this to disable score-dependent early exits — e.g.
    /// pruned top-k search falls back to the exact fixed-shape scan —
    /// so the whole query pipeline stays timing-neutral, not just the
    /// encode. Defaults to `false`; HDLock's locked encoder overrides
    /// it for `DeriveMode::Hardened` (see the repo's `SECURITY.md`).
    fn is_hardened(&self) -> bool {
        false
    }
}

/// The standard record-based encoder: `N` orthogonal feature
/// hypervectors and `M` linearly-correlated value hypervectors.
///
/// # Examples
///
/// ```
/// use hdc_model::{Encoder, RecordEncoder};
/// use hypervec::HvRng;
///
/// let mut rng = HvRng::from_seed(1);
/// let enc = RecordEncoder::generate(&mut rng, 16, 4, 2048)?;
/// let row = vec![0u16; 16];
/// let h = enc.encode_binary(&row);
/// assert_eq!(h.dim(), 2048);
/// # Ok::<(), hypervec::HvError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RecordEncoder {
    features: ItemMemory,
    values: LevelHvs,
    /// Shared lazily-built `(feature, level)` bound-pair cache; batch
    /// encoding warms it once and every subsequent add is a single
    /// pre-bound vector.
    bound_cache: BoundPairCache,
}

impl RecordEncoder {
    /// Generates fresh random feature and value hypervectors.
    ///
    /// # Errors
    ///
    /// Propagates [`HvError`] from level-hypervector generation.
    pub fn generate(
        rng: &mut HvRng,
        n_features: usize,
        m_levels: usize,
        dim: usize,
    ) -> Result<Self, HvError> {
        let features = ItemMemory::random(rng, dim, n_features);
        let values = LevelHvs::generate(rng, dim, m_levels)?;
        Ok(RecordEncoder {
            features,
            values,
            bound_cache: BoundPairCache::new(),
        })
    }

    /// Builds an encoder from existing memories (e.g. hypervectors
    /// recovered by an attack).
    ///
    /// # Errors
    ///
    /// Returns [`HvError::DimensionMismatch`] if the two memories
    /// disagree on dimensionality or the feature memory is empty.
    pub fn from_parts(features: ItemMemory, values: LevelHvs) -> Result<Self, HvError> {
        if features.is_empty() {
            return Err(HvError::EmptyInput);
        }
        if features.dim() != values.dim() {
            return Err(HvError::DimensionMismatch {
                expected: features.dim(),
                found: values.dim(),
            });
        }
        Ok(RecordEncoder {
            features,
            values,
            bound_cache: BoundPairCache::new(),
        })
    }

    /// The feature item memory.
    #[must_use]
    pub fn features(&self) -> &ItemMemory {
        &self.features
    }

    /// The value (level) hypervectors.
    #[must_use]
    pub fn values(&self) -> &LevelHvs {
        &self.values
    }

    /// Reference scalar implementation of Eq. 2: one `i32` add per
    /// dimension per feature, no word-parallel tricks. Kept as the
    /// validation target the engine must be bit-exact against, and as
    /// the benchmark baseline.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Encoder::encode_int`].
    #[must_use]
    pub fn encode_int_scalar(&self, levels: &[u16]) -> IntHv {
        self.check_row(levels);
        let mut acc = IntHv::zeros(self.dim());
        for (i, &lv) in levels.iter().enumerate() {
            let fea = self.features.get(i).expect("index bounded by n_features");
            acc.add_bound_pair(self.values.level(usize::from(lv)), fea);
        }
        acc
    }

    /// Accumulates one row into a (cleared) bit-sliced accumulator via
    /// the shared bound-pair cache (pre-bound adds when warm, fused
    /// XOR adds when cold).
    fn accumulate_row(&self, acc: &mut BitSliceAccumulator, levels: &[u16]) {
        self.bound_cache
            .accumulate_row(acc, self.features.rows(), &self.values, levels);
    }

    /// Shared batch driver: chunked fan-out with a per-worker reusable
    /// accumulator, finishing each sample with `finish`.
    fn encode_batch_with<T: Send>(
        &self,
        rows: &[&[u16]],
        finish: impl Fn(&BitSliceAccumulator) -> T + Sync,
    ) -> Vec<T> {
        for row in rows {
            self.check_row(row);
        }
        // Warm the cache before forking when the batch amortizes it.
        self.bound_cache
            .warm_for_batch(self.features.rows(), &self.values, rows.len());
        par::par_chunk_map(rows.len(), 4, |range| {
            let mut acc = BitSliceAccumulator::new(self.dim());
            let mut out = Vec::with_capacity(range.len());
            for r in range {
                acc.clear();
                self.accumulate_row(&mut acc, rows[r]);
                out.push(finish(&acc));
            }
            out
        })
    }

    fn check_row(&self, levels: &[u16]) {
        assert_eq!(
            levels.len(),
            self.n_features(),
            "row has {} levels, encoder expects {}",
            levels.len(),
            self.n_features()
        );
    }
}

impl Encoder for RecordEncoder {
    fn n_features(&self) -> usize {
        self.features.len()
    }

    fn m_levels(&self) -> usize {
        self.values.m()
    }

    fn dim(&self) -> usize {
        self.features.dim()
    }

    fn encode_int(&self, levels: &[u16]) -> IntHv {
        self.check_row(levels);
        let mut acc = BitSliceAccumulator::new(self.dim());
        self.accumulate_row(&mut acc, levels);
        acc.to_int()
    }

    fn encode_binary(&self, levels: &[u16]) -> BinaryHv {
        self.check_row(levels);
        let mut acc = BitSliceAccumulator::new(self.dim());
        self.accumulate_row(&mut acc, levels);
        acc.majority_ties_positive()
    }

    fn encode_batch_binary(&self, rows: &[&[u16]]) -> Vec<BinaryHv> {
        self.encode_batch_with(rows, BitSliceAccumulator::majority_ties_positive)
    }

    fn encode_batch_int(&self, rows: &[&[u16]]) -> Vec<IntHv> {
        self.encode_batch_with(rows, BitSliceAccumulator::to_int)
    }

    fn feature_hv(&self, i: usize) -> BinaryHv {
        self.features
            .get(i)
            .expect("feature index in range")
            .clone()
    }

    fn value_hv(&self, v: usize) -> BinaryHv {
        self.values.level(v).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder(seed: u64) -> RecordEncoder {
        let mut rng = HvRng::from_seed(seed);
        RecordEncoder::generate(&mut rng, 9, 4, 1024).unwrap()
    }

    #[test]
    fn shapes_are_reported() {
        let e = encoder(1);
        assert_eq!(e.n_features(), 9);
        assert_eq!(e.m_levels(), 4);
        assert_eq!(e.dim(), 1024);
    }

    #[test]
    fn encode_int_matches_manual_sum() {
        let e = encoder(2);
        let row: Vec<u16> = (0..9).map(|i| (i % 4) as u16).collect();
        let h = e.encode_int(&row);
        let mut manual = IntHv::zeros(1024);
        for (i, &lv) in row.iter().enumerate() {
            manual.add_binary(&e.feature_hv(i).bind(&e.value_hv(usize::from(lv))));
        }
        assert_eq!(h, manual);
    }

    #[test]
    fn engine_matches_scalar_reference() {
        let e = encoder(10);
        for variant in 0..4u16 {
            let row: Vec<u16> = (0..9).map(|i| (i as u16 + variant) % 4).collect();
            assert_eq!(
                e.encode_int(&row),
                e.encode_int_scalar(&row),
                "variant {variant}"
            );
        }
    }

    #[test]
    fn encode_binary_is_sign_of_int() {
        let e = encoder(3);
        let row = vec![1u16; 9];
        assert_eq!(
            e.encode_binary(&row),
            e.encode_int(&row).sign_ties_positive()
        );
    }

    #[test]
    fn batch_matches_per_sample_encodes() {
        let e = encoder(11);
        let rows: Vec<Vec<u16>> = (0..13)
            .map(|s| (0..9).map(|i| ((s + i) % 4) as u16).collect())
            .collect();
        let refs: Vec<&[u16]> = rows.iter().map(Vec::as_slice).collect();
        let batch_bin = e.encode_batch_binary(&refs);
        let batch_int = e.encode_batch_int(&refs);
        assert_eq!(batch_bin.len(), rows.len());
        for (i, row) in refs.iter().enumerate() {
            assert_eq!(batch_bin[i], e.encode_binary(row), "row {i}");
            assert_eq!(batch_int[i], e.encode_int(row), "row {i}");
        }
    }

    #[test]
    fn cache_does_not_change_results() {
        let e = encoder(12);
        let row: Vec<u16> = (0..9).map(|i| (i % 4) as u16).collect();
        let before = e.encode_binary(&row);
        e.bound_cache.warm(e.features().rows(), e.values()); // force the cache on
        assert_eq!(e.encode_binary(&row), before);
    }

    #[test]
    fn encoding_is_deterministic() {
        let e = encoder(4);
        let row = vec![2u16; 9];
        assert_eq!(e.encode_binary(&row), e.encode_binary(&row));
    }

    #[test]
    fn single_value_input_factors_out() {
        // Eq. 5: all-min input means H = sign(ValHV_1 × Σ FeaHV_i)
        // because binding by a bipolar vector commutes with sign.
        let e = encoder(5);
        let row = vec![0u16; 9];
        let h = e.encode_binary(&row);
        let sum = e.features().sum().unwrap();
        let expected = sum.sign_ties_positive().bind(&e.value_hv(0));
        assert_eq!(h, expected);
    }

    #[test]
    fn different_rows_encode_differently() {
        let e = encoder(6);
        let a = e.encode_binary(&[0u16; 9]);
        let b = e.encode_binary(&[3u16; 9]);
        assert!(a.normalized_hamming(&b) > 0.2);
    }

    #[test]
    #[should_panic(expected = "levels, encoder expects")]
    fn wrong_row_width_panics() {
        let e = encoder(7);
        let _ = e.encode_int(&[0, 1]);
    }

    #[test]
    #[should_panic(expected = "levels, encoder expects")]
    fn batch_checks_row_width() {
        let e = encoder(8);
        let short = [0u16, 1];
        let rows: Vec<&[u16]> = vec![&short];
        let _ = e.encode_batch_binary(&rows);
    }

    #[test]
    fn from_parts_validates() {
        let mut rng = HvRng::from_seed(8);
        let features = ItemMemory::random(&mut rng, 64, 3);
        let values = LevelHvs::generate(&mut rng, 128, 3).unwrap();
        assert!(matches!(
            RecordEncoder::from_parts(features, values),
            Err(HvError::DimensionMismatch { .. })
        ));
    }
}
