//! The encoding module: feature vectors → hypervectors.
//!
//! [`Encoder`] abstracts the encoding so the standard [`RecordEncoder`]
//! (paper Eq. 2/3) and HDLock's locked encoder (Eq. 10) are
//! interchangeable everywhere — training, inference, and the attack
//! oracle.

use hypervec::{BinaryHv, HvError, HvRng, IntHv, ItemMemory, LevelHvs};

/// An HDC encoding module mapping a quantized feature row (level indices
/// `0..m_levels` per feature) to a hypervector.
///
/// Implementations must be deterministic: the same input row always
/// produces the same output. (`sign(0)` ties in the binary output are
/// broken towards +1; see `DESIGN.md` §4.2 — for odd feature counts no
/// tie can occur, and the attack experiments hold under either policy.)
pub trait Encoder {
    /// Number of input features `N`.
    fn n_features(&self) -> usize;

    /// Number of value levels `M`.
    fn m_levels(&self) -> usize;

    /// Hypervector dimensionality `D`.
    fn dim(&self) -> usize;

    /// Non-binary encoding `H_nb = Σ ValHV_{f_i} × FeaHV_i` (Eq. 2).
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != self.n_features()` or any level is out
    /// of range.
    fn encode_int(&self, levels: &[u16]) -> IntHv;

    /// Binary encoding `H_b = sign(H_nb)` (Eq. 3).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Encoder::encode_int`].
    fn encode_binary(&self, levels: &[u16]) -> BinaryHv {
        self.encode_int(levels).sign_ties_positive()
    }

    /// The effective feature hypervector for feature `i` — the vector
    /// that multiplies `ValHV_{f_i}` in the encoding sum. For the
    /// standard encoder this is a stored row; for HDLock it is derived
    /// from the key (Eq. 9).
    fn feature_hv(&self, i: usize) -> BinaryHv;

    /// The value hypervector for level `v`.
    fn value_hv(&self, v: usize) -> BinaryHv;
}

/// The standard record-based encoder: `N` orthogonal feature
/// hypervectors and `M` linearly-correlated value hypervectors.
///
/// # Examples
///
/// ```
/// use hdc_model::{Encoder, RecordEncoder};
/// use hypervec::HvRng;
///
/// let mut rng = HvRng::from_seed(1);
/// let enc = RecordEncoder::generate(&mut rng, 16, 4, 2048)?;
/// let row = vec![0u16; 16];
/// let h = enc.encode_binary(&row);
/// assert_eq!(h.dim(), 2048);
/// # Ok::<(), hypervec::HvError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RecordEncoder {
    features: ItemMemory,
    values: LevelHvs,
}

impl RecordEncoder {
    /// Generates fresh random feature and value hypervectors.
    ///
    /// # Errors
    ///
    /// Propagates [`HvError`] from level-hypervector generation.
    pub fn generate(
        rng: &mut HvRng,
        n_features: usize,
        m_levels: usize,
        dim: usize,
    ) -> Result<Self, HvError> {
        let features = ItemMemory::random(rng, dim, n_features);
        let values = LevelHvs::generate(rng, dim, m_levels)?;
        Ok(RecordEncoder { features, values })
    }

    /// Builds an encoder from existing memories (e.g. hypervectors
    /// recovered by an attack).
    ///
    /// # Errors
    ///
    /// Returns [`HvError::DimensionMismatch`] if the two memories
    /// disagree on dimensionality or the feature memory is empty.
    pub fn from_parts(features: ItemMemory, values: LevelHvs) -> Result<Self, HvError> {
        if features.is_empty() {
            return Err(HvError::EmptyInput);
        }
        if features.dim() != values.dim() {
            return Err(HvError::DimensionMismatch {
                expected: features.dim(),
                found: values.dim(),
            });
        }
        Ok(RecordEncoder { features, values })
    }

    /// The feature item memory.
    #[must_use]
    pub fn features(&self) -> &ItemMemory {
        &self.features
    }

    /// The value (level) hypervectors.
    #[must_use]
    pub fn values(&self) -> &LevelHvs {
        &self.values
    }

    fn check_row(&self, levels: &[u16]) {
        assert_eq!(
            levels.len(),
            self.n_features(),
            "row has {} levels, encoder expects {}",
            levels.len(),
            self.n_features()
        );
    }
}

impl Encoder for RecordEncoder {
    fn n_features(&self) -> usize {
        self.features.len()
    }

    fn m_levels(&self) -> usize {
        self.values.m()
    }

    fn dim(&self) -> usize {
        self.features.dim()
    }

    fn encode_int(&self, levels: &[u16]) -> IntHv {
        self.check_row(levels);
        let mut acc = IntHv::zeros(self.dim());
        for (i, &lv) in levels.iter().enumerate() {
            let fea = self.features.get(i).expect("index bounded by n_features");
            acc.add_bound_pair(self.values.level(usize::from(lv)), fea);
        }
        acc
    }

    fn feature_hv(&self, i: usize) -> BinaryHv {
        self.features.get(i).expect("feature index in range").clone()
    }

    fn value_hv(&self, v: usize) -> BinaryHv {
        self.values.level(v).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder(seed: u64) -> RecordEncoder {
        let mut rng = HvRng::from_seed(seed);
        RecordEncoder::generate(&mut rng, 9, 4, 1024).unwrap()
    }

    #[test]
    fn shapes_are_reported() {
        let e = encoder(1);
        assert_eq!(e.n_features(), 9);
        assert_eq!(e.m_levels(), 4);
        assert_eq!(e.dim(), 1024);
    }

    #[test]
    fn encode_int_matches_manual_sum() {
        let e = encoder(2);
        let row: Vec<u16> = (0..9).map(|i| (i % 4) as u16).collect();
        let h = e.encode_int(&row);
        let mut manual = IntHv::zeros(1024);
        for (i, &lv) in row.iter().enumerate() {
            manual.add_binary(&e.feature_hv(i).bind(&e.value_hv(usize::from(lv))));
        }
        assert_eq!(h, manual);
    }

    #[test]
    fn encode_binary_is_sign_of_int() {
        let e = encoder(3);
        let row = vec![1u16; 9];
        assert_eq!(e.encode_binary(&row), e.encode_int(&row).sign_ties_positive());
    }

    #[test]
    fn encoding_is_deterministic() {
        let e = encoder(4);
        let row = vec![2u16; 9];
        assert_eq!(e.encode_binary(&row), e.encode_binary(&row));
    }

    #[test]
    fn single_value_input_factors_out() {
        // Eq. 5: all-min input means H = sign(ValHV_1 × Σ FeaHV_i)
        // because binding by a bipolar vector commutes with sign.
        let e = encoder(5);
        let row = vec![0u16; 9];
        let h = e.encode_binary(&row);
        let sum = e.features().sum().unwrap();
        let expected = sum.sign_ties_positive().bind(&e.value_hv(0));
        assert_eq!(h, expected);
    }

    #[test]
    fn different_rows_encode_differently() {
        let e = encoder(6);
        let a = e.encode_binary(&vec![0u16; 9]);
        let b = e.encode_binary(&vec![3u16; 9]);
        assert!(a.normalized_hamming(&b) > 0.2);
    }

    #[test]
    #[should_panic(expected = "levels, encoder expects")]
    fn wrong_row_width_panics() {
        let e = encoder(7);
        let _ = e.encode_int(&[0, 1]);
    }

    #[test]
    fn from_parts_validates() {
        let mut rng = HvRng::from_seed(8);
        let features = ItemMemory::random(&mut rng, 64, 3);
        let values = LevelHvs::generate(&mut rng, 128, 3).unwrap();
        assert!(matches!(
            RecordEncoder::from_parts(features, values),
            Err(HvError::DimensionMismatch { .. })
        ));
    }
}
