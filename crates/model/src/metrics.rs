//! Evaluation metrics.

use serde::{Deserialize, Serialize};

/// A confusion matrix over `C` classes (rows = actual, columns =
/// predicted).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Creates an empty `C × C` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0`.
    #[must_use]
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        ConfusionMatrix {
            counts: vec![vec![0; n_classes]; n_classes],
        }
    }

    /// Records one prediction.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        self.counts[actual][predicted] += 1;
    }

    /// Merges another confusion matrix into this one.
    ///
    /// # Panics
    ///
    /// Panics if class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.n_classes(), other.n_classes(), "class count mismatch");
        for (row, orow) in self.counts.iter_mut().zip(&other.counts) {
            for (c, oc) in row.iter_mut().zip(orow) {
                *c += oc;
            }
        }
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Total predictions recorded.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Count in cell `(actual, predicted)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual][predicted]
    }

    /// Overall accuracy in `[0, 1]`; 0.0 when empty.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.n_classes()).map(|j| self.counts[j][j]).sum();
        correct as f64 / total as f64
    }

    /// Recall of class `j` (`None` if the class has no samples).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn recall(&self, j: usize) -> Option<f64> {
        let row_total: usize = self.counts[j].iter().sum();
        (row_total > 0).then(|| self.counts[j][j] as f64 / row_total as f64)
    }

    /// Precision of class `j` (`None` if nothing was predicted as `j`).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn precision(&self, j: usize) -> Option<f64> {
        let col_total: usize = self.counts.iter().map(|row| row[j]).sum();
        (col_total > 0).then(|| self.counts[j][j] as f64 / col_total as f64)
    }
}

/// Result of evaluating a model on a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Overall accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Full confusion matrix.
    pub confusion: ConfusionMatrix,
}

/// Latency distribution summary (nearest-rank percentiles over
/// microsecond samples) — shared by the serving load generator and the
/// search benchmark so throughput reports agree on definitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of samples summarized.
    pub count: usize,
    /// Arithmetic mean, µs.
    pub mean_micros: f64,
    /// Median (p50), µs.
    pub p50_micros: u64,
    /// 95th percentile, µs.
    pub p95_micros: u64,
    /// 99th percentile, µs.
    pub p99_micros: u64,
    /// Worst observed sample, µs.
    pub max_micros: u64,
}

impl LatencyStats {
    /// Summarizes microsecond latency samples; `None` when empty.
    #[must_use]
    pub fn from_micros(mut samples: Vec<u64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let count = samples.len();
        let sum: u128 = samples.iter().map(|&s| u128::from(s)).sum();
        Some(LatencyStats {
            count,
            mean_micros: sum as f64 / count as f64,
            p50_micros: percentile(&samples, 50.0),
            p95_micros: percentile(&samples, 95.0),
            p99_micros: percentile(&samples, 99.0),
            max_micros: samples[count - 1],
        })
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_diagonal() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(1, 1);
        assert_eq!(cm.total(), 4);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn recall_and_precision() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        assert!((cm.recall(0).unwrap() - 0.5).abs() < 1e-12);
        assert!((cm.precision(1).unwrap() - 0.5).abs() < 1e-12);
        let empty = ConfusionMatrix::new(3);
        assert_eq!(empty.recall(2), None);
        assert_eq!(empty.precision(2), None);
    }

    #[test]
    fn empty_accuracy_is_zero() {
        assert_eq!(ConfusionMatrix::new(4).accuracy(), 0.0);
    }

    #[test]
    fn latency_percentiles_are_nearest_rank() {
        let stats = LatencyStats::from_micros((1..=100).collect()).unwrap();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50_micros, 50);
        assert_eq!(stats.p95_micros, 95);
        assert_eq!(stats.p99_micros, 99);
        assert_eq!(stats.max_micros, 100);
        assert!((stats.mean_micros - 50.5).abs() < 1e-12);
        // A single sample is every percentile.
        let one = LatencyStats::from_micros(vec![7]).unwrap();
        assert_eq!(one.p50_micros, 7);
        assert_eq!(one.p99_micros, 7);
        assert!(LatencyStats::from_micros(vec![]).is_none());
    }

    #[test]
    fn merge_adds_cells() {
        let mut a = ConfusionMatrix::new(2);
        a.record(0, 0);
        let mut b = ConfusionMatrix::new(2);
        b.record(0, 0);
        b.record(1, 0);
        a.merge(&b);
        assert_eq!(a.count(0, 0), 2);
        assert_eq!(a.count(1, 0), 1);
    }
}
