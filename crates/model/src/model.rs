//! High-level model façade tying encoder, training and inference.

use hdc_datasets::{Dataset, Discretizer, QuantizedDataset};
use hypervec::{HvError, HvRng};

use crate::classhv::ClassMemory;
use crate::config::HdcConfig;
use crate::encoder::{Encoder, RecordEncoder};
use crate::infer;
use crate::metrics::EvalResult;
use crate::session::{InferenceSession, OwnedSession};
use crate::train;

/// A complete HDC classifier: configuration, encoder, fitted quantizer
/// and trained class memory.
///
/// The generic parameter lets the same pipeline run on the standard
/// [`RecordEncoder`] or on HDLock's locked encoder.
///
/// # Examples
///
/// ```
/// use hdc_datasets::Benchmark;
/// use hdc_model::{HdcConfig, HdcModel};
///
/// let (train, test) = Benchmark::Pamap.generate(0.02, 3)?;
/// let config = HdcConfig::paper_default().with_dim(2048);
/// let model = HdcModel::fit_standard(&config, &train)?;
/// let result = model.evaluate(&test)?;
/// assert!(result.accuracy > 0.3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct HdcModel<E = RecordEncoder> {
    config: HdcConfig,
    encoder: E,
    discretizer: Discretizer,
    memory: ClassMemory,
}

impl HdcModel<RecordEncoder> {
    /// Fits a standard (unprotected) HDC model on `train`: generates a
    /// fresh record encoder, fits the quantizer, trains and retrains.
    ///
    /// # Errors
    ///
    /// Propagates quantizer and hypervector-generation errors.
    pub fn fit_standard(
        config: &HdcConfig,
        train_ds: &Dataset,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let mut rng = HvRng::from_seed(config.seed);
        let encoder =
            RecordEncoder::generate(&mut rng, train_ds.n_features(), config.m_levels, config.dim)?;
        Self::fit_with_encoder(config, encoder, train_ds)
    }
}

impl<E: Encoder + Sync> HdcModel<E> {
    /// Assembles a model from already-built parts — the path a model
    /// thief takes after recovering an encoder, and the deserialization
    /// path for stored models.
    #[must_use]
    pub fn from_parts(
        config: HdcConfig,
        encoder: E,
        discretizer: Discretizer,
        memory: ClassMemory,
    ) -> Self {
        HdcModel {
            config,
            encoder,
            discretizer,
            memory,
        }
    }

    /// Fits a model reusing an existing encoder (e.g. a locked one).
    ///
    /// # Errors
    ///
    /// Propagates quantizer errors.
    pub fn fit_with_encoder(
        config: &HdcConfig,
        encoder: E,
        train_ds: &Dataset,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let discretizer = Discretizer::fit(train_ds, config.m_levels)?;
        let train_q = discretizer.discretize(train_ds)?;
        let memory = train::train(&encoder, config, &train_q);
        Ok(HdcModel {
            config: *config,
            encoder,
            discretizer,
            memory,
        })
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &HdcConfig {
        &self.config
    }

    /// The encoding module.
    #[must_use]
    pub fn encoder(&self) -> &E {
        &self.encoder
    }

    /// The fitted quantizer.
    #[must_use]
    pub fn discretizer(&self) -> &Discretizer {
        &self.discretizer
    }

    /// The trained class memory.
    #[must_use]
    pub fn memory(&self) -> &ClassMemory {
        &self.memory
    }

    /// Predicts the class of one raw (continuous) feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the feature width does not match the training data.
    #[must_use]
    pub fn predict(&self, features: &[f32]) -> usize {
        let levels = self.discretizer.discretize_row(features);
        infer::classify(&self.encoder, &self.memory, &levels)
    }

    /// Evaluates accuracy on a raw dataset (quantizing with the training
    /// quantizer, exactly like the paper's pipeline).
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset is incompatible with the fitted
    /// quantizer.
    pub fn evaluate(&self, dataset: &Dataset) -> Result<EvalResult, HvError> {
        if dataset.n_features() != self.discretizer.n_features() {
            return Err(HvError::DimensionMismatch {
                expected: self.discretizer.n_features(),
                found: dataset.n_features(),
            });
        }
        let q = self
            .discretizer
            .discretize(dataset)
            .map_err(|_| HvError::EmptyInput)?;
        Ok(self.evaluate_quantized(&q))
    }

    /// Evaluates accuracy on an already-quantized dataset.
    #[must_use]
    pub fn evaluate_quantized(&self, data: &QuantizedDataset) -> EvalResult {
        infer::evaluate(&self.encoder, &self.memory, data)
    }

    /// Builds a reusable batched inference session over this model's
    /// encoder and trained memory — the unit the serving layer and the
    /// attack harness drive.
    #[must_use]
    pub fn session(&self) -> InferenceSession<'_, E> {
        InferenceSession::new(&self.encoder, &self.memory)
    }

    /// Decomposes the model into its parts — the inverse of
    /// [`HdcModel::from_parts`], used to hand the encoder (which may not
    /// be `Clone`, e.g. a vault-holding locked encoder) to an owning
    /// session or a snapshot writer.
    #[must_use]
    pub fn into_parts(self) -> (HdcConfig, E, Discretizer, ClassMemory) {
        (self.config, self.encoder, self.discretizer, self.memory)
    }

    /// Consumes the model into an [`OwnedSession`] serving its encoder
    /// and trained memory — the generation unit a model registry swaps.
    #[must_use]
    pub fn into_session(self) -> OwnedSession<E> {
        OwnedSession::new(self.encoder, &self.memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_datasets::Benchmark;

    #[test]
    fn fit_and_evaluate_roundtrip() {
        let (train_ds, test_ds) = Benchmark::Face.generate(0.05, 11).unwrap();
        let config = HdcConfig::paper_default().with_dim(2048).with_seed(11);
        let model = HdcModel::fit_standard(&config, &train_ds).unwrap();
        let result = model.evaluate(&test_ds).unwrap();
        assert!(result.accuracy > 0.7, "accuracy {}", result.accuracy);
        // prediction agrees with evaluation path
        let s = &test_ds.samples()[0];
        let _ = model.predict(&s.features);
    }

    #[test]
    fn evaluate_rejects_wrong_width() {
        let (train_ds, _) = Benchmark::Pamap.generate(0.02, 12).unwrap();
        let (other, _) = Benchmark::Face.generate(0.02, 12).unwrap();
        let config = HdcConfig::paper_default().with_dim(1024);
        let model = HdcModel::fit_standard(&config, &train_ds).unwrap();
        assert!(model.evaluate(&other).is_err());
    }
}
