//! Inference: similarity comparison against class hypervectors.
//!
//! A query is encoded with the same encoder used at training time, then
//! compared against every class hypervector — Hamming distance for
//! binary models, cosine for non-binary models (paper Sec. 2).

use hdc_datasets::QuantizedDataset;
use hypervec::{BinaryHv, IntHv};

use crate::classhv::ClassMemory;
use crate::config::ModelKind;
use crate::encoder::Encoder;
use crate::metrics::{ConfusionMatrix, EvalResult};

/// Classifies an already-encoded binary query: the class whose
/// binarized hypervector has the smallest Hamming distance.
///
/// # Panics
///
/// Panics if dimensions disagree.
#[must_use]
pub fn classify_binary_hv(memory: &ClassMemory, query: &BinaryHv) -> usize {
    let mut best = (0usize, usize::MAX);
    for j in 0..memory.n_classes() {
        let d = memory.class_binary(j).hamming(query);
        if d < best.1 {
            best = (j, d);
        }
    }
    best.0
}

/// Classifies an already-encoded integer query: the class whose integer
/// hypervector has the largest cosine similarity.
///
/// # Panics
///
/// Panics if dimensions disagree.
#[must_use]
pub fn classify_int_hv(memory: &ClassMemory, query: &IntHv) -> usize {
    let mut best = (0usize, f64::NEG_INFINITY);
    for j in 0..memory.n_classes() {
        let s = memory.class_int(j).cosine(query);
        if s > best.1 {
            best = (j, s);
        }
    }
    best.0
}

/// Encodes and classifies one quantized feature row.
///
/// # Panics
///
/// Panics if the row width does not match the encoder.
#[must_use]
pub fn classify<E: Encoder>(encoder: &E, memory: &ClassMemory, levels: &[u16]) -> usize {
    match memory.kind() {
        ModelKind::Binary => classify_binary_hv(memory, &encoder.encode_binary(levels)),
        ModelKind::NonBinary => classify_int_hv(memory, &encoder.encode_int(levels)),
    }
}

/// Per-class similarity scores for one query (exposed so callers can
/// inspect margins, not just the argmax — C-INTERMEDIATE).
///
/// Higher is always more similar; for binary models the score is the
/// bipolar cosine `1 − 2·hamming/D`.
#[must_use]
pub fn class_scores<E: Encoder>(encoder: &E, memory: &ClassMemory, levels: &[u16]) -> Vec<f64> {
    match memory.kind() {
        ModelKind::Binary => {
            let q = encoder.encode_binary(levels);
            (0..memory.n_classes())
                .map(|j| memory.class_binary(j).cosine(&q))
                .collect()
        }
        ModelKind::NonBinary => {
            let q = encoder.encode_int(levels);
            (0..memory.n_classes())
                .map(|j| memory.class_int(j).cosine(&q))
                .collect()
        }
    }
}

/// Samples encoded per block during evaluation: large enough to feed
/// every batch worker, small enough that the encoded block (not the
/// whole dataset) bounds peak memory — ~40 MB of `IntHv` at D = 10 000.
const EVAL_BLOCK: usize = 1024;

/// Evaluates a trained model over a quantized dataset, streaming it in
/// blocks through the encoder's batch path (word-parallel engine, all
/// workers); classification of a finished block is sequential — it is
/// O(C·D/64) per sample against the encoder's O(N·D/64).
///
/// # Panics
///
/// Panics if the dataset width does not match the encoder.
#[must_use]
pub fn evaluate<E: Encoder + Sync>(
    encoder: &E,
    memory: &ClassMemory,
    data: &QuantizedDataset,
) -> EvalResult {
    let rows: Vec<&[u16]> = (0..data.len()).map(|i| data.row(i)).collect();
    let mut confusion = ConfusionMatrix::new(data.n_classes());
    for block_start in (0..rows.len()).step_by(EVAL_BLOCK) {
        let block_end = (block_start + EVAL_BLOCK).min(rows.len());
        let block = &rows[block_start..block_end];
        match memory.kind() {
            ModelKind::Binary => {
                for (off, hv) in encoder.encode_batch_binary(block).iter().enumerate() {
                    confusion.record(
                        data.label(block_start + off),
                        classify_binary_hv(memory, hv),
                    );
                }
            }
            ModelKind::NonBinary => {
                for (off, hv) in encoder.encode_batch_int(block).iter().enumerate() {
                    confusion.record(data.label(block_start + off), classify_int_hv(memory, hv));
                }
            }
        }
    }
    EvalResult {
        accuracy: confusion.accuracy(),
        confusion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::RecordEncoder;
    use hypervec::HvRng;

    #[test]
    fn classify_binary_picks_nearest() {
        let mut rng = HvRng::from_seed(1);
        let mut memory = ClassMemory::new(ModelKind::Binary, 3, 512);
        let protos: Vec<BinaryHv> = (0..3).map(|_| rng.binary_hv(512)).collect();
        for (j, p) in protos.iter().enumerate() {
            memory.acc_mut(j).add(p);
        }
        memory.rebinarize();
        for (j, p) in protos.iter().enumerate() {
            assert_eq!(classify_binary_hv(&memory, p), j);
        }
    }

    #[test]
    fn classify_int_picks_most_similar() {
        let mut rng = HvRng::from_seed(2);
        let mut memory = ClassMemory::new(ModelKind::NonBinary, 2, 256);
        let a = rng.binary_hv(256);
        let b = rng.binary_hv(256);
        memory.acc_mut(0).add(&a);
        memory.acc_mut(1).add(&b);
        assert_eq!(classify_int_hv(&memory, &a.to_int()), 0);
        assert_eq!(classify_int_hv(&memory, &b.to_int()), 1);
    }

    #[test]
    fn class_scores_rank_matches_classify() {
        let mut rng = HvRng::from_seed(3);
        let enc = RecordEncoder::generate(&mut rng, 7, 4, 1024).unwrap();
        let mut memory = ClassMemory::new(ModelKind::Binary, 2, 1024);
        let row_a = vec![0u16; 7];
        let row_b = vec![3u16; 7];
        memory.acc_mut(0).add(&enc.encode_binary(&row_a));
        memory.acc_mut(1).add(&enc.encode_binary(&row_b));
        memory.rebinarize();
        let scores = class_scores(&enc, &memory, &row_a);
        assert!(scores[0] > scores[1]);
        assert_eq!(classify(&enc, &memory, &row_a), 0);
        assert_eq!(classify(&enc, &memory, &row_b), 1);
    }
}
