//! Inference: similarity comparison against class hypervectors.
//!
//! A query is encoded with the same encoder used at training time, then
//! compared against every class hypervector — Hamming distance for
//! binary models, cosine for non-binary models (paper Sec. 2).
//!
//! The throughput path lives in [`InferenceSession`]: a packed
//! class-memory snapshot served by the fused batch
//! `encode_batch_* → search_batch_*` kernels. The per-row scans in this
//! module ([`classify_binary_hv`], [`classify_int_hv`]) are kept as the
//! scalar *reference* implementation the batch kernels must stay
//! bit-identical to (and as the baseline the search benchmark measures
//! against).

use hdc_datasets::QuantizedDataset;
use hypervec::{BinaryHv, IntHv};

use crate::classhv::ClassMemory;
use crate::config::ModelKind;
use crate::encoder::Encoder;
use crate::metrics::EvalResult;
use crate::session::InferenceSession;

/// Classifies an already-encoded binary query: the class whose
/// binarized hypervector has the smallest Hamming distance.
///
/// Scalar reference scan — the batch path is
/// [`InferenceSession::classify_batch`], which is bit-identical.
///
/// # Panics
///
/// Panics if dimensions disagree.
#[must_use]
pub fn classify_binary_hv(memory: &ClassMemory, query: &BinaryHv) -> usize {
    let mut best = (0usize, usize::MAX);
    for j in 0..memory.n_classes() {
        let d = memory.class_binary(j).hamming(query);
        if d < best.1 {
            best = (j, d);
        }
    }
    best.0
}

/// Classifies an already-encoded integer query: the class whose integer
/// hypervector has the largest cosine similarity.
///
/// Scalar reference scan — the batch path is
/// [`InferenceSession::classify_batch`], which is bit-identical.
///
/// # Panics
///
/// Panics if dimensions disagree.
#[must_use]
pub fn classify_int_hv(memory: &ClassMemory, query: &IntHv) -> usize {
    let mut best = (0usize, f64::NEG_INFINITY);
    for j in 0..memory.n_classes() {
        let s = memory.class_int(j).cosine(query);
        if s > best.1 {
            best = (j, s);
        }
    }
    best.0
}

/// Encodes and classifies one quantized feature row.
///
/// # Panics
///
/// Panics if the row width does not match the encoder.
#[must_use]
pub fn classify<E: Encoder>(encoder: &E, memory: &ClassMemory, levels: &[u16]) -> usize {
    match memory.kind() {
        ModelKind::Binary => classify_binary_hv(memory, &encoder.encode_binary(levels)),
        ModelKind::NonBinary => classify_int_hv(memory, &encoder.encode_int(levels)),
    }
}

/// Per-class similarity scores for one query (exposed so callers can
/// inspect margins, not just the argmax — C-INTERMEDIATE).
///
/// Higher is always more similar; for binary models the score is the
/// bipolar cosine `1 − 2·hamming/D`.
#[must_use]
pub fn class_scores<E: Encoder>(encoder: &E, memory: &ClassMemory, levels: &[u16]) -> Vec<f64> {
    match memory.kind() {
        ModelKind::Binary => {
            let q = encoder.encode_binary(levels);
            (0..memory.n_classes())
                .map(|j| memory.class_binary(j).cosine(&q))
                .collect()
        }
        ModelKind::NonBinary => {
            let q = encoder.encode_int(levels);
            (0..memory.n_classes())
                .map(|j| memory.class_int(j).cosine(&q))
                .collect()
        }
    }
}

/// Evaluates a trained model over a quantized dataset by building a
/// one-shot [`InferenceSession`] and streaming the data through its
/// fused batch `encode → search` path. Callers evaluating repeatedly
/// against the same memory should build (and reuse) the session
/// themselves to amortize the packing snapshot.
///
/// # Panics
///
/// Panics if the dataset width does not match the encoder.
#[must_use]
pub fn evaluate<E: Encoder + Sync>(
    encoder: &E,
    memory: &ClassMemory,
    data: &QuantizedDataset,
) -> EvalResult {
    InferenceSession::new(encoder, memory).evaluate(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::RecordEncoder;
    use hypervec::HvRng;

    #[test]
    fn classify_binary_picks_nearest() {
        let mut rng = HvRng::from_seed(1);
        let mut memory = ClassMemory::new(ModelKind::Binary, 3, 512);
        let protos: Vec<BinaryHv> = (0..3).map(|_| rng.binary_hv(512)).collect();
        for (j, p) in protos.iter().enumerate() {
            memory.acc_mut(j).add(p);
        }
        memory.rebinarize();
        for (j, p) in protos.iter().enumerate() {
            assert_eq!(classify_binary_hv(&memory, p), j);
        }
    }

    #[test]
    fn classify_int_picks_most_similar() {
        let mut rng = HvRng::from_seed(2);
        let mut memory = ClassMemory::new(ModelKind::NonBinary, 2, 256);
        let a = rng.binary_hv(256);
        let b = rng.binary_hv(256);
        memory.acc_mut(0).add(&a);
        memory.acc_mut(1).add(&b);
        assert_eq!(classify_int_hv(&memory, &a.to_int()), 0);
        assert_eq!(classify_int_hv(&memory, &b.to_int()), 1);
    }

    #[test]
    fn class_scores_rank_matches_classify() {
        let mut rng = HvRng::from_seed(3);
        let enc = RecordEncoder::generate(&mut rng, 7, 4, 1024).unwrap();
        let mut memory = ClassMemory::new(ModelKind::Binary, 2, 1024);
        let row_a = vec![0u16; 7];
        let row_b = vec![3u16; 7];
        memory.acc_mut(0).add(&enc.encode_binary(&row_a));
        memory.acc_mut(1).add(&enc.encode_binary(&row_b));
        memory.rebinarize();
        let scores = class_scores(&enc, &memory, &row_a);
        assert!(scores[0] > scores[1]);
        assert_eq!(classify(&enc, &memory, &row_a), 0);
        assert_eq!(classify(&enc, &memory, &row_b), 1);
    }
}
