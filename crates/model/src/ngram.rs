//! N-gram sequence encoding — an extension beyond the paper's
//! record-based encoder.
//!
//! HDC's classic text/sequence encoder represents a sliding window of
//! `n` symbols as the bound product of progressively rotated symbol
//! hypervectors (`ρ^0(s_t) × ρ^1(s_{t+1}) × …`), bundling all windows
//! into one sequence hypervector. It shares the same vulnerability
//! surface as record-based encoding — the symbol item memory plus an
//! encoding oracle leak the symbol mapping — which makes it a natural
//! extension target for HDLock-style locking.

use hypervec::{par, BinaryHv, HvError, HvRng, IntHv, ItemMemory, ShardedClassMemory};

/// Sequences encoded per worker chunk in the batch path — sequence
/// encoding is expensive enough that small chunks still amortize the
/// fork-join.
const NGRAM_BATCH_CHUNK: usize = 8;

/// Sequences encoded per block when ingesting a corpus into a
/// [`ShardedClassMemory`]: bounds peak memory to one encoded block
/// instead of the whole corpus.
const NGRAM_INGEST_BLOCK: usize = 4096;

/// Sliding-window n-gram encoder over a discrete alphabet.
///
/// # Examples
///
/// ```
/// use hdc_model::NgramEncoder;
/// use hypervec::HvRng;
///
/// let mut rng = HvRng::from_seed(5);
/// let enc = NgramEncoder::generate(&mut rng, 26, 3, 2048)?;
/// let h = enc.encode_sequence(&[0, 1, 2, 3, 4])?;
/// assert_eq!(h.dim(), 2048);
/// # Ok::<(), hypervec::HvError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NgramEncoder {
    symbols: ItemMemory,
    n: usize,
}

impl NgramEncoder {
    /// Generates a random symbol item memory for `alphabet` symbols and
    /// window size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyInput`] if `alphabet == 0` or `n == 0`.
    pub fn generate(
        rng: &mut HvRng,
        alphabet: usize,
        n: usize,
        dim: usize,
    ) -> Result<Self, HvError> {
        if alphabet == 0 || n == 0 {
            return Err(HvError::EmptyInput);
        }
        Ok(NgramEncoder {
            symbols: ItemMemory::random(rng, dim, alphabet),
            n,
        })
    }

    /// Builds an encoder from an existing symbol memory (e.g. symbols
    /// derived from an HDLock base pool).
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyInput`] if the memory is empty or
    /// `n == 0`.
    pub fn from_symbols(symbols: ItemMemory, n: usize) -> Result<Self, HvError> {
        if symbols.is_empty() || n == 0 {
            return Err(HvError::EmptyInput);
        }
        Ok(NgramEncoder { symbols, n })
    }

    /// Window size `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Alphabet size.
    #[must_use]
    pub fn alphabet(&self) -> usize {
        self.symbols.len()
    }

    /// Hypervector dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.symbols.dim()
    }

    /// The symbol item memory (public in the paper's threat model).
    #[must_use]
    pub fn symbols(&self) -> &ItemMemory {
        &self.symbols
    }

    /// Encodes one n-gram starting at `window[0]`.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::IndexOutOfRange`] for unknown symbols or
    /// [`HvError::EmptyInput`] if `window.len() != n`.
    pub fn encode_gram(&self, window: &[usize]) -> Result<BinaryHv, HvError> {
        if window.len() != self.n {
            return Err(HvError::EmptyInput);
        }
        let mut acc = BinaryHv::ones(self.dim());
        for (offset, &sym) in window.iter().enumerate() {
            let hv = self.symbols.get(sym)?;
            acc.bind_assign(&hv.rotated(offset));
        }
        Ok(acc)
    }

    /// Encodes a full sequence: bundles every sliding n-gram window and
    /// binarizes.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyInput`] if the sequence is shorter than
    /// `n`, or [`HvError::IndexOutOfRange`] for unknown symbols.
    pub fn encode_sequence(&self, sequence: &[usize]) -> Result<BinaryHv, HvError> {
        Ok(self.encode_sequence_int(sequence)?.sign_ties_positive())
    }

    /// Non-binarized sequence encoding (the intermediate sum).
    ///
    /// # Errors
    ///
    /// Same as [`NgramEncoder::encode_sequence`].
    pub fn encode_sequence_int(&self, sequence: &[usize]) -> Result<IntHv, HvError> {
        if sequence.len() < self.n {
            return Err(HvError::EmptyInput);
        }
        let mut acc = IntHv::zeros(self.dim());
        for window in sequence.windows(self.n) {
            acc.add_binary(&self.encode_gram(window)?);
        }
        Ok(acc)
    }

    /// Batch k-mer encoding: every sequence through
    /// [`NgramEncoder::encode_sequence`], sharded across
    /// [`hypervec::par`] workers. Bit-identical to the
    /// single-record path sequence by sequence (the workers run the
    /// same window loop; there is no cross-sequence state).
    ///
    /// # Errors
    ///
    /// Returns the first error in sequence order ([`HvError::EmptyInput`]
    /// for a sequence shorter than `n`, [`HvError::IndexOutOfRange`]
    /// for unknown symbols).
    pub fn encode_batch(&self, sequences: &[&[usize]]) -> Result<Vec<BinaryHv>, HvError> {
        let encoded: Vec<Result<BinaryHv, HvError>> =
            par::par_chunk_map(sequences.len(), NGRAM_BATCH_CHUNK, |range| {
                range.map(|i| self.encode_sequence(sequences[i])).collect()
            });
        encoded.into_iter().collect()
    }

    /// Ingests a k-mer corpus into a row memory for top-k similarity
    /// search: batch-encodes the sequences block by block (peak memory
    /// is one 4096-sequence encoded block, not the whole
    /// corpus) and appends each row in corpus order, with the plane
    /// capacity reserved up front — the million-sequence load path.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::EmptyInput`] for an empty corpus, otherwise
    /// the first encoding error in sequence order.
    pub fn ingest(&self, sequences: &[&[usize]]) -> Result<ShardedClassMemory, HvError> {
        if sequences.is_empty() {
            return Err(HvError::EmptyInput);
        }
        let mut mem = ShardedClassMemory::new(self.dim());
        mem.reserve(sequences.len());
        for block in sequences.chunks(NGRAM_INGEST_BLOCK) {
            for hv in self.encode_batch(block)? {
                mem.push(&hv)?;
            }
        }
        Ok(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(seed: u64) -> NgramEncoder {
        NgramEncoder::generate(&mut HvRng::from_seed(seed), 10, 3, 2048).unwrap()
    }

    #[test]
    fn gram_binds_rotated_symbols() {
        let e = enc(1);
        let g = e.encode_gram(&[1, 2, 3]).unwrap();
        let manual = e
            .symbols()
            .get(1)
            .unwrap()
            .bind(&e.symbols().get(2).unwrap().rotated(1))
            .bind(&e.symbols().get(3).unwrap().rotated(2));
        assert_eq!(g, manual);
    }

    #[test]
    fn order_matters() {
        let e = enc(2);
        let ab = e.encode_gram(&[1, 2, 2]).unwrap();
        let ba = e.encode_gram(&[2, 2, 1]).unwrap();
        assert!(ab.normalized_hamming(&ba) > 0.3);
    }

    #[test]
    fn similar_sequences_are_similar() {
        let e = enc(3);
        let base: Vec<usize> = (0..40).map(|i| i % 10).collect();
        let mut tweaked = base.clone();
        tweaked[20] = (tweaked[20] + 1) % 10;
        let h1 = e.encode_sequence(&base).unwrap();
        let h2 = e.encode_sequence(&tweaked).unwrap();
        let h3 = e
            .encode_sequence(&(0..40).map(|i| (i * 7) % 10).collect::<Vec<_>>())
            .unwrap();
        assert!(h1.hamming(&h2) < h1.hamming(&h3));
    }

    #[test]
    fn short_sequence_errors() {
        let e = enc(4);
        assert!(e.encode_sequence(&[1, 2]).is_err());
    }

    #[test]
    fn unknown_symbol_errors() {
        let e = enc(5);
        assert!(matches!(
            e.encode_sequence(&[1, 2, 99]),
            Err(HvError::IndexOutOfRange { index: 99, .. })
        ));
    }

    #[test]
    fn rejects_empty_alphabet() {
        assert!(NgramEncoder::generate(&mut HvRng::from_seed(0), 0, 3, 64).is_err());
    }
}
