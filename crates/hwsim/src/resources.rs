//! Reservation-based hardware resources.
//!
//! The simulator schedules work onto shared resources (memory ports,
//! functional-unit arrays) with cycle-granular reservations: a job asks
//! for `beats` consecutive cycles no earlier than `earliest`, and the
//! resource returns the actual start cycle. This is the standard
//! reservation-table abstraction for statically-scheduled accelerator
//! pipelines.

/// A single-occupancy functional unit (e.g. the bind XOR array or the
/// accumulate adder array).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncUnit {
    name: &'static str,
    next_free: u64,
    busy_cycles: u64,
}

impl FuncUnit {
    /// Creates an idle unit.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        FuncUnit {
            name,
            next_free: 0,
            busy_cycles: 0,
        }
    }

    /// Unit name (for reports).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Reserves `beats` consecutive cycles starting no earlier than
    /// `earliest`; returns the (start, end) cycle pair, where `end` is
    /// the first cycle after the reservation.
    pub fn reserve(&mut self, earliest: u64, beats: u64) -> (u64, u64) {
        let start = self.next_free.max(earliest);
        let end = start + beats;
        self.next_free = end;
        self.busy_cycles += beats;
        (start, end)
    }

    /// Total busy cycles so far.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// First cycle at which the unit is free.
    #[must_use]
    pub fn next_free(&self) -> u64 {
        self.next_free
    }
}

/// A multi-port memory: up to `ports` streams can be served in the same
/// beat window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamMemory {
    ports: Vec<u64>,
    latency: u64,
    served_streams: u64,
}

impl StreamMemory {
    /// Creates a memory with `ports` read ports and `latency` cycles of
    /// read latency.
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0`.
    #[must_use]
    pub fn new(ports: usize, latency: u64) -> Self {
        assert!(ports > 0, "need at least one memory port");
        StreamMemory {
            ports: vec![0; ports],
            latency,
            served_streams: 0,
        }
    }

    /// Read latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Reserves a streaming read of `beats` beats on the least-loaded
    /// port, starting no earlier than `earliest`. Returns (start of
    /// first data beat, end), i.e. latency already applied.
    pub fn reserve_stream(&mut self, earliest: u64, beats: u64) -> (u64, u64) {
        let port = self
            .ports
            .iter()
            .enumerate()
            .min_by_key(|&(_, &free)| free)
            .map(|(i, _)| i)
            .expect("at least one port");
        let issue = self.ports[port].max(earliest);
        let end_of_port_busy = issue + beats;
        self.ports[port] = end_of_port_busy;
        self.served_streams += 1;
        (issue + self.latency, end_of_port_busy + self.latency)
    }

    /// Number of streams served so far.
    #[must_use]
    pub fn served_streams(&self) -> u64 {
        self.served_streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_serializes_reservations() {
        let mut u = FuncUnit::new("acc");
        let (s1, e1) = u.reserve(0, 10);
        assert_eq!((s1, e1), (0, 10));
        let (s2, e2) = u.reserve(0, 5);
        assert_eq!((s2, e2), (10, 15));
        let (s3, _) = u.reserve(100, 5);
        assert_eq!(s3, 100);
        assert_eq!(u.busy_cycles(), 20);
    }

    #[test]
    fn memory_parallelizes_up_to_ports() {
        let mut m = StreamMemory::new(2, 3);
        let (a, _) = m.reserve_stream(0, 10);
        let (b, _) = m.reserve_stream(0, 10);
        let (c, _) = m.reserve_stream(0, 10);
        assert_eq!(a, 3); // latency applied
        assert_eq!(b, 3); // second port, parallel
        assert_eq!(c, 13); // waits for a free port
        assert_eq!(m.served_streams(), 3);
    }

    #[test]
    fn memory_respects_earliest() {
        let mut m = StreamMemory::new(1, 0);
        let (a, _) = m.reserve_stream(7, 4);
        assert_eq!(a, 7);
    }
}
