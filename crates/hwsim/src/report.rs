//! Relative encoding-time series (paper Fig. 9).

use serde::{Deserialize, Serialize};

use crate::config::HwConfig;
use crate::encode_sim::simulate_encode;

/// One benchmark's relative encoding times across key layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelativeTimeSeries {
    /// Benchmark label.
    pub name: String,
    /// Feature count simulated.
    pub n_features: usize,
    /// `(L, relative time)` pairs; relative to the `L = 1` baseline,
    /// exactly as the paper normalizes Fig. 9.
    pub points: Vec<(usize, f64)>,
}

/// Simulates the Fig. 9 sweep for one benchmark: relative encoding time
/// (clock cycles, normalized to `L = 1`) for `L ∈ layers`.
///
/// # Panics
///
/// Panics on an invalid configuration or `n_features == 0`.
#[must_use]
pub fn relative_encoding_times(
    config: &HwConfig,
    name: &str,
    n_features: usize,
    layers: &[usize],
) -> RelativeTimeSeries {
    let baseline = simulate_encode(config, n_features, 1).total_cycles as f64;
    let points = layers
        .iter()
        .map(|&l| {
            (
                l,
                simulate_encode(config, n_features, l).total_cycles as f64 / baseline,
            )
        })
        .collect();
    RelativeTimeSeries {
        name: name.to_owned(),
        n_features,
        points,
    }
}

/// Converts a cycle count to microseconds at `freq_mhz`.
#[must_use]
pub fn cycles_to_micros(cycles: u64, freq_mhz: f64) -> f64 {
    cycles as f64 / freq_mhz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_normalized_to_l1() {
        let cfg = HwConfig::zynq_default();
        let s = relative_encoding_times(&cfg, "mnist", 784, &[1, 2, 3, 4, 5]);
        assert_eq!(s.points.len(), 5);
        assert!((s.points[0].1 - 1.0).abs() < 1e-12);
        // monotone increase
        for w in s.points.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    fn l2_overhead_matches_paper() {
        let cfg = HwConfig::zynq_default();
        let s = relative_encoding_times(&cfg, "mnist", 784, &[1, 2]);
        let r2 = s.points[1].1;
        assert!((r2 - 1.21).abs() < 0.05, "L=2 relative time {r2}");
    }

    #[test]
    fn cycle_conversion() {
        assert!((cycles_to_micros(1000, 100.0) - 10.0).abs() < 1e-12);
    }
}
