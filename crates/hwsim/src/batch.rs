//! Batched (streaming) encoding throughput.
//!
//! Inference workloads encode samples back to back; the datapath keeps
//! its resources busy across sample boundaries (the next sample's
//! fetches start while the previous sample drains). This module
//! measures steady-state throughput, complementing the single-sample
//! latency of [`crate::simulate_encode`].

use serde::{Deserialize, Serialize};

use crate::config::HwConfig;
use crate::encode_sim::Datapath;

/// Result of streaming `samples` encodings through the datapath.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Samples encoded.
    pub samples: usize,
    /// Cycle at which the last sample's sign pass completed (plus
    /// pipeline fill).
    pub total_cycles: u64,
    /// Steady-state cycles per sample (`total / samples`).
    pub cycles_per_sample: f64,
    /// Accumulate-array utilization across the batch.
    pub acc_utilization: f64,
}

/// Streams `samples` back-to-back encodings through one datapath.
///
/// # Panics
///
/// Panics on invalid configuration, `n_features == 0` or
/// `samples == 0`.
#[must_use]
pub fn simulate_batch(
    config: &HwConfig,
    n_features: usize,
    n_layers: usize,
    samples: usize,
) -> BatchReport {
    config.validate().expect("invalid hardware configuration");
    assert!(n_features > 0, "need at least one feature");
    assert!(samples > 0, "need at least one sample");
    let mut dp = Datapath::new(config);
    let mut last_end = 0u64;
    for _ in 0..samples {
        last_end = dp.schedule_sample(config, n_features, n_layers);
    }
    let total_cycles = last_end + config.pipeline_fill;
    BatchReport {
        samples,
        total_cycles,
        cycles_per_sample: total_cycles as f64 / samples as f64,
        acc_utilization: dp.acc.busy_cycles() as f64 / total_cycles as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate_encode;

    #[test]
    fn batching_amortizes_fill() {
        let cfg = HwConfig::zynq_default();
        let single = simulate_encode(&cfg, 200, 2).total_cycles;
        let batch = simulate_batch(&cfg, 200, 2, 20);
        assert!(
            batch.cycles_per_sample < single as f64,
            "batched per-sample cost {} must beat single-sample latency {single}",
            batch.cycles_per_sample
        );
    }

    #[test]
    fn throughput_is_linear_in_samples() {
        let cfg = HwConfig::zynq_default();
        let b10 = simulate_batch(&cfg, 100, 2, 10);
        let b100 = simulate_batch(&cfg, 100, 2, 100);
        // steady-state: per-sample cost converges
        let ratio = b100.cycles_per_sample / b10.cycles_per_sample;
        assert!(ratio < 1.05, "per-sample cost should not grow: {ratio}");
    }

    #[test]
    fn relative_overhead_holds_in_steady_state() {
        // The Fig. 9 relative overhead is a *latency* statement; check
        // it also holds for throughput.
        let cfg = HwConfig::zynq_default();
        let l1 = simulate_batch(&cfg, 784, 1, 50).cycles_per_sample;
        let l2 = simulate_batch(&cfg, 784, 2, 50).cycles_per_sample;
        let r = l2 / l1;
        assert!(
            (r - 1.21).abs() < 0.05,
            "steady-state L=2 relative cost {r}"
        );
    }

    #[test]
    fn utilization_improves_with_batching() {
        let cfg = HwConfig::zynq_default();
        let single = simulate_encode(&cfg, 100, 1);
        let batch = simulate_batch(&cfg, 100, 1, 50);
        assert!(batch.acc_utilization >= single.acc_utilization() - 1e-9);
        assert!(batch.acc_utilization <= 1.0);
    }
}
