//! First-order FPGA resource estimate for the encoding datapath.
//!
//! A deliberately coarse model — LUT/FF/BRAM counts scale linearly with
//! the configured datapath widths — good for *comparing* configurations
//! (e.g. what the wider bind array of the HDLock datapath costs), not
//! for signing off floorplans. Constants follow the usual UltraScale+
//! rules of thumb: one 6-LUT per 2 XOR bits, one LUT + one FF per adder
//! bit, 36 kb per BRAM tile.

use serde::{Deserialize, Serialize};

use crate::config::HwConfig;

/// Estimated FPGA resources for one encoding datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AreaEstimate {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// 36 kb block RAMs.
    pub brams: u64,
}

impl AreaEstimate {
    /// Merges two estimates (e.g. datapath + memory subsystem).
    #[must_use]
    pub fn plus(self, other: AreaEstimate) -> AreaEstimate {
        AreaEstimate {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            brams: self.brams + other.brams,
        }
    }
}

/// Accumulator counter width needed for `n_features` bundled ±1 terms.
fn counter_bits(n_features: usize) -> u64 {
    (usize::BITS - n_features.leading_zeros()) as u64 + 1
}

/// Estimates the datapath resources for a configuration serving
/// `n_features`-wide inputs with `pool_size` stored hypervectors.
///
/// # Panics
///
/// Panics on an invalid configuration.
#[must_use]
pub fn estimate_area(config: &HwConfig, n_features: usize, pool_size: usize) -> AreaEstimate {
    config.validate().expect("invalid hardware configuration");
    // Bind array: XOR of two W-bit operands ≈ W/2 LUTs, plus a W-bit
    // pipeline register.
    let bind_luts = (config.bind_width as u64).div_ceil(2);
    let bind_ffs = config.bind_width as u64;
    // Accumulate array: per lane an adder over counter_bits plus its
    // register; one lane per accumulate-path bit.
    let cb = counter_bits(n_features);
    let acc_luts = config.acc_width as u64 * cb;
    let acc_ffs = config.acc_width as u64 * cb;
    // Sign unit: one comparator bit per lane.
    let sign_luts = config.acc_width as u64;
    // Hypervector memory: pool + value levels, D bits each.
    let hv_bits = (pool_size as u64) * (config.dim as u64);
    let brams = hv_bits.div_ceil(36 * 1024);
    AreaEstimate {
        luts: bind_luts + acc_luts + sign_luts,
        ffs: bind_ffs + acc_ffs,
        brams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_bind_costs_more_luts() {
        let base = HwConfig::zynq_default();
        let mut narrow = base;
        narrow.bind_width = 512;
        let a = estimate_area(&base, 784, 784);
        let b = estimate_area(&narrow, 784, 784);
        assert!(a.luts > b.luts);
        assert_eq!(a.brams, b.brams, "memory does not depend on datapath width");
    }

    #[test]
    fn bram_count_tracks_pool() {
        let cfg = HwConfig::zynq_default();
        let small = estimate_area(&cfg, 784, 100);
        let large = estimate_area(&cfg, 784, 800);
        assert!(large.brams > small.brams);
        // 800 × 10000 bits / 36 kb ≈ 218 tiles
        assert!(
            (200..=240).contains(&large.brams),
            "brams = {}",
            large.brams
        );
    }

    #[test]
    fn counter_width_grows_with_features() {
        assert_eq!(counter_bits(1), 2);
        assert!(counter_bits(784) >= 11);
        let cfg = HwConfig::zynq_default();
        let few = estimate_area(&cfg, 75, 100);
        let many = estimate_area(&cfg, 784, 100);
        assert!(many.luts > few.luts);
    }

    #[test]
    fn plus_adds_fields() {
        let a = AreaEstimate {
            luts: 1,
            ffs: 2,
            brams: 3,
        };
        let b = AreaEstimate {
            luts: 10,
            ffs: 20,
            brams: 30,
        };
        assert_eq!(
            a.plus(b),
            AreaEstimate {
                luts: 11,
                ffs: 22,
                brams: 33
            }
        );
    }
}
