//! # hdc-hwsim — cycle-level simulator of an FPGA HDC encoding datapath
//!
//! The HDLock paper measures encoding latency in clock cycles on a
//! Xilinx Zynq UltraScale+ running the segmented, pipelined QuantHD
//! datapath, and reports *relative* times (Fig. 9): a one-layer key is
//! free (permutation = shifted memory addressing) and each further key
//! layer adds ≈ 21 %.
//!
//! This crate reproduces that measurement with a reservation-table
//! pipeline simulator: hypervector streams are fetched through a
//! multi-port [`resources::StreamMemory`], feature hypervectors are
//! derived in a wide XOR bind array, and the accumulate/adder-tree path
//! streams at its own width ([`encode_sim::simulate_encode`]). Default
//! widths are calibrated so the simulated overhead matches the measured
//! curve; see [`HwConfig`] for the calibration argument and
//! `DESIGN.md` §2 for the substitution rationale.
//!
//! ## Example
//!
//! ```
//! use hdc_hwsim::{relative_encoding_times, HwConfig};
//!
//! let cfg = HwConfig::zynq_default();
//! let series = relative_encoding_times(&cfg, "mnist", 784, &[1, 2, 3]);
//! assert!((series.points[0].1 - 1.0).abs() < 1e-9);
//! assert!(series.points[1].1 > 1.15 && series.points[1].1 < 1.3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod batch;
pub mod config;
pub mod encode_sim;
pub mod report;
pub mod resources;
pub mod search_sim;

pub use area::{estimate_area, AreaEstimate};
pub use batch::{simulate_batch, BatchReport};
pub use config::HwConfig;
pub use encode_sim::{simulate_encode, EncodeReport};
pub use report::{cycles_to_micros, relative_encoding_times, RelativeTimeSeries};
pub use search_sim::{simulate_inference, simulate_search, InferenceReport, SearchReport};
