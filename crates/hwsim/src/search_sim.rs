//! Similarity-search (associative memory) unit: the inference half of
//! the pipeline.
//!
//! After encoding, a query hypervector is compared against `C` class
//! hypervectors — popcount trees for binary models. Together with
//! [`crate::simulate_encode`] this gives end-to-end inference latency
//! and shows why the paper measures only the encoding stage: the search
//! stage is independent of `L`, so HDLock's relative overhead on full
//! inference is *smaller* than its encoding overhead.

use serde::{Deserialize, Serialize};

use crate::config::HwConfig;
use crate::encode_sim::simulate_encode;
use crate::resources::FuncUnit;

/// Cycle-level result of one similarity search.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchReport {
    /// Total cycles for comparing one query against all classes.
    pub total_cycles: u64,
    /// Number of class hypervectors compared.
    pub n_classes: usize,
    /// Comparator lanes used.
    pub lanes: usize,
}

/// Simulates Hamming-distance search of one query against `n_classes`
/// stored class hypervectors.
///
/// The unit streams the query once; `lanes` class rows are compared in
/// parallel per pass (each lane holds a popcount tree of the accumulate
/// width), plus a log-depth argmin at the end.
///
/// # Panics
///
/// Panics on invalid configuration, `n_classes == 0` or `lanes == 0`.
#[must_use]
pub fn simulate_search(config: &HwConfig, n_classes: usize, lanes: usize) -> SearchReport {
    config.validate().expect("invalid hardware configuration");
    assert!(n_classes > 0, "need at least one class");
    assert!(lanes > 0, "need at least one comparator lane");
    let beats = config.acc_beats();
    let mut unit = FuncUnit::new("search");
    let passes = n_classes.div_ceil(lanes) as u64;
    let (_, end) = unit.reserve(config.mem_latency, passes * beats);
    // Argmin reduction over n_classes distances: log2 depth.
    let argmin_depth = (usize::BITS - (n_classes - 1).leading_zeros()) as u64;
    SearchReport {
        total_cycles: end + argmin_depth,
        n_classes,
        lanes,
    }
}

/// End-to-end single-query inference latency: encode then search.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Encoding cycles.
    pub encode_cycles: u64,
    /// Search cycles.
    pub search_cycles: u64,
    /// Total cycles.
    pub total_cycles: u64,
}

/// Simulates full inference of one sample: encoding with an `n_layers`
/// HDLock key followed by class search.
///
/// # Panics
///
/// Same conditions as the two stage simulators.
#[must_use]
pub fn simulate_inference(
    config: &HwConfig,
    n_features: usize,
    n_layers: usize,
    n_classes: usize,
    search_lanes: usize,
) -> InferenceReport {
    let encode = simulate_encode(config, n_features, n_layers);
    let search = simulate_search(config, n_classes, search_lanes);
    InferenceReport {
        encode_cycles: encode.total_cycles,
        search_cycles: search.total_cycles,
        total_cycles: encode.total_cycles + search.total_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_scales_with_classes_over_lanes() {
        let cfg = HwConfig::zynq_default();
        let c10 = simulate_search(&cfg, 10, 2).total_cycles;
        let c26 = simulate_search(&cfg, 26, 2).total_cycles;
        assert!(c26 > c10);
        // doubling lanes roughly halves passes
        let wide = simulate_search(&cfg, 26, 4).total_cycles;
        assert!(wide < c26);
    }

    #[test]
    fn search_is_independent_of_key_layers() {
        // The whole point: HDLock never touches the search stage.
        let cfg = HwConfig::zynq_default();
        let s = simulate_search(&cfg, 10, 2);
        let i1 = simulate_inference(&cfg, 784, 1, 10, 2);
        let i5 = simulate_inference(&cfg, 784, 5, 10, 2);
        assert_eq!(i1.search_cycles, s.total_cycles);
        assert_eq!(i1.search_cycles, i5.search_cycles);
        assert!(i5.encode_cycles > i1.encode_cycles);
    }

    #[test]
    fn end_to_end_overhead_is_below_encoding_overhead() {
        let cfg = HwConfig::zynq_default();
        let i1 = simulate_inference(&cfg, 784, 1, 10, 2);
        let i2 = simulate_inference(&cfg, 784, 2, 10, 2);
        let encode_overhead = i2.encode_cycles as f64 / i1.encode_cycles as f64;
        let total_overhead = i2.total_cycles as f64 / i1.total_cycles as f64;
        assert!(total_overhead < encode_overhead);
        assert!(total_overhead > 1.0);
    }

    #[test]
    fn single_class_is_one_pass() {
        let cfg = HwConfig::zynq_default();
        let r = simulate_search(&cfg, 1, 4);
        assert_eq!(r.total_cycles, cfg.mem_latency + cfg.acc_beats());
    }
}
