//! Beat-accurate schedule of one encoded sample on the datapath.
//!
//! Per feature `i` the pipeline must:
//!
//! 1. **fetch** the `max(L, 1)` base-hypervector streams and the value-
//!    hypervector stream from memory (rotations are free shifted
//!    addressing),
//! 2. **derive** the feature hypervector: `L − 1` XOR passes through the
//!    bind array (zero passes for `L ≤ 1` — a single permuted base *is*
//!    the feature hypervector),
//! 3. **accumulate**: bind with the value hypervector and push through
//!    the adder tree (one pass through the accumulate array).
//!
//! After the last feature, the sign unit binarizes in one accumulate-
//! width pass. Resources are shared across features, so the schedule
//! exposes exactly the contention the configuration allows.

use serde::{Deserialize, Serialize};

use crate::config::HwConfig;
use crate::resources::{FuncUnit, StreamMemory};

/// Cycle-level result of encoding one sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodeReport {
    /// Total cycles from first fetch to sign-unit completion.
    pub total_cycles: u64,
    /// Cycles the bind array was busy.
    pub bind_busy: u64,
    /// Cycles the accumulate array was busy.
    pub acc_busy: u64,
    /// Memory streams served.
    pub mem_streams: u64,
    /// Features encoded.
    pub n_features: usize,
    /// Key layers simulated.
    pub n_layers: usize,
}

impl EncodeReport {
    /// Accumulate-array utilization in `[0, 1]`.
    #[must_use]
    pub fn acc_utilization(&self) -> f64 {
        self.acc_busy as f64 / self.total_cycles as f64
    }
}

/// Shared datapath state for scheduling one or more samples.
#[derive(Debug)]
pub(crate) struct Datapath {
    pub(crate) mem: StreamMemory,
    pub(crate) bind: FuncUnit,
    pub(crate) acc: FuncUnit,
}

impl Datapath {
    pub(crate) fn new(config: &HwConfig) -> Self {
        Datapath {
            mem: StreamMemory::new(config.mem_ports, config.mem_latency),
            bind: FuncUnit::new("bind"),
            acc: FuncUnit::new("acc"),
        }
    }

    /// Schedules one full sample; returns the cycle at which its sign
    /// pass completes (pipeline fill not yet added).
    pub(crate) fn schedule_sample(
        &mut self,
        config: &HwConfig,
        n_features: usize,
        n_layers: usize,
    ) -> u64 {
        let acc_beats = config.acc_beats();
        let bind_beats = config.bind_beats();
        let base_streams = n_layers.max(1) as u64;
        let derive_passes = n_layers.saturating_sub(1) as u64;

        let mut finish = 0u64;
        // Release time of the accumulate array for the previous feature —
        // the in-place scratch register the non-overlapped design
        // serializes on.
        let mut prev_acc_end = self.acc.next_free();

        for _feature in 0..n_features {
            // 1. fetch all operand streams (value + bases) in parallel,
            //    subject to port availability
            let mut operands_ready = 0u64;
            for _ in 0..(base_streams + 1) {
                let (_, stream_end) = self.mem.reserve_stream(0, acc_beats.max(bind_beats));
                operands_ready = operands_ready.max(stream_end);
            }

            // 2. derive the feature hypervector: L−1 bind passes
            let mut derive_ready = operands_ready;
            if derive_passes > 0 {
                let earliest = if config.overlap_derive {
                    derive_ready
                } else {
                    // serialized on the shared scratch register
                    derive_ready.max(prev_acc_end)
                };
                let (_, bind_end) = self.bind.reserve(earliest, derive_passes * bind_beats);
                derive_ready = bind_end;
            }

            // 3. accumulate pass (value bind + adder tree)
            let earliest_acc = derive_ready.max(prev_acc_end);
            let (_, acc_end) = self.acc.reserve(earliest_acc, acc_beats);
            prev_acc_end = acc_end;
            finish = finish.max(acc_end);
        }

        // Sign / binarization pass.
        let (_, sign_end) = self.acc.reserve(finish, acc_beats);
        sign_end
    }
}

/// Simulates encoding one sample with `n_features` features and an
/// HDLock key of `n_layers` layers (`0` or `1` = baseline cost).
///
/// # Panics
///
/// Panics if `config` fails validation or `n_features == 0`.
#[must_use]
pub fn simulate_encode(config: &HwConfig, n_features: usize, n_layers: usize) -> EncodeReport {
    config.validate().expect("invalid hardware configuration");
    assert!(n_features > 0, "need at least one feature");
    let mut dp = Datapath::new(config);
    let sign_end = dp.schedule_sample(config, n_features, n_layers);
    let total_cycles = sign_end + config.pipeline_fill;
    EncodeReport {
        total_cycles,
        bind_busy: dp.bind.busy_cycles(),
        acc_busy: dp.acc.busy_cycles(),
        mem_streams: dp.mem.served_streams(),
        n_features,
        n_layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HwConfig {
        HwConfig::zynq_default()
    }

    #[test]
    fn baseline_and_single_layer_cost_the_same() {
        let l0 = simulate_encode(&cfg(), 784, 0);
        let l1 = simulate_encode(&cfg(), 784, 1);
        assert_eq!(l0.total_cycles, l1.total_cycles);
    }

    #[test]
    fn layers_add_linear_overhead() {
        let l1 = simulate_encode(&cfg(), 784, 1).total_cycles as f64;
        let l2 = simulate_encode(&cfg(), 784, 2).total_cycles as f64;
        let l3 = simulate_encode(&cfg(), 784, 3).total_cycles as f64;
        let l5 = simulate_encode(&cfg(), 784, 5).total_cycles as f64;
        let r2 = l2 / l1;
        let r3 = l3 / l1;
        let r5 = l5 / l1;
        assert!(
            (r2 - 1.21).abs() < 0.05,
            "L=2 relative time {r2}, paper reports 1.21"
        );
        // linear growth: equal increments per layer
        let inc23 = r3 - r2;
        let inc25 = (r5 - r2) / 3.0;
        assert!(
            (inc23 - inc25).abs() < 0.01,
            "growth not linear: {inc23} vs {inc25}"
        );
        assert!(r5 > r3 && r3 > r2);
    }

    #[test]
    fn relative_time_is_dataset_independent() {
        // Paper observation: the relative-growth curves of all datasets
        // coincide when hardware resources suffice.
        let ratios: Vec<f64> = [784usize, 561, 608, 617, 75]
            .iter()
            .map(|&n| {
                let l1 = simulate_encode(&cfg(), n, 1).total_cycles as f64;
                let l2 = simulate_encode(&cfg(), n, 2).total_cycles as f64;
                l2 / l1
            })
            .collect();
        for r in &ratios {
            assert!((r - ratios[0]).abs() < 0.02, "ratios diverge: {ratios:?}");
        }
    }

    #[test]
    fn overlap_ablation_hides_derive_latency() {
        let serial = simulate_encode(&cfg(), 784, 3).total_cycles;
        let overlapped = simulate_encode(&cfg().with_overlap(true), 784, 3).total_cycles;
        assert!(
            overlapped < serial,
            "overlapping derive must be faster: {overlapped} vs {serial}"
        );
        // with the default widths, derive fits entirely under the
        // accumulate pass, so overlapped L=3 ≈ L=1
        let l1 = simulate_encode(&cfg(), 784, 1).total_cycles;
        let ratio = overlapped as f64 / l1 as f64;
        assert!(ratio < 1.05, "overlapped ratio {ratio}");
    }

    #[test]
    fn busy_cycles_match_work() {
        let cfg = cfg();
        let rep = simulate_encode(&cfg, 100, 3);
        // 2 bind passes per feature × 4 beats
        assert_eq!(rep.bind_busy, 100 * 2 * cfg.bind_beats());
        // one acc pass per feature + sign pass
        assert_eq!(rep.acc_busy, (100 + 1) * cfg.acc_beats());
        // value + 3 base streams per feature
        assert_eq!(rep.mem_streams, 100 * 4);
    }

    #[test]
    fn scarce_memory_ports_throttle_encoding() {
        let mut scarce = HwConfig::zynq_default();
        scarce.mem_ports = 1;
        let wide = simulate_encode(&HwConfig::zynq_default(), 200, 2);
        let narrow = simulate_encode(&scarce, 200, 2);
        assert!(narrow.total_cycles > wide.total_cycles);
    }

    #[test]
    fn utilization_is_sane() {
        let rep = simulate_encode(&cfg(), 784, 1);
        let u = rep.acc_utilization();
        assert!(u > 0.5 && u <= 1.0, "utilization {u}");
    }
}
