//! Hardware configuration of the simulated FPGA encoding datapath.

use serde::{Deserialize, Serialize};

/// Parameters of the encoding datapath (modeled after the segmented,
/// pipelined, tree-structured QuantHD implementation the paper deploys
/// on a Zynq UltraScale+).
///
/// The paper does not publish the microarchitecture, only measured
/// relative clock-cycle counts (Fig. 9: `L = 1` costs the same as the
/// baseline, each further layer adds ≈ 21 %). Two structural facts pin
/// the model down:
///
/// * permutation is free (shifted memory addressing), so `L = 1` adds
///   no cycles;
/// * XOR binding is LUT-cheap while the accumulate path needs real
///   adders, so the bind array is several times wider than the
///   accumulate array — the default widths (2560 vs 512 bits/cycle)
///   give `bind_beats / acc_beats = 4/20 = 0.20` extra per layer,
///   calibrated to the paper's measured 21 %.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HwConfig {
    /// Hypervector dimensionality `D`.
    pub dim: usize,
    /// Accumulate-path width: dimensions processed per cycle by the
    /// bind-with-value + adder-tree stage.
    pub acc_width: usize,
    /// Bind-path width: dimensions XOR-combined per cycle when deriving
    /// a feature hypervector from base hypervectors.
    pub bind_width: usize,
    /// Read ports into the hypervector memory (streams served per beat).
    pub mem_ports: usize,
    /// Memory read latency in cycles (affects pipeline fill only).
    pub mem_latency: u64,
    /// Extra pipeline fill/drain cycles (adder-tree depth, sign unit).
    pub pipeline_fill: u64,
    /// Whether deriving feature `i+1`'s hypervector may overlap the
    /// accumulation of feature `i`. The paper's measured latencies
    /// correspond to the non-overlapped design (`false`); the overlapped
    /// variant is the ablation discussed in `DESIGN.md`.
    pub overlap_derive: bool,
}

impl HwConfig {
    /// Default configuration calibrated against the paper's Fig. 9
    /// (`D = 10 000`).
    #[must_use]
    pub fn zynq_default() -> Self {
        HwConfig {
            dim: 10_000,
            acc_width: 512,
            bind_width: 2560,
            mem_ports: 4,
            mem_latency: 2,
            pipeline_fill: 16,
            overlap_derive: false,
        }
    }

    /// Returns a copy with a different dimensionality.
    #[must_use]
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Returns a copy with derive/accumulate overlap enabled.
    #[must_use]
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap_derive = overlap;
        self
    }

    /// Beats needed to stream one hypervector through the accumulate
    /// path.
    #[must_use]
    pub fn acc_beats(&self) -> u64 {
        self.dim.div_ceil(self.acc_width) as u64
    }

    /// Beats needed to XOR one pair of hypervectors in the bind array.
    #[must_use]
    pub fn bind_beats(&self) -> u64 {
        self.dim.div_ceil(self.bind_width) as u64
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.dim == 0 {
            return Err("dim must be positive");
        }
        if self.acc_width == 0 || self.bind_width == 0 {
            return Err("datapath widths must be positive");
        }
        if self.mem_ports == 0 {
            return Err("need at least one memory port");
        }
        Ok(())
    }
}

impl Default for HwConfig {
    fn default() -> Self {
        Self::zynq_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_beat_counts() {
        let cfg = HwConfig::zynq_default();
        assert_eq!(cfg.acc_beats(), 20); // 10000 / 512 → 20
        assert_eq!(cfg.bind_beats(), 4); // 10000 / 2560 → 4
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn calibration_gives_21_percent_per_layer() {
        let cfg = HwConfig::zynq_default();
        let per_layer = cfg.bind_beats() as f64 / cfg.acc_beats() as f64;
        assert!(
            (per_layer - 0.21).abs() < 0.02,
            "per-layer overhead {per_layer}"
        );
    }

    #[test]
    fn validation_catches_zeroes() {
        let mut cfg = HwConfig::zynq_default();
        cfg.dim = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = HwConfig::zynq_default();
        cfg.mem_ports = 0;
        assert!(cfg.validate().is_err());
    }
}
